#!/usr/bin/env python3
"""Validate a result-store stats document from ``repro cache stats
--json``.

Checks the ``repro-store/1`` schema structurally:

* every top-level key present with the right type, byte/entry counts
  non-negative;
* ``kind`` one of the registered backends;
* the namespace histogram summing to the entry count, namespace names
  drawn from the runner's key namespaces;
* the counters block complete (hits/misses/puts/deletes/evictions/
  corrupt, all non-negative ints);
* sharded extras (``stored_bytes``/``dead_bytes``/``shard_count``)
  internally consistent — stored bytes cannot exceed physical bytes,
  live shards cannot exceed the configured shard count.

``--expect-entries N`` / ``--expect-kind K`` additionally pin values
the CI smoke run knows (e.g. after migrating a fixture of N entries).

Exit status 0 iff the document is valid.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.store import STORE_SCHEMA  # noqa: E402

_BACKENDS = ("legacy", "sharded")

#: Namespaces the toolkit writes today; the histogram may only use these.
_KNOWN_NAMESPACES = {"result", "manifest", "forensics", "figure", "(flat)"}

_TOP_KEYS = {
    "schema": str,
    "kind": str,
    "root": str,
    "entries": int,
    "shards": int,
    "segments": int,
    "logical_bytes": int,
    "physical_bytes": int,
    "namespaces": dict,
    "counters": dict,
}

_COUNTER_KEYS = ("hits", "misses", "puts", "deletes", "evictions", "corrupt")


def fail(msg: str) -> int:
    print(f"INVALID STORE STATS: {msg}", file=sys.stderr)
    return 1


def check(
    doc: dict,
    *,
    expect_entries: int | None,
    expect_kind: str | None,
) -> int:
    for key, want in _TOP_KEYS.items():
        if key not in doc:
            return fail(f"missing top-level key {key!r}")
        if not isinstance(doc[key], want) or isinstance(doc[key], bool):
            return fail(f"{key} is {type(doc[key]).__name__}, want {want}")
    if doc["schema"] != STORE_SCHEMA:
        return fail(f"schema {doc['schema']!r} != {STORE_SCHEMA!r}")
    if doc["kind"] not in _BACKENDS:
        return fail(f"kind {doc['kind']!r} not in {_BACKENDS}")
    for key in ("entries", "shards", "segments", "logical_bytes",
                "physical_bytes"):
        if doc[key] < 0:
            return fail(f"{key} is negative: {doc[key]}")

    namespaces = doc["namespaces"]
    unknown = set(namespaces) - _KNOWN_NAMESPACES
    if unknown:
        return fail(f"unknown namespaces: {sorted(unknown)}")
    for ns, count in namespaces.items():
        if not isinstance(count, int) or count < 1:
            return fail(f"namespace {ns!r}: bad count {count!r}")
    if sum(namespaces.values()) != doc["entries"]:
        return fail(
            f"namespace histogram sums to {sum(namespaces.values())}, "
            f"entries is {doc['entries']}"
        )

    counters = doc["counters"]
    for key in _COUNTER_KEYS:
        value = counters.get(key)
        if not isinstance(value, int) or value < 0:
            return fail(f"counters.{key} is {value!r}")

    if doc["kind"] == "sharded":
        for key in ("stored_bytes", "dead_bytes", "shard_count"):
            if not isinstance(doc.get(key), int) or doc[key] < 0:
                return fail(f"sharded stats: bad {key} {doc.get(key)!r}")
        if doc["stored_bytes"] > doc["physical_bytes"]:
            return fail(
                f"stored_bytes {doc['stored_bytes']} exceeds "
                f"physical_bytes {doc['physical_bytes']}"
            )
        if doc["shards"] > doc["shard_count"]:
            return fail(
                f"{doc['shards']} live shards exceed shard_count "
                f"{doc['shard_count']}"
            )
        if doc["entries"] and not doc["segments"]:
            return fail("entries present but no segment files")
    else:
        if doc["shards"] != 0:
            return fail(f"legacy store reports {doc['shards']} shards")

    if expect_kind is not None and doc["kind"] != expect_kind:
        return fail(f"kind {doc['kind']!r}, expected {expect_kind!r}")
    if expect_entries is not None and doc["entries"] != expect_entries:
        return fail(
            f"{doc['entries']} entries, expected {expect_entries}"
        )

    print(
        f"OK: {doc['kind']} store at {doc['root']} — "
        f"{doc['entries']} entries, {doc['segments']} segment(s), "
        f"{doc['physical_bytes']:,} bytes on disk "
        f"({doc['logical_bytes']:,} logical)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("stats", help="stats JSON to validate")
    parser.add_argument(
        "--expect-entries",
        type=int,
        default=None,
        metavar="N",
        help="fail unless the store holds exactly N entries",
    )
    parser.add_argument(
        "--expect-kind",
        choices=_BACKENDS,
        default=None,
        help="fail unless the backend is this kind",
    )
    args = parser.parse_args(argv)
    try:
        doc = json.loads(Path(args.stats).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        return fail(f"cannot read {args.stats}: {exc}")
    if not isinstance(doc, dict):
        return fail("document is not a JSON object")
    return check(
        doc,
        expect_entries=args.expect_entries,
        expect_kind=args.expect_kind,
    )


if __name__ == "__main__":
    sys.exit(main())
