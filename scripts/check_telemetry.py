#!/usr/bin/env python3
"""Validate a fleet-telemetry span log (and its Chrome export).

Usage::

    PYTHONPATH=src python -m repro run synth --all-systems --scale 0.1 \
        --no-cache --telemetry fleet.jsonl --telemetry-chrome fleet.json
    python scripts/check_telemetry.py fleet.jsonl --chrome fleet.json

Checks the JSONL stream written by ``--telemetry``:

* header line: ``kind=session`` with the ``repro-telemetry/1`` schema;
* every span line: known span name, unique integer id, parent defined
  before use, coherent interval, valid status;
* tree shape: at least one ``run_many`` root, every child interval
  contained in its parent's (within ``--epsilon`` seconds of clock
  slack for worker-measured spans).

With ``--chrome`` also validates the Perfetto export: required keys per
event, known phases, non-negative ``X`` durations with proper slice
nesting per track, balanced async ``b``/``e`` pairs, and the scheduler +
worker track metadata.

Exit codes: 0 = valid; 1 = any violation (all are listed on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "repro-telemetry/1"
SPAN_NAMES = {
    "run_many", "submit", "cache-probe", "execute", "retry", "serialize",
}
STATUSES = {"open", "ok", "error"}
CHROME_PHASES = {"M", "X", "b", "e", "i"}

#: Slack (trace microseconds) tolerated in Chrome slice-nesting checks —
#: span endpoints are independently rounded to the microsecond.
EPS_US = 5


def check_jsonl(path: Path, epsilon: float) -> list:
    problems = []
    try:
        lines = path.read_text("utf-8").splitlines()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not lines:
        return [f"{path} is empty"]

    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        return [f"line 1: not JSON: {exc}"]
    if header.get("kind") != "session":
        problems.append("line 1: first line must have kind=session")
    if header.get("schema") != SCHEMA:
        problems.append(
            f"line 1: schema {header.get('schema')!r}, expected {SCHEMA!r}"
        )
    for key in ("run_id", "started_unix", "pid"):
        if key not in header:
            problems.append(f"line 1: session header missing {key!r}")

    spans = {}  # id -> span dict
    roots = 0
    for lineno, raw in enumerate(lines[1:], start=2):
        if not raw.strip():
            continue
        try:
            span = json.loads(raw)
        except ValueError as exc:
            problems.append(f"line {lineno}: not JSON: {exc}")
            continue
        where = f"line {lineno}"
        if span.get("kind") != "span":
            problems.append(f"{where}: kind {span.get('kind')!r} != 'span'")
            continue
        sid = span.get("id")
        if not isinstance(sid, int):
            problems.append(f"{where}: non-integer span id {sid!r}")
            continue
        if sid in spans:
            problems.append(f"{where}: duplicate span id {sid}")
            continue
        name = span.get("name")
        if name not in SPAN_NAMES:
            problems.append(f"{where}: unknown span name {name!r}")
        status = span.get("status")
        if status not in STATUSES:
            problems.append(f"{where}: invalid status {status!r}")
        start = span.get("start_unix")
        end = span.get("end_unix")
        if not isinstance(start, (int, float)):
            problems.append(f"{where}: missing/invalid start_unix")
            start = None
        if end is not None and not isinstance(end, (int, float)):
            problems.append(f"{where}: invalid end_unix {end!r}")
            end = None
        if start is not None and end is not None and end < start:
            problems.append(f"{where}: span ends before it starts")
        if end is None and status != "open":
            problems.append(f"{where}: status {status!r} but no end_unix")
        parent = span.get("parent")
        if parent is None:
            if name == "run_many":
                roots += 1
            else:
                problems.append(f"{where}: non-run_many span has no parent")
        elif parent not in spans:
            problems.append(
                f"{where}: parent {parent} not defined before use"
            )
        else:
            pspan = spans[parent]
            pstart = pspan.get("start_unix")
            pend = pspan.get("end_unix")
            if (
                start is not None
                and isinstance(pstart, (int, float))
                and start < pstart - epsilon
            ):
                problems.append(
                    f"{where}: span {sid} starts {pstart - start:.3f}s "
                    f"before its parent {parent}"
                )
            if (
                end is not None
                and isinstance(pend, (int, float))
                and end > pend + epsilon
            ):
                problems.append(
                    f"{where}: span {sid} ends {end - pend:.3f}s "
                    f"after its parent {parent}"
                )
        spans[sid] = span

    if not spans:
        problems.append("no spans recorded")
    elif roots == 0:
        problems.append("no run_many root span")
    return problems


def check_chrome(path: Path) -> list:
    problems = []
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents missing or empty"]

    named_tids = set()
    slices = {}  # tid -> list of (ts, dur)
    async_open = {}  # (cat, id, name) -> open count
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in CHROME_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add(ev.get("tid"))
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: invalid ts {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X slice with invalid dur {dur!r}")
            else:
                slices.setdefault(ev.get("tid"), []).append((ts, dur))
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            if ev.get("id") is None:
                problems.append(f"{where}: async event without id")
                continue
            if ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                if async_open.get(key, 0) <= 0:
                    problems.append(f"{where}: 'e' without matching 'b' {key}")
                else:
                    async_open[key] -= 1

    for key, count in sorted(async_open.items(), key=str):
        if count:
            problems.append(f"unclosed async span(s) {key}: {count} open")

    # X slices on one track must be disjoint or properly nested.
    for tid, intervals in sorted(slices.items(), key=str):
        stack = []  # end timestamps of enclosing slices
        for ts, dur in sorted(intervals, key=lambda i: (i[0], -i[1])):
            while stack and stack[-1] <= ts + EPS_US:
                stack.pop()
            if stack and ts + dur > stack[-1] + EPS_US:
                problems.append(
                    f"tid {tid}: slice at ts={ts} dur={dur} partially "
                    f"overlaps an enclosing slice (ends at {stack[-1]})"
                )
            stack.append(ts + dur)
        if tid not in named_tids:
            problems.append(f"tid {tid}: carries slices but has no name")

    if 0 not in named_tids:
        problems.append("no scheduler track (tid 0 thread_name) metadata")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="span log written by --telemetry")
    parser.add_argument(
        "--chrome",
        type=Path,
        help="also validate this --telemetry-chrome export",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.05,
        help="seconds of parent/child clock slack tolerated (default 0.05)",
    )
    args = parser.parse_args(argv)

    problems = check_jsonl(Path(args.jsonl), args.epsilon)
    if not problems:
        print(f"jsonl ok: {args.jsonl}")
    if args.chrome is not None:
        chrome_problems = check_chrome(args.chrome)
        if not chrome_problems:
            print(f"chrome ok: {args.chrome}")
        problems += chrome_problems
    for problem in problems:
        print(f"telemetry: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
