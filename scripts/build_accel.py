#!/usr/bin/env python3
"""Build the compiled hot core (``repro.accel._hotcore``) in-tree.

The compiled backend is a single-file CPython extension with no
dependencies beyond a C compiler and the Python headers, so the build
is one compiler invocation — no setuptools build isolation, no wheel,
no network.  The extension lands next to its source under
``src/repro/accel/`` where the selection layer picks it up on import.

Usage::

    python scripts/build_accel.py            # build (no-op if fresh)
    python scripts/build_accel.py --force    # rebuild unconditionally
    python scripts/build_accel.py --check    # report build status, don't build

Exit status is 0 when the extension is present and importable
afterwards, 1 otherwise — ``--check`` makes this scriptable for CI
gating (the pure-Python backend never needs this to run).
"""

from __future__ import annotations

import argparse
import importlib
import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "src" / "repro" / "accel" / "_hotcore.c"

CFLAGS = ["-O2", "-fPIC", "-shared", "-Wall", "-Wextra", "-Wno-unused-parameter"]


def target_path() -> Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SOURCE.with_name("_hotcore" + suffix)


def find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def verify_import() -> bool:
    """Import the freshly built extension in a clean child interpreter."""
    code = (
        "import sys; sys.path.insert(0, r'%s'); "
        "import repro.accel as a; "
        "sys.exit(0 if a.compiled_available() else 1)" % (REPO / "src")
    )
    return subprocess.run([sys.executable, "-c", code]).returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force", action="store_true", help="rebuild even if up to date"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="only report whether the extension is built and importable",
    )
    args = parser.parse_args(argv)

    target = target_path()
    if args.check:
        if target.exists() and verify_import():
            print(f"built: {target.relative_to(REPO)}")
            return 0
        print("compiled backend not built (pure Python remains available)")
        return 1

    if (
        not args.force
        and target.exists()
        and target.stat().st_mtime >= SOURCE.stat().st_mtime
    ):
        print(f"up to date: {target.relative_to(REPO)}")
        return 0

    cc = find_compiler()
    if cc is None:
        print("no C compiler found (set CC); pure Python backend unaffected")
        return 1
    include = sysconfig.get_paths()["include"]
    cmd = [cc, *CFLAGS, f"-I{include}", str(SOURCE), "-o", str(target)]
    print(" ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print("build failed; pure Python backend unaffected")
        return 1
    if not verify_import():
        print("extension built but failed to import; removing it")
        target.unlink(missing_ok=True)
        return 1
    print(f"built: {target.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
