#!/usr/bin/env python3
"""Validate a forensics JSON document from ``repro inspect --json``.

Checks the ``repro-forensics/1`` schema structurally:

* every top-level key present with the right type;
* the attribution block internally consistent — breakdown keys drawn
  from :data:`repro.obs.CAUSE_KINDS`, counts summing to the abort total,
  ``attributed`` matching the non-``unattributed`` count, every per-abort
  record carrying a known cause kind;
* wasted-work buckets complete per core, per-core sums equal to
  ``total_cycles`` times active cores' bucket totals, and the grand
  totals consistent with the per-core rows;
* an empty ``gauge_mismatches`` — the ledger's cycle accounting must
  agree with the simulator's gauges or the report is not trustworthy.

``--min-attributed F`` additionally enforces an attribution floor
(CI runs with 0.95 on the contended smoke workload).

Exit status 0 iff the document is valid.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.forensics import FORENSICS_SCHEMA  # noqa: E402
from repro.obs import CAUSE_KINDS  # noqa: E402
from repro.obs.ledger import WASTED_WORK_BUCKETS  # noqa: E402

_TOP_KEYS = {
    "schema": str,
    "workload": str,
    "system": str,
    "threads": int,
    "seed": int,
    "scale": (int, float),
    "cycles": int,
    "commits": int,
    "fallback_commits": int,
    "aborts": int,
    "attempts": int,
    "forwards": int,
    "attribution": dict,
    "wasted_work": dict,
    "gauge_mismatches": dict,
}


def fail(msg: str) -> int:
    print(f"INVALID FORENSICS: {msg}", file=sys.stderr)
    return 1


def check(doc: dict, *, min_attributed: float | None) -> int:
    for key, want in _TOP_KEYS.items():
        if key not in doc:
            return fail(f"missing top-level key {key!r}")
        if not isinstance(doc[key], want):
            return fail(f"{key} is {type(doc[key]).__name__}, want {want}")
    if doc["schema"] != FORENSICS_SCHEMA:
        return fail(f"schema {doc['schema']!r} != {FORENSICS_SCHEMA!r}")

    att = doc["attribution"]
    for key in ("total_aborts", "attributed", "attributed_fraction",
                "breakdown", "cascades", "chains", "aborts"):
        if key not in att:
            return fail(f"attribution missing {key!r}")
    if att["total_aborts"] != doc["aborts"]:
        return fail(
            f"attribution.total_aborts {att['total_aborts']} != "
            f"aborts {doc['aborts']}"
        )
    breakdown = att["breakdown"]
    unknown = set(breakdown) - set(CAUSE_KINDS)
    if unknown:
        return fail(f"unknown cause kinds in breakdown: {sorted(unknown)}")
    if sum(breakdown.values()) != att["total_aborts"]:
        return fail("breakdown counts do not sum to total_aborts")
    attributed = sum(
        n for kind, n in breakdown.items() if kind != "unattributed"
    )
    if attributed != att["attributed"]:
        return fail(
            f"attributed {att['attributed']} != non-unattributed "
            f"breakdown sum {attributed}"
        )
    for i, rec in enumerate(att["aborts"]):
        if rec.get("kind") not in CAUSE_KINDS:
            return fail(f"abort record {i}: unknown kind {rec.get('kind')!r}")
        for key in ("core", "epoch", "cycle"):
            if not isinstance(rec.get(key), int):
                return fail(f"abort record {i}: bad {key} {rec.get(key)!r}")
    for i, cascade in enumerate(att["cascades"]):
        if cascade.get("size") != len(cascade.get("members", [])):
            return fail(f"cascade {i}: size != len(members)")

    wasted = doc["wasted_work"]
    for key in ("total_cycles", "per_core", "totals"):
        if key not in wasted:
            return fail(f"wasted_work missing {key!r}")
    totals = {bucket: 0 for bucket in WASTED_WORK_BUCKETS}
    for core, buckets in wasted["per_core"].items():
        if set(buckets) != set(WASTED_WORK_BUCKETS):
            return fail(
                f"core {core}: buckets {sorted(buckets)} != "
                f"{sorted(WASTED_WORK_BUCKETS)}"
            )
        if sum(buckets.values()) < wasted["total_cycles"]:
            return fail(
                f"core {core}: buckets sum below total_cycles "
                f"(stalled under-counted)"
            )
        for bucket, n in buckets.items():
            if not isinstance(n, int) or n < 0:
                return fail(f"core {core}: bad {bucket} {n!r}")
            totals[bucket] += n
    if totals != wasted["totals"]:
        return fail(
            f"wasted_work.totals {wasted['totals']} != per-core sum {totals}"
        )

    if doc["gauge_mismatches"]:
        return fail(
            "ledger/gauge cycle accounting disagrees: "
            f"{doc['gauge_mismatches']}"
        )

    if min_attributed is not None:
        frac = att["attributed_fraction"]
        if frac < min_attributed:
            return fail(
                f"attributed fraction {frac:.3f} below floor "
                f"{min_attributed:.3f}"
            )

    print(
        f"OK: {doc['workload']}/{doc['system']} — {doc['aborts']} aborts, "
        f"{att['attributed_fraction']:.1%} attributed, "
        f"{len(att['cascades'])} cascade(s)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="forensics JSON to validate")
    parser.add_argument(
        "--min-attributed",
        type=float,
        default=None,
        metavar="F",
        help="fail unless attributed_fraction >= F (e.g. 0.95)",
    )
    args = parser.parse_args(argv)
    try:
        doc = json.loads(Path(args.report).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        return fail(f"cannot read {args.report}: {exc}")
    if not isinstance(doc, dict):
        return fail("document is not a JSON object")
    return check(doc, min_attributed=args.min_attributed)


if __name__ == "__main__":
    sys.exit(main())
