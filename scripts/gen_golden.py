#!/usr/bin/env python3
"""Generate (or verify) the golden determinism digests.

For every STAMP workload, two seeds, and a spread of HTM systems, run a
small fixed-scale simulation and hash the *complete* canonical
``SimulationResult`` (``to_dict`` serialized with sorted keys).  The
digests pin the simulator's observable behaviour bit-for-bit: any change
to event ordering, coherence resolution, or stats accounting shows up as
a digest mismatch.

The checked-in file ``tests/golden_digests.json`` was produced by the
pre-optimisation (seed) engine; ``tests/test_golden_determinism.py``
replays the same matrix on the current engine and compares.  Regenerate
only when an *intentional* behaviour change lands::

    PYTHONPATH=src python scripts/gen_golden.py --write

``--verify`` (the default) exits non-zero on any mismatch, so the script
doubles as a standalone equivalence checker outside pytest.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden_digests.json"

#: The replay matrix.  Small scales keep the whole sweep interactive while
#: still exercising conflicts, forwarding, validation, and the fallback
#: path on every workload.
STAMP_WORKLOADS = (
    "genome",
    "intruder",
    "kmeans-h",
    "labyrinth",
    "ssca2",
    "vacation",
    "yada",
)
SEEDS = (1, 2)
SYSTEMS = ("baseline", "chats", "pchats")
THREADS = 4
SCALE = 0.2


def result_digest(result) -> str:
    """Canonical sha256 of a :class:`SimulationResult`."""
    payload = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_case(workload: str, system: str, seed: int):
    from repro.sim.config import SystemKind, table2_config
    from repro.sim.simulator import run_simulation
    from repro.workloads.base import make_workload

    kind = next(k for k in SystemKind if k.value == system)
    wl = make_workload(workload, threads=THREADS, seed=seed, scale=SCALE)
    return run_simulation(wl, kind, htm=table2_config(kind))


def case_key(workload: str, system: str, seed: int) -> str:
    return f"{workload}/{system}/t{THREADS}/s{seed}/x{SCALE}"


def generate() -> dict:
    digests = {}
    for workload in STAMP_WORKLOADS:
        for system in SYSTEMS:
            for seed in SEEDS:
                result = run_case(workload, system, seed)
                digests[case_key(workload, system, seed)] = result_digest(result)
    return digests


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"overwrite {GOLDEN_PATH.name} with freshly generated digests",
    )
    args = parser.parse_args(argv)

    digests = generate()
    if args.write:
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(digests)} digests -> {GOLDEN_PATH}")
        return 0

    golden = json.loads(GOLDEN_PATH.read_text())
    bad = {k for k in golden if digests.get(k) != golden[k]}
    bad |= set(digests) - set(golden)
    if bad:
        for key in sorted(bad):
            print(
                f"MISMATCH {key}: golden={golden.get(key, '<absent>')[:12]} "
                f"now={digests.get(key, '<absent>')[:12]}",
                file=sys.stderr,
            )
        return 1
    print(f"OK: {len(digests)} digests match {GOLDEN_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
