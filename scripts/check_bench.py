#!/usr/bin/env python3
"""Validate a ``repro bench`` report and gate it against the baseline.

Usage::

    PYTHONPATH=src python -m repro bench --quick
    python scripts/check_bench.py benchmarks/perf/history

The report argument is either a ``BENCH_<rev>.json`` file or a directory
(the newest ``BENCH_*.json`` inside is gated — ``repro bench`` defaults
to writing into ``benchmarks/perf/history/``).

Exit codes: 0 = schema valid and no regression; 1 = regression or
malformed report.

The gate compares each measured case's ``events_per_sec`` against the
reference in ``benchmarks/perf/baseline.json`` and fails when the
measurement falls more than ``--tolerance`` (default 15%) below it.
Floors are per-backend: the top-level ``cases`` are the pure-Python
references and accelerated backends keep theirs under
``backends.<name>``, so a report is only ever gated against floors
measured under the same backend (a compiled run passing the Python
floor says nothing; a Python run failing the compiled floor is noise).
The committed references are deliberately conservative (roughly half of
a developer laptop) so the gate catches real regressions — an engine
change that halves throughput — rather than CI-runner weather.  After an
intentional performance change, or to tighten the floors for a known
hardware class, re-baseline::

    python scripts/check_bench.py bench.json --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "perf" / "baseline.json"
)
DEFAULT_TOLERANCE = 0.15

#: Required keys (and types) of the report envelope and of each case.
REPORT_SCHEMA = {
    "schema": int,
    "rev": str,
    "created_unix": int,
    "python": str,
    "quick": bool,
    "repeat": int,
    "cases": dict,
}
CASE_SCHEMA = {
    "workload": str,
    "system": str,
    "threads": int,
    "seed": int,
    "scale": (int, float),
    "events": int,
    "cycles": int,
    "seconds_best": (int, float),
    "events_per_sec": (int, float),
}


def validate_report(report: dict) -> list:
    """Return a list of schema problems (empty = valid)."""
    problems = []
    for key, typ in REPORT_SCHEMA.items():
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
        elif not isinstance(report[key], typ):
            problems.append(
                f"top-level {key!r} has type {type(report[key]).__name__}, "
                f"expected {typ.__name__}"
            )
    if problems:
        return problems
    if report["schema"] != 1:
        problems.append(f"unsupported schema version {report['schema']}")
    if not report["cases"]:
        problems.append("report contains no cases")
    for key, case in report["cases"].items():
        for field, typ in CASE_SCHEMA.items():
            if field not in case:
                problems.append(f"case {key}: missing {field!r}")
            elif not isinstance(case[field], typ):
                problems.append(
                    f"case {key}: {field!r} has type "
                    f"{type(case[field]).__name__}"
                )
        if "events_per_sec" in case and case.get("events_per_sec", 0) <= 0:
            problems.append(f"case {key}: non-positive events_per_sec")
    return problems


def backend_of(report: dict) -> str:
    """The backend a report was measured under (pre-backend reports are
    pure Python by construction)."""
    return report.get("backend", "python")


def baseline_section(baseline: dict, backend: str) -> dict | None:
    """The baseline floors for ``backend``, or None when uncovered.

    The top-level ``cases``/``max_peak_rss_kb`` are the pure-Python
    floors (the shape every pre-backend baseline already has);
    accelerated backends keep their own floors under
    ``backends.<name>`` so a compiled measurement is never gated
    against a pure-Python reference or vice versa.
    """
    if backend == "python":
        return baseline
    return baseline.get("backends", {}).get(backend)


def gate(report: dict, baseline: dict, tolerance: float) -> int:
    """Print the comparison; return the number of regressions.

    Only same-backend floors gate: a report measured under an
    accelerated backend with no committed floors for it passes with a
    notice (record floors with ``--update-baseline``).
    """
    backend = backend_of(report)
    section = baseline_section(baseline, backend)
    if section is None:
        print(
            f"  SKIP all: baseline has no floors for backend "
            f"{backend!r} (record them with --update-baseline)"
        )
        return 0
    print(f"gating backend {backend!r} against its own floors")
    refs = section.get("cases", {})
    regressions = 0
    for key in sorted(report["cases"]):
        measured = report["cases"][key]["events_per_sec"]
        ref = refs.get(key)
        if ref is None:
            print(f"  SKIP {key}: no baseline reference")
            continue
        floor = ref * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        if measured < floor:
            regressions += 1
        print(
            f"  {verdict:>10s} {key}: {measured:,.0f} ev/s "
            f"(floor {floor:,.0f} = {ref:,.0f} - {tolerance:.0%})"
        )
    rss_max = section.get("max_peak_rss_kb")
    rss = report.get("peak_rss_kb")
    if rss_max is not None and rss is not None:
        if rss > rss_max:
            regressions += 1
            print(
                f"  REGRESSION peak RSS {rss / 1024:.1f} MiB exceeds "
                f"{rss_max / 1024:.1f} MiB"
            )
        else:
            print(
                f"          ok peak RSS {rss / 1024:.1f} MiB "
                f"(max {rss_max / 1024:.1f} MiB)"
            )
    return regressions


def update_baseline(report: dict, baseline_path: Path) -> None:
    """Write the report's numbers into its backend's baseline section."""
    baseline = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    )
    baseline.setdefault("comment", "events/sec references; see check_bench.py")
    backend = backend_of(report)
    if backend == "python":
        section = baseline
    else:
        section = baseline.setdefault("backends", {}).setdefault(backend, {})
    section.setdefault("cases", {})
    for key, case in report["cases"].items():
        section["cases"][key] = round(case["events_per_sec"])
    rss = report.get("peak_rss_kb")
    if rss is not None:
        # Generous ceiling: double the observed peak.
        section["max_peak_rss_kb"] = max(
            2 * rss, section.get("max_peak_rss_kb", 0)
        )
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"updated {baseline_path} with {len(report['cases'])} "
        f"references for backend {backend!r}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report",
        help="BENCH_<rev>.json produced by repro bench, or a directory "
        "(e.g. benchmarks/perf/history) whose newest BENCH_*.json is used",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fraction below the reference (default: 0.15)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the report's numbers into the baseline instead of gating",
    )
    args = parser.parse_args(argv)

    report_path = Path(args.report)
    if report_path.is_dir():
        # mtime picks the newest report; filename breaks ties so two
        # reports written within the same clock tick gate deterministically.
        candidates = sorted(
            report_path.glob("BENCH_*.json"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        if not candidates:
            print(
                f"empty history: no BENCH_*.json in {report_path} — run "
                "`PYTHONPATH=src python -m repro bench` to record one",
                file=sys.stderr,
            )
            return 1
        report_path = candidates[-1]
        print(f"using newest report {report_path}")
    elif not report_path.exists():
        print(f"report {report_path} does not exist", file=sys.stderr)
        return 1
    try:
        report = json.loads(report_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read report: {exc}", file=sys.stderr)
        return 1

    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 1
    print(
        f"schema ok: {len(report['cases'])} cases @ rev {report['rev']} "
        f"(backend {backend_of(report)})"
    )

    if args.update_baseline:
        update_baseline(report, args.baseline)
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to gate", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    regressions = gate(report, baseline, args.tolerance)
    if regressions:
        print(f"{regressions} regression(s)", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
