#!/usr/bin/env python3
"""Validate a trace file produced by ``repro run --trace`` / ``repro trace``.

JSONL traces are checked line by line: every line must parse as a JSON
object whose ``kind`` names a registered probe event type, carrying the
fields that event declares (extra/missing keys fail) with the declared
types (an int where the event declares ``str`` fails — and a bool where
it declares ``int``: JSON ``true`` is not a cycle count), plus a
non-negative integer ``cycle`` that never decreases across the file
(the bus is the engine's event order).  The field/type tables are built
from :data:`repro.obs.EVENT_TYPES` itself, so a new event kind (the
forensics layer grows them) is validated the moment it is registered —
it cannot drift from the exporter.

Chrome traces (``--format chrome``) are checked structurally: a single
JSON object with a ``traceEvents`` list, B/E slices balanced per track,
and per-track monotonic timestamps.

Exit status 0 iff the trace is valid; used by CI on a tiny smoke run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import EVENT_TYPES  # noqa: E402


def _field_types() -> dict:
    """Per-kind ``field -> python type`` tables from the event classes.

    ``Optional[T]`` unwraps to ``T`` (presence is governed by the
    optional-field rule; when present, the value must be a ``T``).
    """
    import dataclasses
    import typing

    tables: dict = {}
    for kind, cls in EVENT_TYPES.items():
        hints = typing.get_type_hints(cls)
        table = {}
        for f in dataclasses.fields(cls):
            hint = hints[f.name]
            if typing.get_origin(hint) is typing.Union:
                inner = [
                    a for a in typing.get_args(hint) if a is not type(None)
                ]
                hint = inner[0] if len(inner) == 1 else object
            table[f.name] = hint
        tables[kind] = table
    return tables


def _type_ok(value, expected: type) -> bool:
    if expected is bool:
        return isinstance(value, bool)
    if expected is int:
        # bool subclasses int; JSON true is not a core id or a cycle.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is object:
        return True
    return isinstance(value, expected)


def check_jsonl(path: str) -> int:
    import dataclasses

    fields = {
        kind: {f.name for f in dataclasses.fields(cls)}
        for kind, cls in EVENT_TYPES.items()
    }
    optional = {
        kind: {
            f.name
            for f in dataclasses.fields(cls)
            if f.default is None
        }
        for kind, cls in EVENT_TYPES.items()
    }
    types = _field_types()
    count = 0
    last_cycle = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                return fail(f"line {lineno}: empty line")
            try:
                record = json.loads(line)
            except ValueError as exc:
                return fail(f"line {lineno}: not JSON ({exc})")
            if not isinstance(record, dict):
                return fail(f"line {lineno}: not an object")
            kind = record.get("kind")
            if kind not in fields:
                return fail(f"line {lineno}: unknown kind {kind!r}")
            have = set(record) - {"kind"}
            want = fields[kind]
            if not (want - optional[kind] <= have <= want):
                return fail(
                    f"line {lineno}: {kind} fields {sorted(have)} != "
                    f"declared {sorted(want)}"
                )
            for name in have:
                expected = types[kind][name]
                if not _type_ok(record[name], expected):
                    return fail(
                        f"line {lineno}: {kind}.{name} = {record[name]!r} "
                        f"is not a {expected.__name__}"
                    )
            cycle = record.get("cycle")
            if not isinstance(cycle, int) or cycle < 0:
                return fail(f"line {lineno}: bad cycle {cycle!r}")
            if cycle < last_cycle:
                return fail(
                    f"line {lineno}: cycle {cycle} < previous {last_cycle}"
                )
            last_cycle = cycle
            count += 1
    if count == 0:
        return fail("trace is empty")
    print(f"OK: {count} events, cycles 0..{last_cycle}")
    return 0


def check_chrome(path: str) -> int:
    try:
        payload = json.loads(Path(path).read_text("utf-8"))
    except ValueError as exc:
        return fail(f"not JSON ({exc})")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("missing or empty traceEvents")
    last_ts: dict = {}
    depth: dict = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts, tid = ev.get("ts"), ev.get("tid")
        if not isinstance(ts, int) or ts < 0:
            return fail(f"entry {i}: bad ts {ts!r}")
        if ts < last_ts.get(tid, 0):
            return fail(f"entry {i}: ts {ts} regresses on track {tid}")
        last_ts[tid] = ts
        if ph == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif ph == "E":
            depth[tid] = depth.get(tid, 0) - 1
            if depth[tid] < 0:
                return fail(f"entry {i}: E without B on track {tid}")
    unbalanced = {tid: d for tid, d in depth.items() if d}
    if unbalanced:
        return fail(f"unbalanced slices: {unbalanced}")
    print(f"OK: {len(events)} entries on {len(last_ts)} track(s)")
    return 0


def fail(msg: str) -> int:
    print(f"INVALID TRACE: {msg}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace file to validate")
    parser.add_argument(
        "--format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="expected trace format (default: jsonl)",
    )
    args = parser.parse_args(argv)
    if args.format == "chrome":
        return check_chrome(args.trace)
    return check_jsonl(args.trace)


if __name__ == "__main__":
    sys.exit(main())
