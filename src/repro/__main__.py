"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run`` — run one workload under one (or all) HTM systems and print the
  result summary::

      python -m repro run kmeans-h --system chats --scale 0.4
      python -m repro run yada --all-systems

* ``figure`` — regenerate one of the paper's figures as a text table::

      python -m repro figure fig4
      python -m repro figure fig9 --scale 0.25

* ``list`` — list registered workloads, systems, and experiments.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import SystemKind, all_system_kinds, run_workload, workload_names
from .experiments.registry import EXPERIMENTS
from .experiments.figures import FIGURES, run_figure


def _system_from_name(name: str) -> SystemKind:
    for kind in SystemKind:
        if kind.value == name:
            return kind
    raise SystemExit(
        f"unknown system {name!r}; choose from "
        f"{[k.value for k in SystemKind]}"
    )


def _print_result(result) -> None:
    s = result.summary()
    print(f"workload         : {s['workload']}")
    print(f"system           : {s['system']}")
    print(f"execution time   : {s['cycles']:,} cycles")
    print(
        f"commits          : {s['commits']} "
        f"({s['hw_commits']} HTM, {s['fallback_commits']} fallback)"
    )
    print(f"aborts           : {s['aborts']}")
    causes = {k: v for k, v in s["abort_breakdown"].items() if v}
    print(f"abort causes     : {causes or '—'}")
    print(f"spec forwards    : {s['spec_forwards']}")
    print(f"network flits    : {s['flits']:,}")
    print(f"lock acquisitions: {s['lock_acquisitions']}")
    print(f"power grants     : {s['power_grants']}")
    labels = result.stats.label_summary()
    if any(label for label in labels):
        print("per-site         :")
        for label, counts in labels.items():
            print(
                f"  {label or '(unlabelled)':<16s} "
                f"commits={counts['commits']:<6d} aborts={counts['aborts']}"
            )


def cmd_run(args: argparse.Namespace) -> int:
    systems = (
        list(all_system_kinds())
        if args.all_systems
        else [_system_from_name(args.system)]
    )
    baseline_cycles = None
    for system in systems:
        result = run_workload(
            args.workload,
            system,
            threads=args.threads,
            seed=args.seed,
            scale=args.scale,
        )
        if len(systems) > 1:
            if baseline_cycles is None:
                baseline_cycles = result.cycles
            print(
                f"{system.value:<18s} cycles={result.cycles:>9,d} "
                f"norm={result.cycles / baseline_cycles:5.3f} "
                f"aborts={result.total_aborts:>6d} "
                f"forwards={result.stats.spec_forwards:>7d}"
            )
        else:
            _print_result(result)
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    result = run_figure(args.figure)
    print(result.rendering)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    for fid in sorted(FIGURES):
        result = run_figure(fid)
        print()
        print("#" * 72)
        print()
        print(result.rendering)
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("systems:")
    for kind in SystemKind:
        print(f"  {kind.value}")
    print("experiments:")
    for exp_id, exp in sorted(EXPERIMENTS.items()):
        print(f"  {exp_id:<8s} {exp.title}  [{exp.bench}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CHATS (MICRO 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload")
    p_run.add_argument("workload", choices=workload_names())
    p_run.add_argument(
        "--system",
        default="chats",
        help="HTM system (default: chats)",
    )
    p_run.add_argument(
        "--all-systems",
        action="store_true",
        help="run the workload under all six systems",
    )
    p_run.add_argument("--threads", type=int, default=16)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--scale", type=float, default=0.4)
    p_run.set_defaults(fn=cmd_run)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("figure", choices=sorted(FIGURES))
    p_fig.add_argument("--scale", type=float, default=None)
    p_fig.set_defaults(fn=cmd_figure)

    p_list = sub.add_parser("list", help="list workloads/systems/experiments")
    p_list.set_defaults(fn=cmd_list)

    p_rep = sub.add_parser(
        "report", help="regenerate the entire evaluation (all figures)"
    )
    p_rep.add_argument("--scale", type=float, default=None)
    p_rep.set_defaults(fn=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
