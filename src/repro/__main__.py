"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run`` — run one workload under one (or all) HTM systems and print the
  result summary::

      python -m repro run kmeans-h --system chats --scale 0.4
      python -m repro run yada --all-systems

* ``figure`` — regenerate one of the paper's figures as a text table::

      python -m repro figure fig4
      python -m repro figure fig9 --scale 0.25

* ``trace`` — run one workload with the instrumentation bus recording
  every probe event, write the trace (JSONL or Chrome ``trace_event``
  for Perfetto), and optionally dump reconstructed forwarding chains::

      python -m repro trace synth --system chats --out trace.jsonl
      python -m repro trace synth --format chrome --out trace.json --chains

* ``bench`` — run the pinned performance regression suite and write a
  ``BENCH_<rev>.json`` report (gate it with ``scripts/check_bench.py``)::

      python -m repro bench
      python -m repro bench --quick synth

* ``inspect`` — run one workload with the transaction ledger attached and
  print the forensic report (causal abort attribution, abort cascades,
  chain stats, wasted-work buckets); ``--json``/``--html`` export it::

      python -m repro inspect counter --system chats --scale 0.1
      python -m repro inspect synth --json forensics.json

* ``compare`` — A/B two systems on the same workload/seed and print the
  per-cause abort and wasted-work deltas::

      python -m repro compare chats htm-be --workload cadd

* ``trend`` — read every ``BENCH_*.json`` report in
  ``benchmarks/perf/history/`` and render the cross-revision perf
  trajectory with regression flags (exit 1 on a corrupt report)::

      python -m repro trend
      python -m repro trend benchmarks/perf/history --json trend.json

* ``cache`` — inspect and maintain the on-disk result store:
  ``stats`` (``--json`` emits the ``repro-store/1`` document),
  ``verify``, ``compact``, ``gc SIZE``, and ``migrate`` (legacy
  one-JSON-per-result cache -> sharded store, verified in place)::

      python -m repro cache stats --json
      python -m repro cache migrate
      python -m repro cache gc 512M

* ``list`` — list registered workloads, systems, and experiments.

``run`` and ``report`` also take the fleet-telemetry flags:
``--telemetry FILE`` writes the batch's span log as JSONL
(``scripts/check_telemetry.py`` validates it), ``--telemetry-chrome
FILE`` exports the same spans as a Perfetto-loadable Chrome trace (one
track per worker plus a scheduler track), ``--metrics FILE`` dumps the
aggregated metrics registry (Prometheus text for ``.prom``, JSON
otherwise), and ``--live`` repaints a terminal dashboard (throughput,
ETA, cache hit rate, worker lanes) while the sweep runs.

``run`` also accepts ``--trace FILE`` / ``--trace-format {jsonl,chrome}``
(shorthand for the ``trace`` subcommand) and ``--timeline W`` to print a
per-``W``-cycle activity table from the run's interval metrics.

``run``, ``figure``, and ``report`` share the experiment runner's cache
and parallelism flags: ``--workers N`` fans simulations out over N
processes (default ``REPRO_WORKERS``), ``--cache-dir`` relocates the disk
cache (default ``.repro_cache``, env ``REPRO_CACHE_DIR``), ``--no-cache``
disables the disk cache for the invocation, and ``--store
{legacy,sharded,auto}`` picks the result-store backend (env
``REPRO_STORE``; see docs/ARCHITECTURE.md).

``run``, ``report``, and ``bench`` take ``--backend
{python,compiled,lanes,auto}`` to select the simulation backend (default
``$REPRO_BACKEND`` or pure Python); ``compiled`` uses the C hot core
built by ``scripts/build_accel.py``, ``lanes`` batches seed-sibling
sweeps, and every backend produces byte-identical results (see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from . import all_system_kinds, workload_names
from . import store as store_pkg
from .experiments import runner
from .experiments.registry import EXPERIMENTS, experiment_configs
from .experiments.figures import FIGURES, run_figure
from .systems import UnknownSystemError, get_spec, registered_systems


def _system_from_name(name: str):
    try:
        return get_spec(name)
    except UnknownSystemError as exc:
        raise SystemExit(str(exc)) from None


def _print_result(result) -> None:
    s = result.summary()
    print(f"workload         : {s['workload']}")
    print(f"system           : {s['system']}")
    print(f"execution time   : {s['cycles']:,} cycles")
    print(
        f"commits          : {s['commits']} "
        f"({s['hw_commits']} HTM, {s['fallback_commits']} fallback)"
    )
    print(f"aborts           : {s['aborts']}")
    causes = {k: v for k, v in s["abort_breakdown"].items() if v}
    print(f"abort causes     : {causes or '—'}")
    print(f"spec forwards    : {s['spec_forwards']}")
    print(f"network flits    : {s['flits']:,}")
    print(f"lock acquisitions: {s['lock_acquisitions']}")
    print(f"power grants     : {s['power_grants']}")
    labels = result.stats.label_summary()
    if any(label for label in labels):
        print("per-site         :")
        for label, counts in labels.items():
            print(
                f"  {label or '(unlabelled)':<16s} "
                f"commits={counts['commits']:<6d} aborts={counts['aborts']}"
            )


def _apply_runner_flags(
    args: argparse.Namespace, progress=None
) -> None:
    """Propagate the shared cache/parallelism flags to the runner."""
    _apply_backend_flag(args)
    if getattr(args, "store", None) is not None:
        store_pkg.select_store(args.store)
    if getattr(args, "scale", None) is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    if getattr(args, "workers", None) is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)
    runner.configure(
        cache_dir=getattr(args, "cache_dir", None),
        disk_cache=False if getattr(args, "no_cache", False) else None,
        progress=progress if progress is not None else _progress_printer,
    )


def _apply_backend_flag(args: argparse.Namespace) -> None:
    """Select the simulation backend for ``--backend`` (or leave the
    ``REPRO_BACKEND`` environment selection untouched without it)."""
    if getattr(args, "backend", None) is not None:
        from . import accel

        accel.select_backend(args.backend)


@contextlib.contextmanager
def _telemetry_scope(args: argparse.Namespace):
    """Install a fleet-telemetry session for the ``--telemetry`` /
    ``--telemetry-chrome`` / ``--metrics`` / ``--live`` flags.

    Yields the :class:`~repro.obs.telemetry.LiveDashboard` (or ``None``
    without ``--live``); on exit the session is uninstalled and the
    requested export files are written.
    """
    from .obs import telemetry

    wants = (
        getattr(args, "telemetry", None)
        or getattr(args, "telemetry_chrome", None)
        or getattr(args, "metrics", None)
        or getattr(args, "live", False)
    )
    if not wants:
        yield None
        return
    session = telemetry.install(telemetry.TelemetrySession())
    dash = (
        telemetry.LiveDashboard(session, stream=sys.stderr)
        if getattr(args, "live", False)
        else None
    )
    try:
        yield dash
    finally:
        telemetry.uninstall(session)
        if dash is not None:
            dash.close()
        if getattr(args, "telemetry", None):
            spans = session.write_jsonl(args.telemetry)
            print(
                f"telemetry        : {spans:,} spans -> {args.telemetry} "
                "(jsonl)"
            )
        if getattr(args, "telemetry_chrome", None):
            session.write_chrome(args.telemetry_chrome)
            print(
                f"telemetry        : {session.span_count:,} spans -> "
                f"{args.telemetry_chrome} (chrome)"
            )
        if getattr(args, "metrics", None):
            session.metrics.write_snapshot(args.metrics)
            print(
                f"metrics          : {len(session.metrics)} metrics -> "
                f"{args.metrics}"
            )


def _progress_printer(done: int, total: int, cfg, source: str) -> None:
    manifest = runner.last_manifest()
    elapsed = ""
    if manifest is not None:
        entry = manifest.entry_for(cfg)
        if entry is not None and entry.source == "run":
            elapsed = f"  ({entry.seconds:.2f}s)"
    print(
        f"  [{done:>3d}/{total}] {source:<6s} {cfg.describe()}{elapsed}",
        file=sys.stderr,
    )
    if done == total and manifest is not None and manifest.entries:
        print(f"  [runner] {manifest.summary()}", file=sys.stderr)


def _print_timeline(result) -> None:
    from .analysis.tables import format_timeline

    print()
    print(
        format_timeline(
            f"Activity timeline — {result.workload}/{result.system} "
            f"(window={result.intervals['window']:,} cycles)",
            result.intervals,
        )
    )


def _traced_run(args, out_path: str, fmt: str, *, chains: bool = False) -> int:
    """Shared engine of ``run --trace`` and the ``trace`` subcommand.

    Tracing wants the live event stream, so this always executes a fresh
    simulation (the disk cache stores results, not event streams).
    """
    from .obs import ChainInspector, ChromeTraceExporter, JsonlTraceWriter
    from .sim.config import table2_config
    from .sim.simulator import Simulator
    from .workloads.base import make_workload

    system = _system_from_name(args.system)
    workload = make_workload(
        args.workload, threads=args.threads, seed=args.seed, scale=args.scale
    )
    sim = Simulator(workload, htm=table2_config(system))
    writer = None
    exporter = None
    if fmt == "chrome":
        exporter = ChromeTraceExporter()
        sim.probe.subscribe(exporter)
    else:
        writer = JsonlTraceWriter(out_path)
        sim.probe.subscribe(writer)
    inspector = ChainInspector(sim).attach() if chains else None
    try:
        result = sim.run(
            max_events=80_000_000, metrics_window=getattr(args, "timeline", None)
        )
    finally:
        if writer is not None:
            writer.close()
    if exporter is not None:
        recorded = exporter.events_recorded
        exporter.write(out_path)
    else:
        recorded = writer.events_written
    _print_result(result)
    if result.intervals is not None:
        _print_timeline(result)
    if inspector is not None:
        print()
        print(inspector.render())
    print(f"\ntrace            : {recorded:,} events -> {out_path} ({fmt})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.trace is not None:
        if args.all_systems:
            raise SystemExit("--trace records one system at a time; "
                             "drop --all-systems or pick --system")
        if args.telemetry or args.telemetry_chrome or args.live:
            raise SystemExit(
                "--telemetry/--live watch the runner fleet; --trace records "
                "one uncached simulation — drop one of them"
            )
        _apply_runner_flags(args)
        return _traced_run(args, args.trace, args.trace_format)
    with _telemetry_scope(args) as dash:
        progress = dash.progress if dash is not None else _progress_printer
        _apply_runner_flags(args, progress=progress)
        systems = (
            list(all_system_kinds())
            if args.all_systems
            else [_system_from_name(args.system)]
        )
        configs = [
            runner.RunConfig.make(
                args.workload,
                system,
                threads=args.threads,
                seed=args.seed,
                scale=args.scale,
                max_events=80_000_000,
                metrics_window=args.timeline,
            )
            for system in systems
        ]
        results = runner.run_many(
            configs, progress=progress, forensics=args.forensics
        )
    baseline_cycles = None
    for system, result in zip(systems, results):
        if len(systems) > 1:
            if baseline_cycles is None:
                baseline_cycles = result.cycles
            print(
                f"{system.value:<18s} cycles={result.cycles:>9,d} "
                f"norm={result.cycles / baseline_cycles:5.3f} "
                f"aborts={result.total_aborts:>6d} "
                f"forwards={result.stats.spec_forwards:>7d}"
            )
        else:
            _print_result(result)
    for result in results:
        if result.intervals is not None:
            _print_timeline(result)
    if args.forensics:
        _print_manifest_forensics(configs)
    return 0


def _print_manifest_forensics(configs) -> None:
    """Digest lines for a ``--forensics`` batch (from the manifest)."""
    manifest = runner.last_manifest()
    if manifest is None:
        return
    print("\nforensic digests :")
    for cfg in configs:
        entry = manifest.entry_for(cfg)
        if entry is None or entry.forensics is None:
            print(
                f"  {cfg.describe()}: (cached result — no event stream; "
                "re-run with --no-cache or use `repro inspect`)"
            )
            continue
        d = entry.forensics
        breakdown = ", ".join(
            f"{k}={v}" for k, v in d["breakdown"].items()
        ) or "none"
        print(
            f"  {cfg.workload}/{cfg.system.value}: "
            f"aborts={d['aborts']} "
            f"attributed={d['attributed_fraction']:.1%} "
            f"[{breakdown}] cascades={d['cascades']} "
            f"max_chain_depth={d['max_chain_depth']}"
        )


def cmd_trace(args: argparse.Namespace) -> int:
    _apply_runner_flags(args)
    return _traced_run(args, args.out, args.format, chains=args.chains)


def _collect(args: argparse.Namespace, system: str):
    from .analysis.forensics import collect_forensics

    spec = _system_from_name(system)
    return collect_forensics(
        args.workload,
        spec,
        threads=args.threads,
        seed=args.seed,
        scale=args.scale,
    )


def cmd_inspect(args: argparse.Namespace) -> int:
    import json

    from .analysis.forensics import (
        FORENSICS_SCHEMA,
        forensics_store_key,
        render_document,
    )

    _apply_runner_flags(args)
    spec = _system_from_name(args.system)
    # A forensic document is fully determined by its parameters and the
    # code fingerprint, so serve repeat inspections from the result
    # store.  --fresh forces a re-run; --html needs the live report.
    use_store = (
        not args.fresh
        and args.html is None
        and runner.disk_cache_enabled()
    )
    store = runner.result_store() if use_store else None
    key = (
        forensics_store_key(
            args.workload,
            spec.name,
            threads=args.threads,
            seed=args.seed,
            scale=args.scale,
        )
        if use_store
        else None
    )
    doc = None
    if store is not None:
        doc = store.get_json(key)
        if doc is not None and doc.get("schema") != FORENSICS_SCHEMA:
            store.note_corrupt(key, "forensics document schema mismatch")
            doc = None
    report = None
    if doc is None:
        report = _collect(args, args.system)
        doc = report.to_dict()
        if store is not None:
            try:
                store.put_json(key, doc)
            except OSError:
                pass
    else:
        print(f"  [inspect] cached report ({store.kind} store; "
              "--fresh re-runs)", file=sys.stderr)
    print(render_document(doc))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"\njson             : {args.json}")
    if args.html is not None:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(report.to_html())
        print(f"html             : {args.html}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import json

    from .analysis.forensics import compare_reports, render_compare

    report_a = _collect(args, args.system_a)
    report_b = _collect(args, args.system_b)
    print(render_compare(report_a, report_b))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                compare_reports(report_a, report_b),
                fh, indent=2, sort_keys=True,
            )
        print(f"\njson             : {args.json}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    _apply_runner_flags(args)
    result = run_figure(args.figure)
    print(result.rendering)
    return 0


def _parse_size(text: str) -> int:
    """``512M``-style sizes for ``cache gc`` (plain bytes, K/M/G suffix)."""
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    text = text.strip().upper()
    mult = 1
    if text and text[-1] in units:
        mult = units[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * mult)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a size: {text!r} (want bytes or K/M/G suffix)"
        ) from None


def cmd_cache(args: argparse.Namespace) -> int:
    import json

    _apply_runner_flags(args)
    root = runner.cache_dir()

    if args.action == "migrate":
        from .store.migrate import MigrationError, migrate_cache

        def progress(i: int, total: int, key: str) -> None:
            print(f"  [migrate] {i}/{total} {key}", file=sys.stderr)

        try:
            summary = migrate_cache(
                root,
                keep_legacy=args.keep_legacy,
                progress=progress if args.verbose else None,
            )
        except MigrationError as exc:
            print(f"migrate: {exc}", file=sys.stderr)
            return 1
        if not summary["was_legacy_layout"]:
            print(f"migrate          : {root} is not a legacy cache "
                  "(nothing to do)")
            return 0
        print(f"migrate          : {root} -> sharded store")
        print(f"  entries          {summary['entries']}")
        print(f"  migrated         {summary['migrated']} "
              f"(verified {summary['verified']}, "
              f"skipped {summary['skipped']})")
        print(f"  bytes migrated   {summary['bytes_migrated']:,}")
        print(f"  legacy removed   {summary['legacy_files_removed']} "
              f"file(s){' (kept: --keep-legacy)' if args.keep_legacy else ''}")
        return 0

    store = runner.result_store()
    if args.action == "stats":
        doc = store.stats()
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        print(f"store            : {store.kind} at {root}")
        print(f"  entries          {doc['entries']}")
        print(f"  shards           {doc['shards']}")
        print(f"  segments         {doc['segments']}")
        print(f"  logical bytes    {doc['logical_bytes']:,}")
        print(f"  physical bytes   {doc['physical_bytes']:,}")
        for ns, count in sorted(doc["namespaces"].items()):
            print(f"  ns {ns:<14s} {count}")
        return 0

    if args.action == "verify":
        problems = store.verify()
        for problem in problems:
            print(f"  {problem}")
        status = f"{len(problems)} problem(s)" if problems else "clean"
        print(f"verify           : {store.kind} store at {root} — {status}")
        return 1 if problems else 0

    if args.action == "compact":
        summary = store.compact()
        print(f"compact          : {store.kind} store at {root}")
        for k, v in sorted(summary.items()):
            print(f"  {k:<16s} {v:,}" if isinstance(v, int)
                  else f"  {k:<16s} {v}")
        return 0

    if args.action == "gc":
        evicted = store.gc(args.max_bytes)
        print(f"gc               : evicted {len(evicted)} entries to fit "
              f"{args.max_bytes:,} bytes")
        for key in evicted:
            print(f"  {key}")
        return 0

    raise SystemExit(f"unknown cache action {args.action!r}")


def cmd_report(args: argparse.Namespace) -> int:
    with _telemetry_scope(args) as dash:
        progress = dash.progress if dash is not None else _progress_printer
        _apply_runner_flags(args, progress=progress)
        # Batch the union of every figure's declared configs so shared
        # cells (the main six-system sweep feeds Figs. 1, 4-7, and 11)
        # run once, spread over the worker pool; rendering then hits the
        # warm cache.
        union = [
            cfg for fid in sorted(FIGURES) for cfg in experiment_configs(fid)
        ]
        runner.run_many(
            union, progress=progress, forensics=args.forensics
        )
        sweep_manifest = runner.last_manifest()
        for fid in sorted(FIGURES):
            result = run_figure(fid)
            print()
            print("#" * 72)
            print()
            print(result.rendering)
    counters = runner.counters()
    print(
        f"\n[runner] simulations={counters.simulations} "
        f"memory_hits={counters.memory_hits} disk_hits={counters.disk_hits}",
        file=sys.stderr,
    )
    if sweep_manifest is not None and sweep_manifest.entries:
        print(f"[runner] sweep: {sweep_manifest.summary()}", file=sys.stderr)
    if args.forensics:
        _print_manifest_forensics(union)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .experiments import bench

    _apply_backend_flag(args)

    def progress(key: str) -> None:
        print(f"  [bench] {key}", file=sys.stderr)

    report = bench.run_suite(
        workloads=args.workloads or None,
        quick=args.quick,
        repeat=args.repeat if args.repeat is not None else bench.DEFAULT_REPEAT,
        progress=progress,
    )
    out = (
        Path(args.out)
        if args.out is not None
        else bench.default_output_path(report)
    )
    bench.write_report(report, out)
    print(bench.format_report(report))
    print(f"\nreport           : {out}")
    return 0


def cmd_trend(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis.trends import (
        TrendError,
        format_trend,
        load_history,
        trend_dict,
    )

    baseline = None
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        try:
            baseline = json.loads(baseline_path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline: {exc}", file=sys.stderr)
            return 1
    try:
        reports = load_history(Path(args.history))
    except TrendError as exc:
        print(f"trend: {exc}", file=sys.stderr)
        return 1
    trend = trend_dict(reports, baseline=baseline, tolerance=args.tolerance)
    print(format_trend(reports, baseline=baseline, tolerance=args.tolerance))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(trend, fh, indent=2, sort_keys=True)
        print(f"\njson             : {args.json}")
    if args.strict and trend["regressions"]:
        print(
            f"trend: {len(trend['regressions'])} regression flag(s) "
            "with --strict",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    from .systems import system_aliases

    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("systems:")
    for spec in registered_systems():
        print(f"  {spec.name:<18s} {spec.describe_layers()}")
        print(f"  {'':<18s} {spec.describe_table2()}")
    aliases = system_aliases()
    if aliases:
        print("system aliases:")
        for alias, target in sorted(aliases.items()):
            print(f"  {alias:<18s} -> {target}")
    print("experiments:")
    for exp_id, exp in sorted(EXPERIMENTS.items()):
        print(f"  {exp_id:<8s} {exp.title}  [{exp.bench}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CHATS (MICRO 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cache_flags = argparse.ArgumentParser(add_help=False)
    cache_flags.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the simulation sweep "
        "(default: $REPRO_WORKERS or 1 = serial)",
    )
    cache_flags.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    cache_flags.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="disk cache location (default: $REPRO_CACHE_DIR or "
        ".repro_cache)",
    )
    cache_flags.add_argument(
        "--store",
        choices=store_pkg.STORES,
        default=None,
        help="result-store backend: the sharded segment store, the "
        "legacy one-JSON-per-result layout, or auto (existing legacy "
        "caches stay legacy, everything else sharded).  Overrides "
        "$REPRO_STORE",
    )

    backend_flags = argparse.ArgumentParser(add_help=False)
    backend_flags.add_argument(
        "--backend",
        choices=("python", "compiled", "lanes", "auto"),
        default=None,
        help="simulation backend: pure Python (default), the compiled hot "
        "core, numpy seed-lane batching, or auto (fastest available; "
        "falls back to python with a warning).  Overrides $REPRO_BACKEND",
    )

    telemetry_flags = argparse.ArgumentParser(add_help=False)
    telemetry_flags.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="write the sweep's fleet-telemetry span log to FILE as JSONL "
        "(validate with scripts/check_telemetry.py)",
    )
    telemetry_flags.add_argument(
        "--telemetry-chrome",
        default=None,
        metavar="FILE",
        help="export the span log as a Chrome trace_event file for "
        "Perfetto: one track per worker plus a scheduler track",
    )
    telemetry_flags.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="dump the aggregated metrics registry (Prometheus text "
        "exposition for .prom/.txt, JSON snapshot otherwise)",
    )
    telemetry_flags.add_argument(
        "--live",
        action="store_true",
        help="repaint a live terminal dashboard (progress, ETA, cache hit "
        "rate, per-worker lanes) while the sweep runs",
    )

    p_run = sub.add_parser(
        "run",
        help="run one workload",
        parents=[cache_flags, telemetry_flags, backend_flags],
    )
    p_run.add_argument("workload", choices=workload_names())
    p_run.add_argument(
        "--system",
        default="chats",
        help="HTM system (default: chats)",
    )
    p_run.add_argument(
        "--all-systems",
        action="store_true",
        help="run the workload under all six systems",
    )
    p_run.add_argument("--threads", type=int, default=16)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--scale", type=float, default=0.4)
    p_run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record every probe event to FILE (forces a fresh, "
        "uncached simulation)",
    )
    p_run.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: one JSON object per line, or Chrome "
        "trace_event JSON for Perfetto (default: jsonl)",
    )
    p_run.add_argument(
        "--timeline",
        type=int,
        default=None,
        metavar="CYCLES",
        help="collect interval metrics in CYCLES-wide windows and print "
        "an activity timeline table",
    )
    p_run.add_argument(
        "--forensics",
        action="store_true",
        help="attach a transaction ledger to each executed simulation and "
        "print per-run forensic digests (cache hits carry none)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run one workload with full event tracing",
        parents=[cache_flags],
    )
    p_trace.add_argument("workload", choices=workload_names())
    p_trace.add_argument(
        "--system", default="chats", help="HTM system (default: chats)"
    )
    p_trace.add_argument("--threads", type=int, default=16)
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.add_argument("--scale", type=float, default=0.4)
    p_trace.add_argument(
        "--out",
        default="trace.jsonl",
        metavar="FILE",
        help="trace output path (default: trace.jsonl)",
    )
    p_trace.add_argument(
        "--format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format (default: jsonl)",
    )
    p_trace.add_argument(
        "--chains",
        action="store_true",
        help="reconstruct and print speculative forwarding chains",
    )
    p_trace.add_argument(
        "--timeline",
        type=int,
        default=None,
        metavar="CYCLES",
        help="also print an activity timeline with CYCLES-wide windows",
    )
    p_trace.set_defaults(fn=cmd_trace)

    p_insp = sub.add_parser(
        "inspect",
        help="forensic report for one run: causal abort attribution, "
        "cascades, chains, wasted work",
        parents=[cache_flags],
    )
    p_insp.add_argument("workload", choices=workload_names())
    p_insp.add_argument(
        "--system", default="chats", help="HTM system (default: chats)"
    )
    p_insp.add_argument("--threads", type=int, default=16)
    p_insp.add_argument("--seed", type=int, default=1)
    p_insp.add_argument("--scale", type=float, default=0.4)
    p_insp.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the full report as JSON "
        "(validate with scripts/check_inspect.py)",
    )
    p_insp.add_argument(
        "--html",
        default=None,
        metavar="FILE",
        help="also write a self-contained HTML report (forces a fresh "
        "simulation)",
    )
    p_insp.add_argument(
        "--fresh",
        action="store_true",
        help="re-simulate even when the result store holds a cached "
        "forensic document for these parameters",
    )
    p_insp.set_defaults(fn=cmd_inspect)

    p_cmp = sub.add_parser(
        "compare",
        help="A/B two systems on the same workload/seed with per-cause "
        "abort and wasted-work deltas",
    )
    p_cmp.add_argument("system_a", metavar="SYSTEM_A")
    p_cmp.add_argument("system_b", metavar="SYSTEM_B")
    p_cmp.add_argument(
        "--workload",
        default="cadd",
        choices=workload_names(),
        help="workload to compare on (default: cadd, the contended "
        "chained-counter microbenchmark where forwarding pays off)",
    )
    p_cmp.add_argument("--threads", type=int, default=16)
    p_cmp.add_argument("--seed", type=int, default=1)
    p_cmp.add_argument("--scale", type=float, default=0.4)
    p_cmp.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the comparison as JSON",
    )
    p_cmp.set_defaults(fn=cmd_compare)

    p_fig = sub.add_parser(
        "figure", help="regenerate a paper figure", parents=[cache_flags]
    )
    p_fig.add_argument("figure", choices=sorted(FIGURES))
    p_fig.add_argument("--scale", type=float, default=None)
    p_fig.set_defaults(fn=cmd_figure)

    p_bench = sub.add_parser(
        "bench",
        help="run the pinned performance regression suite",
        parents=[backend_flags],
        description=(
            "Run the pinned benchmark cases (fixed workload/threads/seed/"
            "scale, so simulated work is identical across revisions), "
            "report events/sec and peak RSS, and write BENCH_<rev>.json. "
            "Gate against the committed baseline with "
            "scripts/check_bench.py."
        ),
    )
    p_bench.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help="subset of pinned cases to run (default: all)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced pinned scales for CI smoke runs",
    )
    p_bench.add_argument(
        "--repeat",
        type=int,
        default=None,
        metavar="N",
        help="runs per case, best-of (default: 3)",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="report path (default: benchmarks/perf/history/"
        "BENCH_<rev>.json in a source checkout, else ./BENCH_<rev>.json)",
    )
    p_bench.set_defaults(fn=cmd_bench)

    p_cache = sub.add_parser(
        "cache",
        help="inspect and maintain the on-disk result store",
        description=(
            "Operate on the result store under the cache directory: "
            "print a repro-store/1 stats document, read back every entry "
            "(verify), reclaim dead segment space (compact), evict "
            "least-recently-read entries to a byte budget (gc), or "
            "convert a legacy one-JSON-per-result cache to the sharded "
            "layout in place with a verified round-trip (migrate)."
        ),
    )
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    c_stats = cache_sub.add_parser(
        "stats",
        help="entry/shard/segment counts and byte totals",
        parents=[cache_flags],
    )
    c_stats.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-store/1 stats document as JSON "
        "(validate with scripts/check_store.py)",
    )
    c_verify = cache_sub.add_parser(
        "verify",
        help="read back every entry; exit 1 on any corruption",
        parents=[cache_flags],
    )
    c_compact = cache_sub.add_parser(
        "compact",
        help="rewrite segments without dead records; sweep tmp litter",
        parents=[cache_flags],
    )
    c_gc = cache_sub.add_parser(
        "gc",
        help="evict least-recently-read entries to fit a byte budget",
        parents=[cache_flags],
    )
    c_gc.add_argument(
        "max_bytes",
        type=_parse_size,
        metavar="SIZE",
        help="target payload footprint: bytes or K/M/G suffix (e.g. 512M)",
    )
    c_migrate = cache_sub.add_parser(
        "migrate",
        help="convert a legacy cache to the sharded layout in place",
        parents=[cache_flags],
    )
    c_migrate.add_argument(
        "--keep-legacy",
        action="store_true",
        help="leave the legacy files in place after the verified copy "
        "(default: remove them)",
    )
    c_migrate.add_argument(
        "--verbose",
        action="store_true",
        help="print each migrated key",
    )
    for sp in (c_stats, c_verify, c_compact, c_gc, c_migrate):
        sp.set_defaults(fn=cmd_cache)

    p_list = sub.add_parser("list", help="list workloads/systems/experiments")
    p_list.set_defaults(fn=cmd_list)

    p_trend = sub.add_parser(
        "trend",
        help="render the cross-revision perf trajectory from "
        "benchmarks/perf/history",
        description=(
            "Read every BENCH_<rev>.json report in the history directory "
            "(oldest first by creation time), render events/sec per pinned "
            "case across revisions with per-step deltas, and flag "
            "regressions against the previous report and the committed "
            "baseline floors.  Exits 1 on a missing or corrupt report."
        ),
    )
    p_trend.add_argument(
        "history",
        nargs="?",
        default="benchmarks/perf/history",
        help="history directory of BENCH_*.json reports "
        "(default: benchmarks/perf/history)",
    )
    p_trend.add_argument(
        "--baseline",
        default="benchmarks/perf/baseline.json",
        metavar="FILE",
        help="baseline floors to annotate (default: "
        "benchmarks/perf/baseline.json)",
    )
    p_trend.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        metavar="FRAC",
        help="flag a case dropping more than FRAC below the previous "
        "report (default: 0.15)",
    )
    p_trend.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the trend as JSON",
    )
    p_trend.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any regression is flagged (CI gating)",
    )
    p_trend.set_defaults(fn=cmd_trend)

    p_rep = sub.add_parser(
        "report",
        help="regenerate the entire evaluation (all figures)",
        parents=[cache_flags, telemetry_flags, backend_flags],
    )
    p_rep.add_argument("--scale", type=float, default=None)
    p_rep.add_argument(
        "--forensics",
        action="store_true",
        help="record forensic digests for every simulation the sweep "
        "actually executes and print them after the figures",
    )
    p_rep.set_defaults(fn=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
