"""Plain-text renderers for the paper's figures.

The benches print each figure as an aligned text table (rows = workloads,
columns = systems/parameters) plus the same summary statistics the paper
quotes in prose, so a run of the benchmark suite regenerates the entire
evaluation section in textual form.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence


def format_table(
    title: str,
    row_labels: Sequence[str],
    columns: Mapping[str, Mapping[str, float]],
    *,
    fmt: str = "{:.3f}",
    footer: Optional[Mapping[str, str]] = None,
) -> str:
    """Render ``columns[series][row] -> value`` as an aligned table."""
    series = list(columns)
    label_w = max([len(r) for r in row_labels] + [9])
    col_w = max([len(s) for s in series] + [8]) + 2
    lines = [title, "=" * len(title)]
    header = " " * label_w + "".join(s.rjust(col_w) for s in series)
    lines.append(header)
    lines.append("-" * len(header))
    for row in row_labels:
        cells = []
        for s in series:
            value = columns[s].get(row)
            cells.append(("-" if value is None else fmt.format(value)).rjust(col_w))
        lines.append(row.ljust(label_w) + "".join(cells))
    if footer:
        lines.append("-" * len(header))
        for key, text in footer.items():
            lines.append(f"{key}: {text}")
    return "\n".join(lines)


def format_stacked(
    title: str,
    row_labels: Sequence[str],
    stacks: Mapping[str, Mapping[str, Mapping[str, float]]],
    *,
    fmt: str = "{:.0f}",
) -> str:
    """Render stacked-bar data: ``stacks[series][row][segment] -> value``.

    Used for Fig. 5 (aborts split by reason) and Fig. 6 (conflicting /
    forwarding transactions split by outcome).
    """
    lines = [title, "=" * len(title)]
    for series, rows in stacks.items():
        lines.append(f"[{series}]")
        for row in row_labels:
            segments = rows.get(row, {})
            total = sum(segments.values())
            parts = ", ".join(
                f"{seg}={fmt.format(val)}" for seg, val in segments.items() if val
            )
            lines.append(f"  {row:<12s} total={fmt.format(total):>8s}  {parts}")
    return "\n".join(lines)


def format_heatmap(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Mapping[tuple, float],
    *,
    fmt: str = "{:.3f}",
) -> str:
    """Render Fig. 10-style (rows × cols → value) grids."""
    label_w = max(len(str(r)) for r in row_labels) + 2
    col_w = max(len(str(c)) for c in col_labels) + 4
    lines = [title, "=" * len(title)]
    lines.append(" " * label_w + "".join(str(c).rjust(col_w) for c in col_labels))
    for r in row_labels:
        cells = []
        for c in col_labels:
            v = values.get((r, c))
            cells.append(("-" if v is None else fmt.format(v)).rjust(col_w))
        lines.append(str(r).ljust(label_w) + "".join(cells))
    return "\n".join(lines)


def format_timeline(
    title: str,
    intervals: Mapping[str, object],
    *,
    bar_width: int = 24,
) -> str:
    """Render a serialized :class:`~repro.obs.interval.IntervalMetrics`
    time series (``{"window": W, "bins": [...]}``) as an aligned table.

    One row per cycle window, with a commit-density bar so phase shifts
    (warm-up, contention storms, fallback serialization) are visible at
    a glance in plain text.
    """
    from ..obs.interval import timeline_rows

    rows = timeline_rows(intervals)
    lines = [title, "=" * len(title)]
    if not rows:
        lines.append("(no events recorded)")
        return "\n".join(lines)
    header = (
        f"{'cycles':>12s} {'commits':>8s} {'aborts':>7s} {'forwards':>9s} "
        f"{'vsb_peak':>9s} {'fallback':>9s} {'power':>6s}  activity"
    )
    lines.append(header)
    lines.append("-" * len(header))
    peak = max(row["commits"] for row in rows) or 1
    for row in rows:
        bar = "#" * round(bar_width * row["commits"] / peak)
        lines.append(
            f"{row['start']:>12,d} {row['commits']:>8d} {row['aborts']:>7d} "
            f"{row['forwards']:>9d} {row['vsb_peak']:>9d} "
            f"{row['fallback']:>9d} {row['power']:>6d}  {bar}"
        )
    return "\n".join(lines)


def summarize_series(normalized: Mapping[str, float]) -> Dict[str, float]:
    """Min / max / mean summary of a normalized series."""
    values = list(normalized.values())
    return {
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
    }
