"""Metric helpers shared by the figure harness and benches.

The paper normalises everything to the requester-wins baseline and reports
arithmetic and geometric means over the *STAMP* benchmarks only — the two
microbenchmarks (llb, cadd) are shown but excluded from the means "to
avoid overstating the benefits that could be seen in practice"
(Section VI-C).  The same convention is applied here.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from ..sim.results import SimulationResult

#: The paper's STAMP selection (bayes excluded, Section VI-C).
STAMP_WORKLOADS = (
    "genome",
    "intruder",
    "kmeans-h",
    "kmeans-l",
    "labyrinth",
    "ssca2",
    "vacation",
    "yada",
)

#: Synthetic microbenchmarks — plotted, excluded from the means.
MICRO_WORKLOADS = ("llb-l", "llb-h", "cadd")

#: Fig. 4 presentation order.
EVALUATION_ORDER = STAMP_WORKLOADS + MICRO_WORKLOADS


def is_micro(workload: str) -> bool:
    return workload in MICRO_WORKLOADS


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized_times(
    results: Mapping[str, SimulationResult],
    baselines: Mapping[str, SimulationResult],
) -> Dict[str, float]:
    """Per-workload execution time normalised to the baseline run."""
    out: Dict[str, float] = {}
    for workload, result in results.items():
        out[workload] = result.normalized_time(baselines[workload])
    return out


def mean_normalized_time(
    normalized: Mapping[str, float], *, geometric: bool = False
) -> float:
    """Mean over STAMP workloads only (micros excluded, paper convention)."""
    values = [v for w, v in normalized.items() if not is_micro(w)]
    return geometric_mean(values) if geometric else arithmetic_mean(values)


def normalized_aborts(
    results: Mapping[str, SimulationResult],
    baselines: Mapping[str, SimulationResult],
) -> Dict[str, float]:
    """Aborted transactions relative to baseline (Fig. 5 normalisation)."""
    out: Dict[str, float] = {}
    for workload, result in results.items():
        base = max(1, baselines[workload].total_aborts)
        out[workload] = result.total_aborts / base
    return out


def normalized_flits(
    results: Mapping[str, SimulationResult],
    baselines: Mapping[str, SimulationResult],
) -> Dict[str, float]:
    """Interconnect flits relative to baseline (Fig. 7 normalisation)."""
    out: Dict[str, float] = {}
    for workload, result in results.items():
        base = max(1, baselines[workload].flits)
        out[workload] = result.flits / base
    return out


def order_workloads(names: Iterable[str]) -> List[str]:
    """Sort workload names into the paper's presentation order."""
    known = {name: i for i, name in enumerate(EVALUATION_ORDER)}
    return sorted(names, key=lambda n: (known.get(n, len(known)), n))
