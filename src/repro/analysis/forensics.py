"""Per-run forensic reports: the analysis layer behind ``repro inspect``.

:func:`collect_forensics` executes one *fresh* simulation with a
:class:`~repro.obs.ledger.TxLedger` attached (the disk cache stores
results, not event streams) and folds the ledger into a
:class:`ForensicReport`:

* the causal abort-attribution breakdown and cascade trees
  (:func:`~repro.obs.attribution.attribute_aborts`);
* wasted-work cycle buckets per core
  (:class:`~repro.obs.ledger.WastedWork`), cross-checked against the
  simulator's transient wasted-cycle gauges;
* forwarding-chain depth statistics.

The report renders three ways: an aligned terminal dump
(:meth:`ForensicReport.render`), a versioned JSON document
(:meth:`ForensicReport.to_dict`, schema :data:`FORENSICS_SCHEMA`,
validated by ``scripts/check_inspect.py``), and a self-contained HTML
page (:meth:`ForensicReport.to_html`).  :func:`compare_reports` diffs two
reports on the same workload/seed for ``repro compare``.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass
from typing import Dict, List

from ..obs.attribution import CAUSE_KINDS, AttributionReport, attribute_aborts
from ..obs.ledger import WASTED_WORK_BUCKETS, TxLedger, WastedWork

#: Version tag carried by every JSON export; bump on layout changes.
FORENSICS_SCHEMA = "repro-forensics/1"

#: Cascades shown in full by the terminal/HTML renderings.
TOP_CASCADES = 5

_BUCKET_GLYPHS = dict(
    zip(WASTED_WORK_BUCKETS, ("#", "x", "=", ".")))  # committed/aborted/fallback/stalled


@dataclass(frozen=True)
class ForensicReport:
    """Everything ``repro inspect`` knows about one run."""

    workload: str
    system: str
    threads: int
    seed: int
    scale: float
    cycles: int
    commits: int
    fallback_commits: int
    aborts: int
    attempts: int
    forwards: int
    attribution: AttributionReport
    wasted: WastedWork
    #: Ledger buckets vs the simulator's transient cycle gauges
    #: (committed/aborted/fallback); non-empty = accounting drifted.
    gauge_mismatches: Dict[str, Dict[str, int]]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": FORENSICS_SCHEMA,
            "workload": self.workload,
            "system": self.system,
            "threads": self.threads,
            "seed": self.seed,
            "scale": self.scale,
            "cycles": self.cycles,
            "commits": self.commits,
            "fallback_commits": self.fallback_commits,
            "aborts": self.aborts,
            "attempts": self.attempts,
            "forwards": self.forwards,
            "attribution": self.attribution.to_dict(),
            "wasted_work": self.wasted.to_dict(),
            "gauge_mismatches": self.gauge_mismatches,
        }

    def digest(self) -> Dict[str, object]:
        """Compact summary for run manifests (no per-abort records)."""
        return {
            "schema": FORENSICS_SCHEMA,
            "aborts": self.aborts,
            "attributed_fraction": round(
                self.attribution.attributed_fraction, 4
            ),
            "breakdown": {
                k: v for k, v in self.attribution.breakdown().items() if v
            },
            "cascades": len(self.attribution.cascades),
            "largest_cascade": (
                self.attribution.cascades[0].size
                if self.attribution.cascades else 0
            ),
            "max_chain_depth": self.attribution.chain_stats()["max_depth"],
            "wasted_totals": self.wasted.totals(),
        }

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Aligned terminal rendering of the full report.

        Delegates to :func:`render_document` over :meth:`to_dict`, so a
        live report and a store-cached document render identically by
        construction.
        """
        return render_document(self.to_dict())

    # ------------------------------------------------------------------
    def to_html(self) -> str:
        """Self-contained single-page HTML rendering (no assets)."""
        esc = _html.escape
        breakdown = self.attribution.breakdown()
        rows = "\n".join(
            f"<tr><td>{esc(kind)}</td><td>{count}</td>"
            f"<td>{count / self.attribution.total:.1%}</td></tr>"
            for kind, count in breakdown.items()
            if count and self.attribution.total
        )
        cascade_rows = "\n".join(
            f"<tr><td>T{c.root[0]}#{c.root[1]}</td>"
            f"<td>{c.size}</td><td>{c.depth}</td></tr>"
            for c in self.attribution.cascades[:TOP_CASCADES]
        )
        wasted_rows = "\n".join(
            "<tr><td>core {}</td>{}</tr>".format(
                core,
                "".join(
                    f"<td>{buckets[b]:,}</td>" for b in WASTED_WORK_BUCKETS
                ),
            )
            for core, buckets in sorted(self.wasted.per_core.items())
        )
        chain = self.attribution.chain_stats()
        return f"""<!doctype html>
<html><head><meta charset="utf-8">
<title>Forensics — {esc(self.workload)}/{esc(self.system)}</title>
<style>
body {{ font: 14px/1.5 sans-serif; margin: 2em auto; max-width: 60em; }}
table {{ border-collapse: collapse; margin: 0.5em 0 1.5em; }}
td, th {{ border: 1px solid #999; padding: 0.25em 0.75em; text-align: right; }}
td:first-child, th:first-child {{ text-align: left; }}
</style></head><body>
<h1>Forensics — {esc(self.workload)}/{esc(self.system)}</h1>
<p>threads={self.threads} seed={self.seed} scale={self.scale} —
cycles={self.cycles:,}, attempts={self.attempts},
commits={self.commits} (+{self.fallback_commits} fallback),
aborts={self.aborts}, forwards={self.forwards}</p>
<h2>Abort attribution
({self.attribution.attributed}/{self.attribution.total} attributed,
{self.attribution.attributed_fraction:.1%})</h2>
<table><tr><th>cause</th><th>count</th><th>share</th></tr>
{rows or '<tr><td colspan="3">no aborts</td></tr>'}</table>
<h2>Abort cascades ({len(self.attribution.cascades)})</h2>
<table><tr><th>root</th><th>size</th><th>depth</th></tr>
{cascade_rows or '<tr><td colspan="3">none</td></tr>'}</table>
<h2>Forwarding chains</h2>
<p>{chain['chains']} chains, {chain['forwards']} forwards,
max depth {chain['max_depth']}, mean depth {chain['mean_depth']:.2f}</p>
<h2>Wasted work (cycles per core)</h2>
<table><tr><th>core</th>{''.join(f'<th>{b}</th>' for b in WASTED_WORK_BUCKETS)}</tr>
{wasted_rows}</table>
</body></html>
"""


# ----------------------------------------------------------------------
def render_document(doc: Dict[str, object]) -> str:
    """Aligned terminal rendering of a :meth:`ForensicReport.to_dict`
    document.

    Operates on the persisted JSON form so ``repro inspect`` can serve a
    store-cached report without re-simulating; :meth:`ForensicReport.render`
    delegates here.
    """
    att = doc["attribution"]
    wasted = doc["wasted_work"]
    title = (
        f"Forensics — {doc['workload']}/{doc['system']} "
        f"(threads={doc['threads']} seed={doc['seed']} "
        f"scale={doc['scale']})"
    )
    lines = [title, "=" * len(title)]
    lines.append(
        f"cycles={doc['cycles']:,}  attempts={doc['attempts']}  "
        f"commits={doc['commits']} (+{doc['fallback_commits']} fallback)  "
        f"aborts={doc['aborts']}  forwards={doc['forwards']}"
    )
    lines.append("")
    lines.extend(_render_attribution(att))
    lines.append("")
    lines.extend(_render_cascades(att["cascades"]))
    lines.append("")
    lines.extend(_render_chains(att["chains"]))
    lines.append("")
    lines.extend(_render_wasted(wasted))
    if doc["gauge_mismatches"]:
        lines.append("")
        lines.append(
            "WARNING: ledger buckets disagree with the simulator's "
            f"cycle gauges: {doc['gauge_mismatches']}"
        )
    return "\n".join(lines)


def _render_attribution(att: Dict[str, object]) -> List[str]:
    total = att["total_aborts"]
    lines = [
        f"abort attribution ({att['attributed']}/{total} attributed, "
        f"{att['attributed_fraction']:.1%})"
    ]
    breakdown = att["breakdown"]
    width = max(len(k) for k in CAUSE_KINDS)
    for kind in CAUSE_KINDS:
        count = breakdown.get(kind, 0)
        if not count:
            continue
        share = count / total if total else 0.0
        bar = "#" * max(1, round(share * 40))
        lines.append(f"  {kind:<{width}s} {count:>6d}  {share:6.1%}  {bar}")
    if total == 0:
        lines.append("  (no aborts)")
    return lines


def _render_cascades(cascades: List[Dict[str, object]]) -> List[str]:
    if not cascades:
        return ["abort cascades: none"]
    lines = [
        f"abort cascades: {len(cascades)} "
        f"(largest {cascades[0]['size']} attempts)"
    ]
    for i, c in enumerate(cascades[:TOP_CASCADES], 1):
        root = f"T{c['root'][0]}#{c['root'][1]}"
        members = " ".join(
            f"T{core}#{epoch}" for core, epoch in c["members"]
            if [core, epoch] != list(c["root"])
        )
        lines.append(
            f"  #{i} root={root} size={c['size']} depth={c['depth']}"
            + (f"  victims: {members}" if members else "")
        )
    if len(cascades) > TOP_CASCADES:
        lines.append(f"  ... and {len(cascades) - TOP_CASCADES} more")
    return lines


def _render_chains(stats: Dict[str, object]) -> List[str]:
    if not stats["chains"]:
        return ["forwarding chains: none"]
    hist = "  ".join(
        f"depth {d}: {n}" for d, n in stats["depth_histogram"].items()
    )
    return [
        f"forwarding chains: {stats['chains']} chains, "
        f"{stats['forwards']} forwards, max depth {stats['max_depth']}, "
        f"mean depth {stats['mean_depth']:.2f}",
        f"  {hist}",
    ]


def _render_wasted(wasted: Dict[str, object]) -> List[str]:
    glyphs = "  ".join(
        f"{_BUCKET_GLYPHS[b]}={b}" for b in WASTED_WORK_BUCKETS
    )
    lines = [f"wasted work (cycles per core; {glyphs})"]
    per_core = wasted["per_core"]
    for core_key in sorted(per_core, key=int):
        buckets = per_core[core_key]
        total = sum(buckets.values()) or 1
        bar = ""
        for bucket in WASTED_WORK_BUCKETS:
            bar += _BUCKET_GLYPHS[bucket] * round(
                buckets[bucket] / total * 40
            )
        cells = "  ".join(
            f"{bucket}={buckets[bucket]:,}" for bucket in WASTED_WORK_BUCKETS
        )
        lines.append(f"  core {int(core_key):<3d} |{bar:<40s}| {cells}")
    totals = wasted["totals"]
    cells = "  ".join(
        f"{bucket}={totals[bucket]:,}" for bucket in WASTED_WORK_BUCKETS
    )
    lines.append(f"  total    {cells}")
    return lines


def forensics_store_key(
    workload: str, system: str, *, threads: int, seed: int, scale: float
) -> str:
    """Store key for a cached forensics document.

    Hashes the report parameters together with :data:`FORENSICS_SCHEMA`
    and the runner's code fingerprint, so source edits and schema bumps
    invalidate cached documents exactly like simulation results.
    """
    import hashlib
    import json

    from ..experiments import runner

    blob = json.dumps(
        {
            "schema": FORENSICS_SCHEMA,
            "fingerprint": runner._code_fingerprint(),
            "workload": workload,
            "system": system,
            "threads": threads,
            "seed": seed,
            "scale": scale,
        },
        sort_keys=True,
    )
    return "forensics/" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
def fold_report(
    result, ledger: TxLedger, *, threads: int, seed: int, scale: float
) -> ForensicReport:
    """Fold a finished run and its ledger into a :class:`ForensicReport`.

    The ledger's cycle buckets are cross-checked against the simulator's
    transient gauges; any disagreement lands in
    :attr:`ForensicReport.gauge_mismatches` (rendered as a warning)
    rather than silently shipping wrong numbers.
    """
    attribution = attribute_aborts(ledger)
    wasted = WastedWork.from_ledger(ledger, result.cycles)
    totals = wasted.totals()
    gauges = {
        "committed": result.stats.committed_cycles,
        "aborted_speculative": result.stats.aborted_cycles,
        "fallback": result.stats.fallback_cycles,
    }
    mismatches = {
        bucket: {"ledger": totals[bucket], "gauge": gauges[bucket]}
        for bucket in gauges
        if totals[bucket] != gauges[bucket]
    }
    return ForensicReport(
        workload=result.workload,
        system=result.system,
        threads=threads,
        seed=seed,
        scale=scale,
        cycles=result.cycles,
        commits=result.stats.tx_commits,
        fallback_commits=result.stats.tx_fallback_commits,
        aborts=result.stats.total_aborts,
        attempts=result.stats.tx_attempts,
        forwards=result.stats.spec_forwards,
        attribution=attribution,
        wasted=wasted,
        gauge_mismatches=mismatches,
    )


def collect_forensics(
    workload: str,
    system,
    *,
    threads: int = 16,
    seed: int = 1,
    scale: float = 0.4,
    max_events: int = 80_000_000,
) -> ForensicReport:
    """Run ``workload`` under ``system`` with a ledger attached and fold
    the result into a :class:`ForensicReport`.

    Always a fresh simulation: forensics needs the live event stream,
    which the result cache does not store.
    """
    from ..sim.config import table2_config
    from ..sim.simulator import Simulator
    from ..systems import get_spec
    from ..workloads.base import make_workload

    spec = get_spec(system)
    wl = make_workload(workload, threads=threads, seed=seed, scale=scale)
    sim = Simulator(wl, htm=table2_config(spec))
    ledger = TxLedger(sim)
    with ledger:
        result = sim.run(max_events=max_events)
    return fold_report(
        result, ledger, threads=threads, seed=seed, scale=scale
    )


def report_for_config(cfg):
    """Fresh ledger-attached run of a runner :class:`RunConfig`.

    Returns ``(SimulationResult, ForensicReport)`` — the runner caches
    the former and records the latter's digest on the batch manifest.
    """
    from ..sim.simulator import Simulator
    from ..workloads.base import make_workload

    wl = make_workload(
        cfg.workload, threads=cfg.threads, seed=cfg.seed, scale=cfg.scale
    )
    sim = Simulator(wl, htm=cfg.htm)
    ledger = TxLedger(sim)
    with ledger:
        result = sim.run(
            max_events=cfg.max_events, metrics_window=cfg.metrics_window
        )
    return result, fold_report(
        result, ledger, threads=cfg.threads, seed=cfg.seed, scale=cfg.scale
    )


# ----------------------------------------------------------------------
def compare_reports(a: ForensicReport, b: ForensicReport) -> Dict[str, object]:
    """A/B diff of two reports on the same workload (``repro compare``)."""
    def deltas(xa: Dict[str, int], xb: Dict[str, int]) -> Dict[str, Dict[str, int]]:
        keys = sorted(set(xa) | set(xb))
        return {
            k: {
                "a": xa.get(k, 0),
                "b": xb.get(k, 0),
                "delta": xb.get(k, 0) - xa.get(k, 0),
            }
            for k in keys
        }

    return {
        "schema": FORENSICS_SCHEMA,
        "workload": a.workload,
        "a": {"system": a.system, "cycles": a.cycles, "aborts": a.aborts},
        "b": {"system": b.system, "cycles": b.cycles, "aborts": b.aborts},
        "cycles_delta": b.cycles - a.cycles,
        "abort_breakdown": deltas(
            {k: v for k, v in a.attribution.breakdown().items() if v},
            {k: v for k, v in b.attribution.breakdown().items() if v},
        ),
        "wasted_totals": deltas(a.wasted.totals(), b.wasted.totals()),
    }


def render_compare(a: ForensicReport, b: ForensicReport) -> str:
    """Terminal rendering of :func:`compare_reports`."""
    diff = compare_reports(a, b)
    title = (
        f"Compare — {a.workload} (threads={a.threads} seed={a.seed} "
        f"scale={a.scale}): A={a.system}  B={b.system}"
    )
    lines = [title, "=" * len(title)]
    lines.append(
        f"cycles      A={a.cycles:>12,d}  B={b.cycles:>12,d}  "
        f"delta={diff['cycles_delta']:+,d}"
    )
    lines.append(
        f"aborts      A={a.aborts:>12,d}  B={b.aborts:>12,d}  "
        f"delta={b.aborts - a.aborts:+,d}"
    )
    lines.append("")
    lines.append("abort causes (A vs B):")
    for kind, cell in diff["abort_breakdown"].items():
        lines.append(
            f"  {kind:<20s} A={cell['a']:>8d}  B={cell['b']:>8d}  "
            f"delta={cell['delta']:+d}"
        )
    if not diff["abort_breakdown"]:
        lines.append("  (no aborts on either side)")
    lines.append("")
    lines.append("wasted-work totals (cycles, A vs B):")
    for bucket, cell in diff["wasted_totals"].items():
        lines.append(
            f"  {bucket:<20s} A={cell['a']:>12,d}  B={cell['b']:>12,d}  "
            f"delta={cell['delta']:+,d}"
        )
    return "\n".join(lines)
