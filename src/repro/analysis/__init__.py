"""Post-hoc analysis: metrics, tables, forensics, and perf trends.

Submodules are imported directly (``from repro.analysis import metrics``);
this package deliberately re-exports nothing so the CLI can lazy-import
the heavier modules per subcommand:

* :mod:`~repro.analysis.metrics` — derived figure-of-merit columns;
* :mod:`~repro.analysis.tables` — ASCII tables/heatmaps/timelines;
* :mod:`~repro.analysis.forensics` — abort attribution reports;
* :mod:`~repro.analysis.trends` — cross-revision perf trajectory from
  ``benchmarks/perf/history/`` (``repro trend``).
"""
