"""Cross-revision performance trends from ``benchmarks/perf/history/``.

``repro bench`` appends one ``BENCH_<rev>.json`` report per revision to
the history directory; this module reads the whole archive and renders
the speed curve across PRs — per pinned case, oldest report to newest,
with per-step deltas and regression flags — so the trajectory the
ROADMAP asks for is visible in-repo instead of only as CI artifacts.

Loading is strict: one unreadable, unparsable, or schema-violating
report fails the whole load (:class:`TrendError`), because a silently
skipped report would falsify the curve.  ``repro trend`` maps that to a
nonzero exit.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA = "repro-trend/1"

#: Flag a case dropping more than this fraction below the previous
#: report (matches ``scripts/check_bench.py``'s gate default).
DEFAULT_TOLERANCE = 0.15

#: Keys every history report must carry (subset of the bench schema).
_REQUIRED = ("schema", "rev", "created_unix", "cases")


class TrendError(RuntimeError):
    """History directory missing, empty, or holding a corrupt report."""


def load_history(directory: Path) -> List[Dict]:
    """Load every ``BENCH_*.json`` in ``directory``, oldest first.

    Reports are ordered by ``created_unix`` (filename as the
    deterministic tie-break).  Each returned dict gains a ``_path`` key
    naming its source file.  Raises :class:`TrendError` on a missing
    directory, an empty history, or any corrupt report.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise TrendError(f"history directory {directory} does not exist")
    paths = sorted(directory.glob("BENCH_*.json"))
    if not paths:
        raise TrendError(
            f"no BENCH_*.json reports in {directory} — run "
            "`PYTHONPATH=src python -m repro bench` to record one"
        )
    reports: List[Dict] = []
    for path in paths:
        try:
            report = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            raise TrendError(f"corrupt report {path}: {exc}") from exc
        if not isinstance(report, dict):
            raise TrendError(f"corrupt report {path}: not a JSON object")
        missing = [key for key in _REQUIRED if key not in report]
        if missing:
            raise TrendError(
                f"corrupt report {path}: missing keys {missing}"
            )
        if not isinstance(report["cases"], dict) or not report["cases"]:
            raise TrendError(f"corrupt report {path}: no cases")
        for key, case in report["cases"].items():
            eps = case.get("events_per_sec") if isinstance(case, dict) else None
            if not isinstance(eps, (int, float)) or eps <= 0:
                raise TrendError(
                    f"corrupt report {path}: case {key!r} has no positive "
                    "events_per_sec"
                )
        report["_path"] = str(path)
        reports.append(report)
    reports.sort(key=lambda r: (r["created_unix"], Path(r["_path"]).name))
    return reports


def _case_keys(reports: List[Dict]) -> List[str]:
    keys: List[str] = []
    for report in reports:
        for key in report["cases"]:
            if key not in keys:
                keys.append(key)
    return sorted(keys)


def trend_dict(
    reports: List[Dict],
    *,
    baseline: Optional[Dict] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict:
    """Structured trend: per-case series across reports plus flags.

    A point is flagged as a regression when it drops more than
    ``tolerance`` below the same case's value in the previous report
    that measured it, or falls below the committed baseline floor
    (``ref * (1 - tolerance)``).

    Backend transitions are annotated, never flagged: a delta whose
    previous point was measured under a different backend says nothing
    about a regression (a python report after a compiled one "drops"
    ~40% by construction), so those points carry
    ``backend_change: true`` and are exempt from the step check.
    Baseline floors are looked up per-backend (the top-level ``cases``
    are the pure-Python floors, accelerated ones live under
    ``backends.<name>`` — the layout ``check_bench.py`` maintains).
    """

    def floor_for(backend: str, key: str):
        if backend == "python":
            return (baseline or {}).get("cases", {}).get(key)
        section = (baseline or {}).get("backends", {}).get(backend, {})
        return section.get("cases", {}).get(key)

    cases: Dict[str, List[Dict]] = {}
    regressions: List[Dict] = []
    for key in _case_keys(reports):
        series: List[Dict] = []
        prev: Optional[Dict] = None
        for report_index, report in enumerate(reports):
            case = report["cases"].get(key)
            if case is None:
                continue
            backend = report.get("backend", "python")
            eps = float(case["events_per_sec"])
            delta = None
            backend_change = False
            if prev is not None:
                delta = eps / prev["events_per_sec"] - 1.0
                backend_change = prev["backend"] != backend
            ref = floor_for(backend, key)
            below_floor = (
                ref is not None and eps < float(ref) * (1.0 - tolerance)
            )
            regressed = (
                delta is not None and delta < -tolerance
                and not backend_change
            ) or below_floor
            point = {
                "rev": report["rev"],
                # Position in the (sorted) reports list: the stable
                # column key — two reports can share a rev (one per
                # backend at the same revision).
                "report_index": report_index,
                "created_unix": report["created_unix"],
                "quick": bool(report.get("quick", False)),
                "backend": backend,
                "backend_change": backend_change,
                "events_per_sec": eps,
                "delta": round(delta, 4) if delta is not None else None,
                "baseline_floor": (
                    round(float(ref) * (1.0 - tolerance)) if ref else None
                ),
                "regression": regressed,
            }
            series.append(point)
            if regressed:
                regressions.append(
                    {
                        "case": key,
                        "rev": report["rev"],
                        "prev_rev": prev["rev"] if prev else None,
                        "delta": point["delta"],
                        "events_per_sec": eps,
                        "below_baseline_floor": below_floor,
                    }
                )
            prev = point
        cases[key] = series
    transitions: List[Dict] = []
    prev_report: Optional[Dict] = None
    for report in reports:
        backend = report.get("backend", "python")
        if prev_report is not None:
            prev_backend = prev_report.get("backend", "python")
            if prev_backend != backend:
                transitions.append(
                    {
                        "rev": report["rev"],
                        "prev_rev": prev_report["rev"],
                        "from": prev_backend,
                        "to": backend,
                    }
                )
        prev_report = report
    return {
        "schema": SCHEMA,
        "tolerance": tolerance,
        "reports": [
            {
                "rev": r["rev"],
                "created_unix": r["created_unix"],
                "quick": bool(r.get("quick", False)),
                "backend": r.get("backend", "python"),
                "python": r.get("python"),
                "path": r["_path"],
            }
            for r in reports
        ],
        "cases": cases,
        "backend_transitions": transitions,
        "regressions": regressions,
    }


def _fmt_rate(value: float) -> str:
    if value >= 100_000:
        return f"{value / 1000:,.0f}k"
    if value >= 10_000:
        return f"{value / 1000:.1f}k"
    return f"{value:,.0f}"


def _fmt_when(unix: float) -> str:
    return datetime.fromtimestamp(unix, tz=timezone.utc).strftime(
        "%Y-%m-%d"
    )


def format_trend(
    reports: List[Dict],
    *,
    baseline: Optional[Dict] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Aligned text table: rows = pinned cases, columns = revisions
    (oldest left).  ``!`` marks a flagged point; quick-scale reports are
    starred (their case keys never collide with full-scale ones)."""
    trend = trend_dict(reports, baseline=baseline, tolerance=tolerance)
    revs = [
        r["rev"]
        + ("" if r["backend"] == "python" else f"+{r['backend']}")
        + ("*" if r["quick"] else "")
        for r in trend["reports"]
    ]
    title = (
        f"perf history — {len(reports)} report(s), "
        f"{_fmt_when(reports[0]['created_unix'])} .. "
        f"{_fmt_when(reports[-1]['created_unix'])}"
    )
    label_w = max([len(k) for k in trend["cases"]] + [10]) + 1
    col_w = max([len(r) for r in revs] + [9]) + 2
    lines = [title, "=" * len(title)]
    lines.append(
        "case".ljust(label_w) + "".join(rev.rjust(col_w) for rev in revs)
    )
    lines.append("-" * (label_w + col_w * len(revs)))
    for key, series in trend["cases"].items():
        by_index = {p["report_index"]: p for p in series}
        cells = []
        for report_index, report in enumerate(trend["reports"]):
            point = by_index.get(report_index)
            if point is None:
                cells.append("-".rjust(col_w))
            else:
                text = _fmt_rate(point["events_per_sec"])
                if point["regression"]:
                    text += "!"
                if point["backend_change"]:
                    text += "~"
                cells.append(text.rjust(col_w))
        lines.append(key.ljust(label_w) + "".join(cells))
    lines.append("")
    if trend["backend_transitions"]:
        lines.append(
            "backend transitions ('~' above: cross-backend delta, "
            "never flagged):"
        )
        for t in trend["backend_transitions"]:
            lines.append(
                f"  {t['prev_rev']} ({t['from']}) -> "
                f"{t['rev']} ({t['to']})"
            )
        lines.append("")
    if trend["regressions"]:
        lines.append(
            f"regression flags (tolerance {tolerance:.0%}; '!' above):"
        )
        for flag in trend["regressions"]:
            reason = (
                "below baseline floor"
                if flag["below_baseline_floor"]
                else f"{flag['delta']:+.1%} vs {flag['prev_rev']}"
            )
            lines.append(
                f"  {flag['case']} @ {flag['rev']}: "
                f"{_fmt_rate(flag['events_per_sec'])} ev/s ({reason})"
            )
    else:
        lines.append(f"no regressions flagged (tolerance {tolerance:.0%})")
    lines.append("")
    lines.append("reports (oldest first; * = --quick scales):")
    for i, report in enumerate(trend["reports"], 1):
        star = "*" if report["quick"] else " "
        lines.append(
            f"  [{i}] {report['rev']}{star} "
            f"{_fmt_when(report['created_unix'])}  "
            f"py{report.get('python') or '?'}  "
            f"{report['backend']:<8s}  {report['path']}"
        )
    return "\n".join(lines)
