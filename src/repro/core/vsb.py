"""Validation State Buffer (VSB) — Section IV-B.

The VSB keeps a pristine copy of every speculatively received block until
the speculation has been validated.  Each entry holds a valid bit, the
block address, and the 64-byte copy; the buffer has an *allocation* pointer
(next free entry) and a *validation* pointer (next entry to validate),
walked round-robin by the validation controller.

The storage cost dominates CHATS' 280-byte overhead:
4 entries x (64 B data + 42-bit tag + valid bit) ~ 278 B, plus the 5-bit
PiC and 1-bit Cons registers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

BlockValue = Tuple[int, ...]


class VSBEntry:
    __slots__ = ("valid", "block", "data")

    def __init__(
        self,
        valid: bool = False,
        block: int = 0,
        data: Optional[BlockValue] = None,
    ):
        self.valid = valid
        self.block = block
        self.data = data


class ValidationStateBuffer:
    """Fixed-capacity buffer of pending speculative blocks.

    ``occupancy``/``empty``/``full`` are O(1) via a live-entry counter —
    the commit fence polls ``empty`` on every response.
    """

    __slots__ = ("_entries", "_validate_ptr", "_count")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("VSB needs at least one entry")
        self._entries: List[VSBEntry] = [VSBEntry() for _ in range(size)]
        self._validate_ptr = 0
        self._count = 0

    @property
    def size(self) -> int:
        return len(self._entries)

    def occupancy(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    @property
    def full(self) -> bool:
        return self._count == len(self._entries)

    def contains(self, block: int) -> bool:
        return any(e.valid and e.block == block for e in self._entries)

    def lookup(self, block: int) -> Optional[BlockValue]:
        for entry in self._entries:
            if entry.valid and entry.block == block:
                return entry.data
        return None

    def insert(self, block: int, data: BlockValue) -> bool:
        """Record a speculatively received block.  Returns False when the
        buffer is full (the holder should then have refused to forward —
        requests advertise ``can_consume`` — but races can still deliver an
        unwanted SpecResp, which the consumer simply drops)."""
        if self.contains(block):
            return True  # duplicate delivery; first copy wins
        for entry in self._entries:
            if not entry.valid:
                entry.valid = True
                entry.block = block
                entry.data = data
                self._count += 1
                return True
        return False

    def next_to_validate(self) -> Optional[VSBEntry]:
        """Round-robin selection of the next entry needing validation."""
        n = len(self._entries)
        for offset in range(n):
            # Advance from the slot index itself, never from
            # ``list.index(entry)``: VSBEntry compares by value, so equal
            # entries in different slots would rewind the pointer and
            # starve the earlier slot.
            idx = (self._validate_ptr + offset) % n
            entry = self._entries[idx]
            if entry.valid:
                self._validate_ptr = (idx + 1) % n
                return entry
        return None

    def retire(self, block: int) -> None:
        """Validation succeeded: drop the buffered copy (the cache copy is
        now the authoritative, genuinely-owned version)."""
        for entry in self._entries:
            if entry.valid and entry.block == block:
                entry.valid = False
                entry.data = None
                self._count -= 1
                return
        raise KeyError(f"block {block:#x} not in VSB")

    def clear(self) -> None:
        """Abort: discard all pending speculative copies immediately."""
        for entry in self._entries:
            entry.valid = False
            entry.data = None
        self._validate_ptr = 0
        self._count = 0

    def blocks(self) -> List[int]:
        return [e.block for e in self._entries if e.valid]
