"""Position in Chain (PiC) register — the heart of CHATS (Sections III-B,
IV-C).

Each core has a small (5-bit) register encoding its transaction's position
in the chain of speculative forwardings.  The register holds either an
integer in ``[0, limit)`` or the reserved *unset* encoding (``None`` here,
the all-ones pattern in hardware).  The invariant maintained is:

    a producer's PiC is strictly greater than the PiC of every transaction
    that has consumed speculative data from it.

Conflict-time comparisons of the (possibly stale) remote PiC against the
local PiC decide between requester-speculates and requester-wins so that
this invariant — and therefore acyclicity — is preserved whenever the
exchanged PiCs are current.  Stale exchanges can still create cycles; those
are caught by the validation-time check (``local >= remote`` aborts the
validating consumer).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class HolderAction(Enum):
    """What the conflicting holder should do, per the Section IV-C rules."""

    FORWARD = "forward"  # requester-speculates: send SpecResp
    ABORT_LOCAL = "abort-local"  # requester-wins: holder aborts


@dataclass(slots=True)
class HolderDecision:
    action: HolderAction
    #: New PiC for the holder when forwarding (None = leave unchanged).
    new_local_pic: Optional[int] = None
    #: PiC value to stamp on the SpecResp message.
    message_pic: Optional[int] = None


class PiCRegister:
    """The per-core PiC register plus the Cons bit."""

    __slots__ = ("_limit", "_init", "value", "cons")

    def __init__(self, limit: int, init: int):
        if not 0 <= init < limit:
            raise ValueError("initial PiC must lie within the range")
        self._limit = limit
        self._init = init
        self.value: Optional[int] = None
        #: Cons bit: the transaction holds speculative data pending
        #: validation (Section IV).  While set, the PiC must not grow.
        self.cons: bool = False

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def init(self) -> int:
        return self._init

    @property
    def is_set(self) -> bool:
        return self.value is not None

    def reset(self) -> None:
        """Transaction abort or commit: PiC returns to the unset encoding."""
        self.value = None
        self.cons = False

    def clear_cons(self) -> None:
        """All speculative data validated; the PiC itself stays valid until
        commit as the transaction may still be a producer (Section IV-B)."""
        self.cons = False

    # ------------------------------------------------------------------
    # Holder-side decision (Fig. 3 cases).
    # ------------------------------------------------------------------
    def decide_as_holder(self, remote: Optional[int]) -> HolderDecision:
        """Resolve a conflicting request given the requester's PiC.

        Implements the five cases of Section IV-C.  Overflow/underflow of
        either side's required update resolves to requester-wins.
        """
        local = self.value
        if local is None and remote is None:
            # Fig. 3A: two unconnected transactions; holder anchors the
            # chain at the initial (mid-range) value.
            if self._init - 1 < 0:  # pragma: no cover - init is mid-range
                return HolderDecision(HolderAction.ABORT_LOCAL)
            return HolderDecision(
                HolderAction.FORWARD,
                new_local_pic=self._init,
                message_pic=self._init,
            )
        if local is None:
            # Fig. 3C: unchained holder, chained requester: holder hooks in
            # *above* the requester.
            assert remote is not None
            new_local = remote + 1
            if new_local >= self._limit:
                return HolderDecision(HolderAction.ABORT_LOCAL)
            return HolderDecision(
                HolderAction.FORWARD, new_local_pic=new_local, message_pic=new_local
            )
        if remote is None:
            # Fig. 3B: chained holder, unchained requester: requester will
            # adopt local - 1, so underflow is checked here on its behalf.
            if local - 1 < 0:
                return HolderDecision(HolderAction.ABORT_LOCAL)
            return HolderDecision(HolderAction.FORWARD, message_pic=local)
        # Both set.
        if remote < local:
            # Rule (ii): the requester already sits below us in the chain;
            # forwarding cannot create a cycle and nothing changes.
            return HolderDecision(HolderAction.FORWARD, message_pic=local)
        # remote >= local: the holder would need to raise its PiC above the
        # requester's.  That is only safe when the holder is not currently
        # consuming unvalidated data (else it could climb past a producer).
        if self.cons:
            # Fig. 3D/3E: requester-wins.
            return HolderDecision(HolderAction.ABORT_LOCAL)
        new_local = remote + 1
        if new_local >= self._limit:
            return HolderDecision(HolderAction.ABORT_LOCAL)
        # Fig. 3F: the holder re-anchors above the requester.
        return HolderDecision(
            HolderAction.FORWARD, new_local_pic=new_local, message_pic=new_local
        )

    # ------------------------------------------------------------------
    # Requester-side update on SpecResp receipt.
    # ------------------------------------------------------------------
    def adopt_from_spec_resp(self, message_pic: Optional[int]) -> None:
        """Consume a SpecResp: set our PiC below the producer's if we are
        not already part of a chain, and raise the Cons bit.

        A ``None`` message PiC marks a *power* producer (PCHATS): power
        transactions sit above every chain and consumers keep their PiC.
        """
        if message_pic is not None and self.value is None:
            new_value = message_pic - 1
            if new_value < 0:
                raise ValueError(
                    "underflow on SpecResp adoption; the holder must have "
                    "refused to forward"
                )
            self.value = new_value
        self.cons = True

    def validation_check(self, message_pic: Optional[int]) -> bool:
        """Validation-time cycle check (Section IV-B).

        Returns True when the transaction must abort: the response carries
        a PiC not above our own, revealing a cycle created by a stale PiC
        exchange.  Responses without a PiC (committed/non-speculative
        producers, power producers) never trip the check.
        """
        if message_pic is None or self.value is None:
            return False
        return self.value >= message_pic
