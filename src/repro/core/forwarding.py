"""Forward-eligibility rules (compatibility shim).

The rules live in :mod:`repro.systems.forwardrules` alongside the other
mechanism layers; this module re-exports them under their historical
import path.
"""

from __future__ import annotations

from ..systems.forwardrules import InflightWriteProbe, block_is_forwardable

__all__ = ["InflightWriteProbe", "block_is_forwardable"]
