"""Validation controller (Section IV-B).

One per core.  While the VSB holds speculatively received blocks, a timer
fires every ``validation_interval`` cycles, walks the VSB round-robin, and
re-issues an exclusive coherence request for the selected block.  The
response is judged here:

* value mismatch → abort (``VALIDATION``) — this is also how producer
  aborts cascade to consumers, with no dedicated signalling;
* still-speculative response (``SpecResp``) with matching value → keep
  waiting (the producer has not committed yet); the PiC carried by the
  response is checked against the local PiC and ``local >= remote`` aborts
  (``CYCLE`` — stale-PiC races, Section IV-C); the naive-R-S policy also
  burns one unit of its escape budget here;
* genuine exclusive data with matching value → the block is validated:
  the VSB entry retires and the cache copy becomes the real owned version.

When the VSB drains completely the Cons bit clears (the PiC itself stays
valid until commit — the transaction may still be a producer) and a commit
waiting on the drain is released.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..htm.stats import AbortReason
from ..net.messages import Message, MessageKind
from ..obs.events import ValidationMismatch, ValidationOk, ValidationStart, VsbDrain
from ..sim.engine import CancelToken

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Core


class ValidationController:
    """Drives periodic validation of one core's VSB."""

    def __init__(self, core: "Core"):
        self._core = core
        self._timer: Optional[CancelToken] = None
        self._inflight = False

    # ------------------------------------------------------------------
    def arm(self, tx) -> None:
        """Ensure the timer is running (called on first SpecResp)."""
        if self._timer is not None or self._inflight:
            return
        if tx is None or not tx.active or tx.vsb.empty:
            return
        interval = max(1, self._core.htm.validation_interval or 1)
        self._timer = self._core.engine.schedule(interval, self._fire)

    def cancel(self) -> None:
        """Abort/commit of the attempt: stop the timer."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._inflight = False

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        self._timer = None
        tx = self._core.tx
        if tx is None or not tx.active or tx.vsb.empty:
            return
        entry = tx.vsb.next_to_validate()
        if entry is None:  # pragma: no cover - vsb.empty already checked
            return
        self._inflight = True
        epoch = tx.epoch
        self._core.stats.validations_attempted += 1
        probe = self._core.sim.probe
        if probe._subscribers:
            probe.emit(
                ValidationStart(
                    cycle=self._core.engine.now, core=self._core.core_id,
                    block=entry.block, epoch=epoch,
                )
            )
        self._core.l1.issue_validation(
            tx, entry.block, lambda msg: self._on_response(epoch, msg)
        )

    def _on_response(self, epoch: int, msg: Message) -> None:
        self._inflight = False
        core = self._core
        tx = core.tx
        if tx is None or not tx.active or tx.epoch != epoch:
            return
        copy = tx.vsb.lookup(msg.block)
        if copy is None:
            # Entry vanished (should not happen while active); keep going.
            self._reschedule(tx)
            return
        if msg.kind is MessageKind.NACK:
            self._reschedule(tx)
            return
        # The responder is the abort's proximate source when it is a core
        # (a SpecResp producer); directory-sourced data has no core to
        # blame — the forensics layer then walks the forwarding edges to
        # find the producer whose abort let memory serve stale data.
        src = msg.src if msg.src >= 0 else None
        if msg.kind is MessageKind.SPEC_RESP:
            if msg.data != copy:
                core.stats.validation_mismatches += 1
                self._emit_mismatch(tx, msg.block)
                core.abort_tx(AbortReason.VALIDATION, src=src, block=msg.block)
                return
            # The system's validation scheme judges the fruitless attempt
            # (the generic PiC cycle check — or its budget-bounded
            # ablation — plus any policy-specific escape counter).
            reason = core.policy.check_unsuccessful_validation(tx, msg.pic)
            if reason is not None:
                core.abort_tx(reason, src=src, block=msg.block)
                return
            self._reschedule(tx)
            return
        # Genuine data with ownership.
        if msg.data != copy:
            core.stats.validation_mismatches += 1
            self._emit_mismatch(tx, msg.block)
            core.abort_tx(AbortReason.VALIDATION, src=src, block=msg.block)
            return
        tx.vsb.retire(msg.block)
        core.stats.validations_succeeded += 1
        probe = core.sim.probe
        if probe._subscribers:
            now = core.engine.now
            probe.emit(
                ValidationOk(
                    cycle=now, core=core.core_id,
                    block=msg.block, epoch=tx.epoch,
                )
            )
            probe.emit(
                VsbDrain(
                    cycle=now, core=core.core_id,
                    block=msg.block, occupancy=tx.vsb.occupancy(),
                )
            )
        core.policy.on_successful_validation(tx)
        if tx.vsb.empty:
            tx.pic.clear_cons()
            if tx.commit_pending:
                core.finish_pending_commit()
            return
        self._reschedule(tx)

    def _emit_mismatch(self, tx, block: int) -> None:
        probe = self._core.sim.probe
        if probe._subscribers:
            probe.emit(
                ValidationMismatch(
                    cycle=self._core.engine.now, core=self._core.core_id,
                    block=block, epoch=tx.epoch,
                )
            )

    def _reschedule(self, tx) -> None:
        if self._timer is None and tx.active and not tx.vsb.empty:
            interval = max(1, self._core.htm.validation_interval or 1)
            self._timer = self._core.engine.schedule(interval, self._fire)
