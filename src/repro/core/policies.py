"""Conflict resolution policies for the six HTM systems (Section VI-B).

A :class:`ConflictPolicy` is consulted by the L1 controller of the *holder*
(the cache that detects a conflict on an incoming probe).  It returns a
:class:`PolicyOutcome` naming one of three resolutions:

* ``ABORT_LOCAL`` — requester-wins: the holder's transaction aborts and the
  request is satisfied with non-speculative data;
* ``FORWARD_SPEC`` — requester-speculates: the holder answers with a
  ``SpecResp`` carrying its current (speculative) value and cancels the
  request at the directory, retaining coherence ownership;
* ``NACK`` — requester-stalls: the requester receives a negative response
  and retries later (PowerTM holders; LEVC's base policy).

Policies mutate holder-side chain state (PiC, LEVC flags) as a side effect
of deciding, exactly where the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..htm.stats import AbortReason
from ..htm.txstate import TxState
from ..net.messages import Message
from ..sim.config import HTMConfig, SystemKind
from .forwarding import InflightWriteProbe, block_is_forwardable
from .pic import HolderAction


class Resolution(Enum):
    ABORT_LOCAL = "abort-local"
    FORWARD_SPEC = "forward-spec"
    NACK = "nack"


@dataclass
class PolicyOutcome:
    resolution: Resolution
    #: PiC stamped on the SpecResp (None for naive/LEVC/power producers).
    message_pic: Optional[int] = None
    #: Abort reason charged to the holder on ABORT_LOCAL.
    abort_reason: AbortReason = AbortReason.CONFLICT
    #: SpecResp originates from a power transaction (PCHATS): the consumer
    #: keeps its PiC.
    from_power: bool = False


ABORT = PolicyOutcome(Resolution.ABORT_LOCAL)


class ConflictPolicy:
    """Strategy interface; one instance per simulation run."""

    def __init__(self, htm: HTMConfig):
        self.htm = htm

    def resolve(
        self,
        holder: TxState,
        msg: Message,
        inflight_write: InflightWriteProbe,
    ) -> PolicyOutcome:
        raise NotImplementedError

    # Hooks for the consumer-side validation controller -----------------
    def on_unsuccessful_validation(self, tx: TxState) -> Optional[AbortReason]:
        """Called when a validation attempt returns still-speculative but
        matching data.  Returns an abort reason to kill the consumer, or
        None to keep waiting."""
        return None

    def on_successful_validation(self, tx: TxState) -> None:
        """Called when a block is fully validated."""

    def _common_guards(
        self,
        holder: TxState,
        msg: Message,
        inflight_write: InflightWriteProbe,
    ) -> Optional[PolicyOutcome]:
        """Checks shared by every forwarding policy.  Returns an outcome to
        short-circuit with, or None to continue to the policy's own rules."""
        if msg.non_transactional:
            # Conflicting non-transactional requests always use
            # requester-wins (Section IV-A).
            return ABORT
        if not msg.can_consume:
            # The requester has no VSB slot (or cannot consume at all).
            return ABORT
        if self.htm.forward_class is None or not block_is_forwardable(
            self.htm.forward_class, holder, msg.block, inflight_write
        ):
            return ABORT
        return None


class BaselineRW(ConflictPolicy):
    """Intel RTM-like requester-wins: the holder always aborts."""

    def resolve(self, holder, msg, inflight_write):
        return ABORT


class NaiveRS(ConflictPolicy):
    """Naive requester-speculates: forward whenever structurally possible,
    with no dependency tracking.  Consumers escape cyclic waits through a
    4-bit unsuccessful-validation counter (Section VI-B)."""

    def resolve(self, holder, msg, inflight_write):
        guard = self._common_guards(holder, msg, inflight_write)
        if guard is not None:
            return guard
        return PolicyOutcome(Resolution.FORWARD_SPEC, message_pic=None)

    def on_unsuccessful_validation(self, tx: TxState) -> Optional[AbortReason]:
        tx.naive_budget -= 1
        if tx.naive_budget <= 0:
            return AbortReason.NAIVE_LIMIT
        return None

    def on_successful_validation(self, tx: TxState) -> None:
        tx.naive_budget = self.htm.naive_validation_budget


class CHATS(ConflictPolicy):
    """The paper's proposal: PiC-guided choice between requester-speculates
    and requester-wins (Sections III-B and IV-C)."""

    def resolve(self, holder, msg, inflight_write):
        guard = self._common_guards(holder, msg, inflight_write)
        if guard is not None:
            return guard
        decision = holder.pic.decide_as_holder(msg.pic)
        if decision.action is HolderAction.ABORT_LOCAL:
            return PolicyOutcome(
                Resolution.ABORT_LOCAL, abort_reason=AbortReason.CYCLE
            )
        if decision.new_local_pic is not None:
            holder.pic.value = decision.new_local_pic
        return PolicyOutcome(
            Resolution.FORWARD_SPEC, message_pic=decision.message_pic
        )


class Power(ConflictPolicy):
    """PowerTM: dual priority.  The (single) power transaction wins every
    conflict; as holder it issues NACKs that do not invalidate the
    requester's data, as requester it aborts the holder."""

    def resolve(self, holder, msg, inflight_write):
        if msg.non_transactional:
            return ABORT
        if holder.power:
            return PolicyOutcome(Resolution.NACK)
        if msg.power:
            return PolicyOutcome(
                Resolution.ABORT_LOCAL, abort_reason=AbortReason.POWER
            )
        return ABORT


class PCHATS(ConflictPolicy):
    """CHATS + PowerTM (Section VI-B).

    Power transactions are exclusively *producers*: they sit above every
    chain (their SpecResps carry no PiC and consumers keep theirs), they
    never consume, and conflicts are always resolved in their favour.
    """

    def __init__(self, htm: HTMConfig):
        super().__init__(htm)
        self._chats = CHATS(htm)

    def resolve(self, holder, msg, inflight_write):
        if msg.non_transactional:
            return ABORT
        if holder.power:
            if msg.can_consume and self.htm.forward_class is not None and block_is_forwardable(
                self.htm.forward_class, holder, msg.block, inflight_write
            ):
                return PolicyOutcome(
                    Resolution.FORWARD_SPEC, message_pic=None, from_power=True
                )
            return PolicyOutcome(Resolution.NACK)
        if msg.power:
            # Power requesters never consume; the holder yields.
            return PolicyOutcome(
                Resolution.ABORT_LOCAL, abort_reason=AbortReason.POWER
            )
        return self._chats.resolve(holder, msg, inflight_write)


class LEVCBEIdealized(ConflictPolicy):
    """Best-effort adaptation of LEVC (Section VI-B).

    Built on a requester-stall base with *ideal* timestamps: on a conflict
    the holder forwards a speculative value when LEVC's restrictions allow
    — the producer must not already have a consumer, must not itself have
    consumed (chains of length at most 1), and the requester must be an
    endpoint too.  Otherwise the classic timestamp order decides: an older
    requester aborts the holder, a younger requester is NACKed and stalls.

    The deadlock-avoidance scheme is *unaware* of forwarding dependencies
    (the paper's key criticism): a producer can be selected as victim after
    having forwarded, silently dooming its consumer to a validation abort.
    """

    def resolve(self, holder, msg, inflight_write):
        if msg.non_transactional:
            return ABORT
        guard = self._common_guards(holder, msg, inflight_write)
        restrictions_ok = (
            guard is None
            and not holder.levc_has_consumer  # single consumer per producer
            and not holder.levc_has_consumed  # chain length <= 1
            and not msg.req_produced  # requester must be a chain endpoint
            and not msg.req_consumed
        )
        if restrictions_ok:
            return PolicyOutcome(Resolution.FORWARD_SPEC, message_pic=None)
        if msg.non_transactional:
            return ABORT
        if (
            msg.timestamp is not None
            and holder.timestamp is not None
            and msg.timestamp < holder.timestamp
        ):
            # Older requester wins: the holder is the victim, regardless of
            # any forwarding it has done (cascading aborts follow).
            return ABORT
        return PolicyOutcome(Resolution.NACK)


def make_policy(htm: HTMConfig) -> ConflictPolicy:
    """Instantiate the policy object for ``htm.system``."""
    factories = {
        SystemKind.BASELINE: BaselineRW,
        SystemKind.NAIVE_RS: NaiveRS,
        SystemKind.CHATS: CHATS,
        SystemKind.POWER: Power,
        SystemKind.PCHATS: PCHATS,
        SystemKind.LEVC: LEVCBEIdealized,
    }
    return factories[htm.system](htm)
