"""Conflict resolution policies (compatibility shim).

The policy machinery now lives in :mod:`repro.systems`, decomposed into
mechanism layers: conflict components (:mod:`repro.systems.conflict`),
ordering schemes (:mod:`repro.systems.ordering`), the power-priority
wrapper (:mod:`repro.systems.priority`), validation schemes
(:mod:`repro.systems.validation`), and the spec-driven composer
(:func:`repro.systems.compose.make_policy`).  This module re-exports the
historical names so existing imports keep working.
"""

from __future__ import annotations

from ..systems.base import ConflictPolicy
from ..systems.compose import make_policy
from ..systems.conflict import (
    BaselineRW,
    CHATS,
    LEVCBEIdealized,
    NaiveRS,
    RequesterSpeculates,
    RequesterStalls,
    RequesterWins,
)
from ..systems.outcome import ABORT, PolicyOutcome, Resolution
from ..systems.priority import PowerPriority

__all__ = [
    "ABORT",
    "BaselineRW",
    "CHATS",
    "ConflictPolicy",
    "LEVCBEIdealized",
    "NaiveRS",
    "PolicyOutcome",
    "PowerPriority",
    "RequesterSpeculates",
    "RequesterStalls",
    "RequesterWins",
    "Resolution",
    "make_policy",
]
