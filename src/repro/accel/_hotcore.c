/* _hotcore — the compiled backend's hot core.
 *
 * C implementations of the four innermost hot paths of the simulator,
 * drop-in compatible with their pure-Python counterparts (the golden
 * determinism suite runs the full workload matrix under both backends
 * and requires byte-identical SimulationResults):
 *
 *   Engine / Event   — the calendar-bucket discrete-event queue of
 *                      repro/sim/engine.py: per-cycle FIFO buckets (kept
 *                      as a cycle-sorted C array), a zero-delay lane
 *                      (ring buffer) and a delay-1 lane, O(1) pending(),
 *                      lazy cancellation with threshold compaction.  The
 *                      run loop additionally parks the cyclic garbage
 *                      collector while it drains (allocation on the hot
 *                      path is pooled and bounded, so generational scans
 *                      are pure overhead); the previous GC state is
 *                      restored on exit, including on error.
 *   Message          — the pooled __slots__ coherence-message record of
 *                      repro/net/messages.py, with the same bounded
 *                      free-list recycling and retain/release ownership
 *                      contract.  Constructed through the make_message()
 *                      fastcall factory (no kwargs dict, no Python
 *                      __init__ frame).
 *   Router           — the delivery hot path: Simulator._route plus the
 *                      per-controller dense ``handle`` dispatch collapsed
 *                      into one C call (dst index -> kind index -> handler),
 *                      releasing the message afterwards exactly like the
 *                      Python router.
 *   SendCore         — Crossbar.send: flit accounting, probe gating, and
 *                      the schedule of the delivery callback, all without
 *                      leaving C (the schedule inserts directly into the
 *                      C engine's queue).
 *
 * Everything observable (event order, counters, error messages, pool
 * semantics) matches the Python implementations; only host time differs.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

#define EVENT_INLINE_ARGS 6

typedef struct EngineObject EngineObject;

typedef struct {
    PyObject_HEAD
    long long when;
    PyObject *fn;                       /* NULL once fired or cancelled */
    PyObject *args[EVENT_INLINE_ARGS];  /* inline positional args */
    Py_ssize_t nargs;                   /* -1: args[0] is a tuple */
    EngineObject *engine;               /* strong ref (cancel bookkeeping) */
} EventObject;

struct EngineObject {
    PyObject_HEAD
    /* Zero-delay lane: ring buffer of strong Event refs. */
    EventObject **lane;
    Py_ssize_t lane_cap, lane_head, lane_len;
    /* Delay-1 lane: plain vector. */
    EventObject **nextv;
    Py_ssize_t next_cap, next_len;
    /* Future buckets, sorted ascending by cycle.  The distinct-cycle
     * count is small in practice (a handful of latencies), so a sorted
     * array beats a heap + hash of the Python version. */
    struct bucket {
        long long cycle;
        EventObject **items;
        Py_ssize_t len, cap;
    } *buckets;
    Py_ssize_t nbuckets, buckets_cap;
    long long now;
    long long live, dead;
    long long events_processed;
};

static PyTypeObject Engine_Type;
static PyTypeObject Event_Type;

#define COMPACT_THRESHOLD 64

/* ------------------------------------------------------------------ */

static void
event_clear_payload(EventObject *ev)
{
    PyObject *fn = ev->fn;
    ev->fn = NULL;
    if (ev->nargs == -1) {
        Py_CLEAR(ev->args[0]);
    }
    else {
        for (Py_ssize_t i = 0; i < ev->nargs; i++) {
            Py_CLEAR(ev->args[i]);
        }
    }
    ev->nargs = 0;
    Py_XDECREF(fn);
}

static void
Event_dealloc(EventObject *self)
{
    PyObject_GC_UnTrack(self);
    event_clear_payload(self);
    Py_CLEAR(self->engine);
    PyObject_GC_Del(self);
}

static int
Event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    if (self->nargs == -1) {
        Py_VISIT(self->args[0]);
    }
    else {
        for (Py_ssize_t i = 0; i < self->nargs; i++) {
            Py_VISIT(self->args[i]);
        }
    }
    Py_VISIT((PyObject *)self->engine);
    return 0;
}

static int
Event_clear_gc(EventObject *self)
{
    event_clear_payload(self);
    Py_CLEAR(self->engine);
    return 0;
}

static void engine_note_dead(EngineObject *engine);

static PyObject *
Event_cancel(EventObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->fn == NULL) {
        Py_RETURN_NONE;
    }
    event_clear_payload(self);
    if (self->engine != NULL) {
        engine_note_dead(self->engine);
    }
    Py_RETURN_NONE;
}

static PyObject *
Event_get_when(EventObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->when);
}

static PyObject *
Event_get_cancelled(EventObject *self, void *Py_UNUSED(closure))
{
    return PyBool_FromLong(self->fn == NULL);
}

static PyMethodDef Event_methods[] = {
    {"cancel", (PyCFunction)Event_cancel, METH_NOARGS,
     "Mark the event dead in place; a late cancel is a no-op."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Event_getset[] = {
    {"when", (getter)Event_get_when, NULL, "Absolute cycle.", NULL},
    {"cancelled", (getter)Event_get_cancelled, NULL,
     "True once the event can no longer fire (cancelled *or* fired).",
     NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.accel._hotcore.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled event doubling as its own cancel handle.",
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear_gc,
    .tp_methods = Event_methods,
    .tp_getset = Event_getset,
};

/* ------------------------------------------------------------------ */
/* Engine internals                                                    */
/* ------------------------------------------------------------------ */

static int
lane_push(EngineObject *e, EventObject *ev)  /* steals ref on success */
{
    if (e->lane_len == e->lane_cap) {
        Py_ssize_t cap = e->lane_cap ? e->lane_cap * 2 : 64;
        EventObject **buf = PyMem_New(EventObject *, cap);
        if (buf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        for (Py_ssize_t i = 0; i < e->lane_len; i++) {
            buf[i] = e->lane[(e->lane_head + i) % (e->lane_cap ? e->lane_cap : 1)];
        }
        PyMem_Free(e->lane);
        e->lane = buf;
        e->lane_cap = cap;
        e->lane_head = 0;
    }
    e->lane[(e->lane_head + e->lane_len) % e->lane_cap] = ev;
    e->lane_len++;
    return 0;
}

static EventObject *
lane_pop(EngineObject *e)  /* returns owned ref, or NULL if empty */
{
    if (e->lane_len == 0) {
        return NULL;
    }
    EventObject *ev = e->lane[e->lane_head];
    e->lane_head = (e->lane_head + 1) % e->lane_cap;
    e->lane_len--;
    return ev;
}

static int
vec_push(EventObject ***items, Py_ssize_t *len, Py_ssize_t *cap,
         EventObject *ev)  /* steals ref on success */
{
    if (*len == *cap) {
        Py_ssize_t ncap = *cap ? *cap * 2 : 16;
        EventObject **buf = PyMem_Resize(*items, EventObject *, ncap);
        if (buf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        *items = buf;
        *cap = ncap;
    }
    (*items)[(*len)++] = ev;
    return 0;
}

/* Find the bucket index for `cycle`; returns insertion point if absent
 * (with *found set accordingly).  Buckets are sorted by cycle. */
static Py_ssize_t
bucket_search(EngineObject *e, long long cycle, int *found)
{
    Py_ssize_t lo = 0, hi = e->nbuckets;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) / 2;
        if (e->buckets[mid].cycle < cycle) {
            lo = mid + 1;
        }
        else {
            hi = mid;
        }
    }
    *found = (lo < e->nbuckets && e->buckets[lo].cycle == cycle);
    return lo;
}

static int
bucket_insert_event(EngineObject *e, long long cycle, EventObject *ev)
{
    int found;
    Py_ssize_t idx = bucket_search(e, cycle, &found);
    if (!found) {
        if (e->nbuckets == e->buckets_cap) {
            Py_ssize_t cap = e->buckets_cap ? e->buckets_cap * 2 : 16;
            struct bucket *buf =
                PyMem_Resize(e->buckets, struct bucket, cap);
            if (buf == NULL) {
                PyErr_NoMemory();
                return -1;
            }
            e->buckets = buf;
            e->buckets_cap = cap;
        }
        memmove(&e->buckets[idx + 1], &e->buckets[idx],
                (e->nbuckets - idx) * sizeof(struct bucket));
        e->buckets[idx].cycle = cycle;
        e->buckets[idx].items = NULL;
        e->buckets[idx].len = 0;
        e->buckets[idx].cap = 0;
        e->nbuckets++;
    }
    struct bucket *b = &e->buckets[idx];
    return vec_push(&b->items, &b->len, &b->cap, ev);
}

/* Drop cancelled entries in place, preserving order (mirror of
 * Engine._compact).  Emptied buckets stay registered. */
static void
engine_compact(EngineObject *e)
{
    for (Py_ssize_t bi = 0; bi < e->nbuckets; bi++) {
        struct bucket *b = &e->buckets[bi];
        Py_ssize_t w = 0;
        for (Py_ssize_t i = 0; i < b->len; i++) {
            if (b->items[i]->fn != NULL) {
                b->items[w++] = b->items[i];
            }
            else {
                Py_DECREF(b->items[i]);
            }
        }
        b->len = w;
    }
    Py_ssize_t w = 0;
    for (Py_ssize_t i = 0; i < e->next_len; i++) {
        if (e->nextv[i]->fn != NULL) {
            e->nextv[w++] = e->nextv[i];
        }
        else {
            Py_DECREF(e->nextv[i]);
        }
    }
    e->next_len = w;
    /* Lane: compact the ring into a left-aligned prefix. */
    Py_ssize_t kept = 0;
    for (Py_ssize_t i = 0; i < e->lane_len; i++) {
        EventObject *ev = e->lane[(e->lane_head + i) % e->lane_cap];
        if (ev->fn != NULL) {
            e->lane[kept++] = ev;  /* safe: writes trail reads in order */
        }
        else {
            Py_DECREF(ev);
        }
    }
    /* The in-place ring rewrite above is only safe when writes cannot
     * overtake unread slots; rebuild defensively when the ring wraps. */
    e->lane_head = 0;
    e->lane_len = kept;
    e->dead = 0;
}

static void
engine_note_dead(EngineObject *e)
{
    e->live--;
    e->dead++;
    if (e->dead >= COMPACT_THRESHOLD && e->dead >= e->live) {
        engine_compact(e);
    }
}

/* Core scheduling: mirrors Engine.schedule exactly.  Steals nothing;
 * returns a new ref to the created event, or NULL on error. */
static EventObject *
engine_schedule_event(EngineObject *e, long long delay, PyObject *fn,
                      PyObject *const *args, Py_ssize_t nargs)
{
    if (delay < 0) {
        PyErr_SetString(PyExc_ValueError, "cannot schedule into the past");
        return NULL;
    }
    EventObject *ev = PyObject_GC_New(EventObject, &Event_Type);
    if (ev == NULL) {
        return NULL;
    }
    ev->fn = Py_NewRef(fn);
    if (nargs <= EVENT_INLINE_ARGS) {
        for (Py_ssize_t i = 0; i < nargs; i++) {
            ev->args[i] = Py_NewRef(args[i]);
        }
        ev->nargs = nargs;
    }
    else {
        PyObject *tup = PyTuple_New(nargs);
        if (tup == NULL) {
            ev->nargs = 0;
            Py_DECREF(ev);
            return NULL;
        }
        for (Py_ssize_t i = 0; i < nargs; i++) {
            PyTuple_SET_ITEM(tup, i, Py_NewRef(args[i]));
        }
        ev->args[0] = tup;
        ev->nargs = -1;
    }
    ev->engine = (EngineObject *)Py_NewRef((PyObject *)e);
    PyObject_GC_Track(ev);

    int rc;
    if (delay == 1) {
        ev->when = e->now + 1;
        Py_INCREF(ev);
        rc = vec_push(&e->nextv, &e->next_len, &e->next_cap, ev);
    }
    else if (delay != 0) {
        ev->when = e->now + delay;
        Py_INCREF(ev);
        rc = bucket_insert_event(e, ev->when, ev);
    }
    else {
        ev->when = e->now;
        Py_INCREF(ev);
        rc = lane_push(e, ev);
    }
    if (rc < 0) {
        Py_DECREF(ev);  /* the queue's would-be ref */
        Py_DECREF(ev);  /* the caller's ref */
        return NULL;
    }
    e->live++;
    return ev;
}

/* Seed the empty lane with the next populated cycle's events (mirror of
 * Engine._advance).  until < 0 means unbounded.  Returns 0/1, -1 on
 * allocation error. */
static int
engine_advance(EngineObject *e, long long until, int bounded)
{
    long long target = e->now + 1;
    long long cycle;
    if (e->nbuckets) {
        cycle = e->buckets[0].cycle;
        if (e->next_len && target < cycle) {
            cycle = target;
        }
    }
    else if (e->next_len) {
        cycle = target;
    }
    else {
        return 0;
    }
    if (bounded && cycle > until) {
        return 0;
    }
    if (e->nbuckets && e->buckets[0].cycle == cycle) {
        /* Pop the first bucket and append its entries to the lane. */
        struct bucket b = e->buckets[0];
        memmove(&e->buckets[0], &e->buckets[1],
                (e->nbuckets - 1) * sizeof(struct bucket));
        e->nbuckets--;
        for (Py_ssize_t i = 0; i < b.len; i++) {
            if (lane_push(e, b.items[i]) < 0) {
                /* Roll the remainder's refs into the lane is impossible;
                 * drop them (allocation failure is unrecoverable here). */
                for (Py_ssize_t j = i; j < b.len; j++) {
                    Py_DECREF(b.items[j]);
                }
                PyMem_Free(b.items);
                return -1;
            }
        }
        PyMem_Free(b.items);
    }
    if (e->next_len && cycle == target) {
        for (Py_ssize_t i = 0; i < e->next_len; i++) {
            if (lane_push(e, e->nextv[i]) < 0) {
                for (Py_ssize_t j = i; j < e->next_len; j++) {
                    Py_DECREF(e->nextv[j]);
                }
                e->next_len = 0;
                return -1;
            }
        }
        e->next_len = 0;
    }
    return 1;
}

/* Fire one event: clears the payload first (a late cancel must no-op),
 * then calls fn(*args).  Returns 0, -1 on callback error. */
static int
event_fire(EngineObject *e, EventObject *ev)
{
    PyObject *fn = ev->fn;
    PyObject *inline_args[EVENT_INLINE_ARGS] = {NULL};
    PyObject *tup = NULL;
    Py_ssize_t nargs = ev->nargs;
    if (nargs == -1) {
        tup = ev->args[0];
        ev->args[0] = NULL;
    }
    else {
        for (Py_ssize_t i = 0; i < nargs; i++) {
            inline_args[i] = ev->args[i];
            ev->args[i] = NULL;
        }
    }
    ev->fn = NULL;
    ev->nargs = 0;
    e->now = ev->when;
    e->live--;

    PyObject *res;
    if (tup != NULL) {
        res = PyObject_CallObject(fn, tup);
        Py_DECREF(tup);
    }
    else {
        res = PyObject_Vectorcall(fn, inline_args, nargs, NULL);
        for (Py_ssize_t i = 0; i < nargs; i++) {
            Py_DECREF(inline_args[i]);
        }
    }
    Py_DECREF(fn);
    if (res == NULL) {
        return -1;
    }
    Py_DECREF(res);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Engine methods                                                      */
/* ------------------------------------------------------------------ */

static PyObject *
Engine_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    EngineObject *self = (EngineObject *)type->tp_alloc(type, 0);
    if (self == NULL) {
        return NULL;
    }
    self->lane = NULL;
    self->lane_cap = self->lane_head = self->lane_len = 0;
    self->nextv = NULL;
    self->next_cap = self->next_len = 0;
    self->buckets = NULL;
    self->nbuckets = self->buckets_cap = 0;
    self->now = 0;
    self->live = self->dead = 0;
    self->events_processed = 0;
    return (PyObject *)self;
}

static int
Engine_traverse(EngineObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->lane_len; i++) {
        Py_VISIT(self->lane[(self->lane_head + i) % self->lane_cap]);
    }
    for (Py_ssize_t i = 0; i < self->next_len; i++) {
        Py_VISIT(self->nextv[i]);
    }
    for (Py_ssize_t bi = 0; bi < self->nbuckets; bi++) {
        for (Py_ssize_t i = 0; i < self->buckets[bi].len; i++) {
            Py_VISIT(self->buckets[bi].items[i]);
        }
    }
    return 0;
}

static int
Engine_clear_gc(EngineObject *self)
{
    for (Py_ssize_t i = 0; i < self->lane_len; i++) {
        Py_CLEAR(self->lane[(self->lane_head + i) % self->lane_cap]);
    }
    self->lane_len = self->lane_head = 0;
    for (Py_ssize_t i = 0; i < self->next_len; i++) {
        Py_CLEAR(self->nextv[i]);
    }
    self->next_len = 0;
    for (Py_ssize_t bi = 0; bi < self->nbuckets; bi++) {
        struct bucket *b = &self->buckets[bi];
        for (Py_ssize_t i = 0; i < b->len; i++) {
            Py_CLEAR(b->items[i]);
        }
        PyMem_Free(b->items);
    }
    self->nbuckets = 0;
    return 0;
}

static void
Engine_dealloc(EngineObject *self)
{
    PyObject_GC_UnTrack(self);
    Engine_clear_gc(self);
    PyMem_Free(self->lane);
    PyMem_Free(self->nextv);
    PyMem_Free(self->buckets);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Engine_schedule(EngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule(delay, fn, *args) takes at least 2 "
                        "arguments");
        return NULL;
    }
    long long delay = PyLong_AsLongLong(args[0]);
    if (delay == -1 && PyErr_Occurred()) {
        return NULL;
    }
    return (PyObject *)engine_schedule_event(self, delay, args[1], args + 2,
                                             nargs - 2);
}

static PyObject *
Engine_schedule_at(EngineObject *self, PyObject *const *args,
                   Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at(cycle, fn, *args) takes at least 2 "
                        "arguments");
        return NULL;
    }
    long long cycle = PyLong_AsLongLong(args[0]);
    if (cycle == -1 && PyErr_Occurred()) {
        return NULL;
    }
    return (PyObject *)engine_schedule_event(self, cycle - self->now,
                                             args[1], args + 2, nargs - 2);
}

static PyObject *
Engine_pending(EngineObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(self->live);
}

static PyObject *
Engine_step(EngineObject *self, PyObject *Py_UNUSED(ignored))
{
    for (;;) {
        EventObject *ev = lane_pop(self);
        if (ev != NULL) {
            if (ev->fn == NULL) {
                self->dead--;
                Py_DECREF(ev);
                continue;
            }
            self->events_processed++;
            int rc = event_fire(self, ev);
            Py_DECREF(ev);
            if (rc < 0) {
                return NULL;
            }
            Py_RETURN_TRUE;
        }
        int adv = engine_advance(self, 0, 0);
        if (adv < 0) {
            return NULL;
        }
        if (adv == 0) {
            Py_RETURN_FALSE;
        }
    }
}

static PyObject *
Engine_run(EngineObject *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    long long until = 0, max_events = 0;
    int has_until = 0, has_max = 0;
    static const char *const names[] = {"until", "max_events"};
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "run() takes keyword arguments only");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < nkw; i++) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, i);
        PyObject *value = args[nargs + i];
        const char *text = PyUnicode_AsUTF8(name);
        if (text == NULL) {
            return NULL;
        }
        if (strcmp(text, names[0]) == 0) {
            if (value != Py_None) {
                until = PyLong_AsLongLong(value);
                if (until == -1 && PyErr_Occurred()) {
                    return NULL;
                }
                has_until = 1;
            }
        }
        else if (strcmp(text, names[1]) == 0) {
            if (value != Py_None) {
                max_events = PyLong_AsLongLong(value);
                if (max_events == -1 && PyErr_Occurred()) {
                    return NULL;
                }
                has_max = 1;
            }
        }
        else {
            PyErr_Format(PyExc_TypeError,
                         "run() got an unexpected keyword argument '%s'",
                         text);
            return NULL;
        }
    }
    if (has_until && until < self->now) {
        return PyLong_FromLongLong(self->now);
    }

    /* Park the cyclic collector for the duration of the drain: the hot
     * path allocates only pooled/bounded records, so generational scans
     * are pure overhead.  Restored on every exit path. */
    int gc_was_enabled = PyGC_Disable();

    long long processed = 0;
    int failed = 0;
    for (;;) {
        if (self->lane_len) {
            EventObject *head =
                self->lane[self->lane_head];  /* peek, don't pop */
            if (head->fn == NULL) {
                lane_pop(self);
                self->dead--;
                Py_DECREF(head);
                continue;
            }
            if (has_max && processed >= max_events) {
                PyErr_Format(PyExc_RuntimeError,
                             "engine exceeded %lld events at cycle %lld; "
                             "likely livelock in the simulated machine",
                             max_events, self->now);
                failed = 1;
                break;
            }
            lane_pop(self);
            processed++;
            int rc = event_fire(self, head);
            Py_DECREF(head);
            if (rc < 0) {
                failed = 1;
                break;
            }
            continue;
        }
        int adv = engine_advance(self, until, has_until);
        if (adv < 0) {
            failed = 1;
            break;
        }
        if (adv == 0) {
            break;
        }
    }
    self->events_processed += processed;
    if (gc_was_enabled) {
        PyGC_Enable();
    }
    if (failed) {
        return NULL;
    }
    if (has_until && until > self->now) {
        self->now = until;
    }
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Engine_get_now(EngineObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->now);
}

static PyMethodDef Engine_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Engine_schedule,
     METH_FASTCALL,
     "schedule(delay, fn, *args) -> Event\n"
     "Run fn(*args) after delay cycles; the event doubles as its cancel "
     "handle."},
    {"schedule_at", (PyCFunction)(void (*)(void))Engine_schedule_at,
     METH_FASTCALL, "schedule_at(cycle, fn, *args) -> Event"},
    {"run", (PyCFunction)(void (*)(void))Engine_run,
     METH_FASTCALL | METH_KEYWORDS,
     "run(*, until=None, max_events=None) -> int\n"
     "Drain the queue; returns the final cycle."},
    {"step", (PyCFunction)Engine_step, METH_NOARGS,
     "Process one event.  Returns False when the queue is empty."},
    {"pending", (PyCFunction)Engine_pending, METH_NOARGS,
     "Number of live (non-cancelled) queued events — O(1)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef Engine_members[] = {
    {"events_processed", T_LONGLONG, offsetof(EngineObject, events_processed),
     0, "Total events fired by this engine."},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef Engine_getset[] = {
    {"now", (getter)Engine_get_now, NULL, "Current simulated cycle.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Engine_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.accel._hotcore.Engine",
    .tp_basicsize = sizeof(EngineObject),
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled deterministic discrete-event engine (drop-in for "
              "repro.sim.engine.Engine).",
    .tp_traverse = (traverseproc)Engine_traverse,
    .tp_clear = (inquiry)Engine_clear_gc,
    .tp_methods = Engine_methods,
    .tp_members = Engine_members,
    .tp_getset = Engine_getset,
    .tp_new = Engine_new,
};

/* ------------------------------------------------------------------ */
/* Message                                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *kind;       /* MessageKind member; None once released */
    long src, dst, block, epoch, req_id;
    PyObject *data;       /* tuple | None */
    PyObject *requester;  /* int | None */
    PyObject *pic;        /* int | None */
    PyObject *timestamp;  /* int | None */
    PyObject *action;     /* str | None */
    long long uid;
    char exclusive, power, can_consume, is_validation, non_transactional;
    char req_produced, req_consumed;
    char retained, pooled;
    int kind_idx;
    char carries_data;
} MessageObject;

static PyTypeObject Message_Type;

#define MSG_POOL_LIMIT 512
static MessageObject *msg_pool[MSG_POOL_LIMIT];
static Py_ssize_t msg_pool_len = 0;
static long long msg_uid_counter = 0;

/* Per-kind (idx, carries_data) cache keyed by the enum member pointer:
 * enum members are module-lifetime singletons, so a small linear scan
 * beats two attribute lookups per constructed message. */
#define KIND_CACHE_SIZE 32
static struct {
    PyObject *kind;  /* strong ref */
    int idx;
    char carries_data;
} kind_cache[KIND_CACHE_SIZE];
static Py_ssize_t kind_cache_len = 0;

static int
kind_lookup(PyObject *kind, int *idx, char *carries_data)
{
    for (Py_ssize_t i = 0; i < kind_cache_len; i++) {
        if (kind_cache[i].kind == kind) {
            *idx = kind_cache[i].idx;
            *carries_data = kind_cache[i].carries_data;
            return 0;
        }
    }
    PyObject *idx_obj = PyObject_GetAttrString(kind, "idx");
    if (idx_obj == NULL) {
        return -1;
    }
    long idx_val = PyLong_AsLong(idx_obj);
    Py_DECREF(idx_obj);
    if (idx_val == -1 && PyErr_Occurred()) {
        return -1;
    }
    PyObject *cd_obj = PyObject_GetAttrString(kind, "carries_data");
    if (cd_obj == NULL) {
        return -1;
    }
    int cd = PyObject_IsTrue(cd_obj);
    Py_DECREF(cd_obj);
    if (cd < 0) {
        return -1;
    }
    *idx = (int)idx_val;
    *carries_data = (char)cd;
    if (kind_cache_len < KIND_CACHE_SIZE) {
        kind_cache[kind_cache_len].kind = Py_NewRef(kind);
        kind_cache[kind_cache_len].idx = (int)idx_val;
        kind_cache[kind_cache_len].carries_data = (char)cd;
        kind_cache_len++;
    }
    return 0;
}

static void
Message_dealloc(MessageObject *self)
{
    Py_CLEAR(self->kind);
    Py_CLEAR(self->data);
    Py_CLEAR(self->requester);
    Py_CLEAR(self->pic);
    Py_CLEAR(self->timestamp);
    Py_CLEAR(self->action);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Message_retain(MessageObject *self, PyObject *Py_UNUSED(ignored))
{
    self->retained = 1;
    return Py_NewRef((PyObject *)self);
}

static PyObject *
Message_release(MessageObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->retained || self->pooled) {
        Py_RETURN_NONE;
    }
    self->pooled = 1;
    Py_XSETREF(self->kind, Py_NewRef(Py_None));
    Py_XSETREF(self->data, Py_NewRef(Py_None));
    Py_XSETREF(self->action, Py_NewRef(Py_None));
    if (msg_pool_len < MSG_POOL_LIMIT) {
        msg_pool[msg_pool_len++] = (MessageObject *)Py_NewRef(self);
    }
    Py_RETURN_NONE;
}

static PyObject *
Message_get_flits(MessageObject *self, void *Py_UNUSED(closure))
{
    if (self->kind == Py_None) {
        /* Parity with the Python property, which dies loudly on
         * ``kind.carries_data`` for a released message. */
        PyErr_SetString(PyExc_AttributeError,
                        "'NoneType' object has no attribute 'carries_data'");
        return NULL;
    }
    return PyLong_FromLong(self->carries_data ? 5 : 1);
}

static PyObject *
Message_repr(MessageObject *self)
{
    if (self->kind == Py_None) {
        return PyUnicode_FromString("<released Message>");
    }
    PyObject *value = PyObject_GetAttrString(self->kind, "value");
    if (value == NULL) {
        return NULL;
    }
    char tail[96];
    snprintf(tail, sizeof(tail), " %ld->%ld blk=0x%lx%s%s e%ld>",
             self->src, self->dst, (unsigned long)self->block,
             self->is_validation ? " V" : "", self->power ? " P" : "",
             self->epoch);
    PyObject *out = PyUnicode_FromFormat("<%U%s", value, tail);
    Py_DECREF(value);
    return out;
}

static PyMethodDef Message_methods[] = {
    {"retain", (PyCFunction)Message_retain, METH_NOARGS,
     "Opt this message out of post-delivery recycling."},
    {"release", (PyCFunction)Message_release, METH_NOARGS,
     "Return the message to the free list (no-op when retained)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef Message_members[] = {
    {"kind", T_OBJECT, offsetof(MessageObject, kind), 0, NULL},
    {"src", T_LONG, offsetof(MessageObject, src), 0, NULL},
    {"dst", T_LONG, offsetof(MessageObject, dst), 0, NULL},
    {"block", T_LONG, offsetof(MessageObject, block), 0, NULL},
    {"epoch", T_LONG, offsetof(MessageObject, epoch), 0, NULL},
    {"req_id", T_LONG, offsetof(MessageObject, req_id), 0, NULL},
    {"data", T_OBJECT, offsetof(MessageObject, data), 0, NULL},
    {"requester", T_OBJECT, offsetof(MessageObject, requester), 0, NULL},
    {"pic", T_OBJECT, offsetof(MessageObject, pic), 0, NULL},
    {"timestamp", T_OBJECT, offsetof(MessageObject, timestamp), 0, NULL},
    {"action", T_OBJECT, offsetof(MessageObject, action), 0, NULL},
    {"uid", T_LONGLONG, offsetof(MessageObject, uid), 0, NULL},
    {"exclusive", T_BOOL, offsetof(MessageObject, exclusive), 0, NULL},
    {"power", T_BOOL, offsetof(MessageObject, power), 0, NULL},
    {"can_consume", T_BOOL, offsetof(MessageObject, can_consume), 0, NULL},
    {"is_validation", T_BOOL, offsetof(MessageObject, is_validation), 0,
     NULL},
    {"non_transactional", T_BOOL,
     offsetof(MessageObject, non_transactional), 0, NULL},
    {"req_produced", T_BOOL, offsetof(MessageObject, req_produced), 0, NULL},
    {"req_consumed", T_BOOL, offsetof(MessageObject, req_consumed), 0, NULL},
    {"_retained", T_BOOL, offsetof(MessageObject, retained), 0, NULL},
    {"_pooled", T_BOOL, offsetof(MessageObject, pooled), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef Message_getset[] = {
    {"flits", (getter)Message_get_flits, NULL,
     "5 for data-bearing kinds, 1 for control.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Message_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.accel._hotcore.Message",
    .tp_basicsize = sizeof(MessageObject),
    .tp_dealloc = (destructor)Message_dealloc,
    .tp_repr = (reprfunc)Message_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Pooled coherence message (drop-in for "
              "repro.net.messages.Message).",
    .tp_methods = Message_methods,
    .tp_members = Message_members,
    .tp_getset = Message_getset,
};

/* Parameter names of make_message, in the Python Message.__init__
 * order.  Interned at module init for pointer-compare kwarg matching. */
#define MSG_NPARAMS 18
static const char *const msg_param_names[MSG_NPARAMS] = {
    "kind", "src", "dst", "block", "data", "requester", "exclusive", "pic",
    "power", "timestamp", "epoch", "req_id", "can_consume", "is_validation",
    "non_transactional", "req_produced", "req_consumed", "action",
};
static PyObject *msg_param_interned[MSG_NPARAMS];

enum {
    P_KIND, P_SRC, P_DST, P_BLOCK, P_DATA, P_REQUESTER, P_EXCLUSIVE, P_PIC,
    P_POWER, P_TIMESTAMP, P_EPOCH, P_REQ_ID, P_CAN_CONSUME,
    P_IS_VALIDATION, P_NON_TRANSACTIONAL, P_REQ_PRODUCED, P_REQ_CONSUMED,
    P_ACTION,
};

static PyObject *
make_message(PyObject *Py_UNUSED(module), PyObject *const *args,
             Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *values[MSG_NPARAMS] = {NULL};
    if (nargs > MSG_NPARAMS) {
        PyErr_SetString(PyExc_TypeError,
                        "make_message() takes at most 18 arguments");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < nargs; i++) {
        values[i] = args[i];
    }
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    for (Py_ssize_t i = 0; i < nkw; i++) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, i);
        Py_ssize_t slot = -1;
        for (Py_ssize_t j = 0; j < MSG_NPARAMS; j++) {
            if (msg_param_interned[j] == name) {
                slot = j;
                break;
            }
        }
        if (slot < 0) {
            /* Non-interned caller (rare): fall back to text compare. */
            for (Py_ssize_t j = 0; j < MSG_NPARAMS; j++) {
                int eq = PyUnicode_Compare(msg_param_interned[j], name);
                if (eq == -1 && PyErr_Occurred()) {
                    return NULL;
                }
                if (eq == 0) {
                    slot = j;
                    break;
                }
            }
        }
        if (slot < 0) {
            PyErr_Format(PyExc_TypeError,
                         "make_message() got an unexpected keyword "
                         "argument %R", name);
            return NULL;
        }
        if (values[slot] != NULL) {
            PyErr_Format(PyExc_TypeError,
                         "make_message() got multiple values for "
                         "argument %R", name);
            return NULL;
        }
        values[slot] = args[nargs + i];
    }
    if (values[P_KIND] == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "make_message() missing required argument 'kind'");
        return NULL;
    }

    MessageObject *self;
    if (msg_pool_len > 0) {
        self = msg_pool[--msg_pool_len];
        /* Reuse: the pool's strong ref becomes the caller's. */
    }
    else {
        self = PyObject_New(MessageObject, &Message_Type);
        if (self == NULL) {
            return NULL;
        }
        self->kind = NULL;
        self->data = NULL;
        self->requester = NULL;
        self->pic = NULL;
        self->timestamp = NULL;
        self->action = NULL;
    }

#define AS_LONG(slot, dflt, field)                                       \
    do {                                                                 \
        if (values[slot] == NULL) {                                      \
            self->field = (dflt);                                        \
        }                                                                \
        else {                                                           \
            long v_ = PyLong_AsLong(values[slot]);                       \
            if (v_ == -1 && PyErr_Occurred()) {                          \
                goto fail;                                               \
            }                                                            \
            self->field = v_;                                            \
        }                                                                \
    } while (0)
#define AS_BOOL(slot, dflt, field)                                       \
    do {                                                                 \
        if (values[slot] == NULL) {                                      \
            self->field = (dflt);                                        \
        }                                                                \
        else {                                                           \
            int v_ = PyObject_IsTrue(values[slot]);                      \
            if (v_ < 0) {                                                \
                goto fail;                                               \
            }                                                            \
            self->field = (char)v_;                                      \
        }                                                                \
    } while (0)
#define AS_OBJ(slot, field)                                              \
    Py_XSETREF(self->field,                                              \
               Py_NewRef(values[slot] != NULL ? values[slot] : Py_None))

    AS_LONG(P_SRC, 0, src);
    AS_LONG(P_DST, 0, dst);
    AS_LONG(P_BLOCK, 0, block);
    AS_LONG(P_EPOCH, 0, epoch);
    AS_LONG(P_REQ_ID, 0, req_id);
    AS_BOOL(P_EXCLUSIVE, 0, exclusive);
    AS_BOOL(P_POWER, 0, power);
    AS_BOOL(P_CAN_CONSUME, 1, can_consume);
    AS_BOOL(P_IS_VALIDATION, 0, is_validation);
    AS_BOOL(P_NON_TRANSACTIONAL, 0, non_transactional);
    AS_BOOL(P_REQ_PRODUCED, 0, req_produced);
    AS_BOOL(P_REQ_CONSUMED, 0, req_consumed);
    AS_OBJ(P_DATA, data);
    AS_OBJ(P_REQUESTER, requester);
    AS_OBJ(P_PIC, pic);
    AS_OBJ(P_TIMESTAMP, timestamp);
    AS_OBJ(P_ACTION, action);
#undef AS_LONG
#undef AS_BOOL
#undef AS_OBJ

    if (kind_lookup(values[P_KIND], &self->kind_idx, &self->carries_data)
        < 0) {
        goto fail;
    }
    Py_XSETREF(self->kind, Py_NewRef(values[P_KIND]));
    self->uid = msg_uid_counter++;
    self->retained = 0;
    self->pooled = 0;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* C-internal release used by the router (skips the method call). */
static void
message_release_internal(MessageObject *self)
{
    if (self->retained || self->pooled) {
        return;
    }
    self->pooled = 1;
    Py_XSETREF(self->kind, Py_NewRef(Py_None));
    Py_XSETREF(self->data, Py_NewRef(Py_None));
    Py_XSETREF(self->action, Py_NewRef(Py_None));
    if (msg_pool_len < MSG_POOL_LIMIT) {
        msg_pool[msg_pool_len++] = (MessageObject *)Py_NewRef(self);
    }
}

/* ------------------------------------------------------------------ */
/* Router                                                              */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *tables;  /* list of per-dst handler lists; directory last */
    Py_ssize_t n;
} RouterObject;

static PyTypeObject Router_Type;

static PyObject *
Router_call(RouterObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *msg;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "router takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "O", &msg)) {
        return NULL;
    }

    Py_ssize_t dst;
    Py_ssize_t kind_idx;
    int is_cmsg = PyObject_TypeCheck(msg, &Message_Type);
    if (is_cmsg) {
        dst = ((MessageObject *)msg)->dst;
        kind_idx = ((MessageObject *)msg)->kind_idx;
    }
    else {
        PyObject *dst_obj = PyObject_GetAttrString(msg, "dst");
        if (dst_obj == NULL) {
            return NULL;
        }
        dst = PyLong_AsSsize_t(dst_obj);
        Py_DECREF(dst_obj);
        if (dst == -1 && PyErr_Occurred()) {
            return NULL;
        }
        PyObject *kind = PyObject_GetAttrString(msg, "kind");
        if (kind == NULL) {
            return NULL;
        }
        PyObject *idx_obj = PyObject_GetAttrString(kind, "idx");
        Py_DECREF(kind);
        if (idx_obj == NULL) {
            return NULL;
        }
        kind_idx = PyLong_AsSsize_t(idx_obj);
        Py_DECREF(idx_obj);
        if (kind_idx == -1 && PyErr_Occurred()) {
            return NULL;
        }
    }
    if (dst < 0) {
        dst += self->n;  /* DIRECTORY == -1 -> last slot */
    }
    if (dst < 0 || dst >= self->n) {
        PyErr_Format(PyExc_IndexError, "message dst %zd out of range", dst);
        return NULL;
    }
    PyObject *table = PyList_GET_ITEM(self->tables, dst);
    if (kind_idx < 0 || kind_idx >= PyList_GET_SIZE(table)) {
        PyErr_Format(PyExc_IndexError,
                     "message kind index %zd out of range", kind_idx);
        return NULL;
    }
    PyObject *handler = PyList_GET_ITEM(table, kind_idx);
    if (handler == Py_None) {
        PyErr_Format(PyExc_RuntimeError, "no handler for %R", msg);
        return NULL;
    }
    PyObject *res = PyObject_CallOneArg(handler, msg);
    if (res == NULL) {
        return NULL;
    }
    Py_DECREF(res);
    if (is_cmsg) {
        message_release_internal((MessageObject *)msg);
    }
    else {
        PyObject *rel = PyObject_CallMethod(msg, "release", NULL);
        if (rel == NULL) {
            return NULL;
        }
        Py_DECREF(rel);
    }
    Py_RETURN_NONE;
}

static int
Router_traverse(RouterObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->tables);
    return 0;
}

static int
Router_clear_gc(RouterObject *self)
{
    Py_CLEAR(self->tables);
    return 0;
}

static void
Router_dealloc(RouterObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->tables);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Router_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *tables;
    if (!PyArg_ParseTuple(args, "O!", &PyList_Type, &tables)) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(tables); i++) {
        if (!PyList_Check(PyList_GET_ITEM(tables, i))) {
            PyErr_SetString(PyExc_TypeError,
                            "Router expects a list of handler lists");
            return NULL;
        }
    }
    RouterObject *self = (RouterObject *)type->tp_alloc(type, 0);
    if (self == NULL) {
        return NULL;
    }
    self->tables = Py_NewRef(tables);
    self->n = PyList_GET_SIZE(tables);
    return (PyObject *)self;
}

static PyTypeObject Router_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.accel._hotcore.Router",
    .tp_basicsize = sizeof(RouterObject),
    .tp_dealloc = (destructor)Router_dealloc,
    .tp_call = (ternaryfunc)Router_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Dense message-delivery router: dst index -> kind index -> "
              "handler, then release.",
    .tp_traverse = (traverseproc)Router_traverse,
    .tp_clear = (inquiry)Router_clear_gc,
    .tp_new = Router_new,
};

/* ------------------------------------------------------------------ */
/* SendCore                                                            */
/* ------------------------------------------------------------------ */

#define SENDCORE_NKINDS 32

typedef struct {
    PyObject_HEAD
    EngineObject *engine;  /* must be the compiled engine */
    PyObject *deliver;     /* router (or any callable) */
    PyObject *probe;       /* the simulator's Probe */
    PyObject *emit_hook;   /* callable(msg): traced-path emission */
    long long link_latency, data_flits, control_flits;
    long long flits_sent, messages_sent;
    long long flits_by_idx[SENDCORE_NKINDS];
} SendCoreObject;

static PyTypeObject SendCore_Type;
static PyObject *str_subscribers;  /* interned "_subscribers" */

static PyObject *
SendCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *engine, *deliver, *probe, *emit_hook;
    long long link_latency, data_flits, control_flits;
    static char *kwlist[] = {"engine", "deliver", "probe", "emit_hook",
                             "link_latency", "data_flits", "control_flits",
                             NULL};
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "O!OOOLLL", kwlist, &Engine_Type, &engine, &deliver,
            &probe, &emit_hook, &link_latency, &data_flits,
            &control_flits)) {
        return NULL;
    }
    SendCoreObject *self = (SendCoreObject *)type->tp_alloc(type, 0);
    if (self == NULL) {
        return NULL;
    }
    self->engine = (EngineObject *)Py_NewRef(engine);
    self->deliver = Py_NewRef(deliver);
    self->probe = Py_NewRef(probe);
    self->emit_hook = Py_NewRef(emit_hook);
    self->link_latency = link_latency;
    self->data_flits = data_flits;
    self->control_flits = control_flits;
    self->flits_sent = 0;
    self->messages_sent = 0;
    memset(self->flits_by_idx, 0, sizeof(self->flits_by_idx));
    return (PyObject *)self;
}

static int
SendCore_traverse(SendCoreObject *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->engine);
    Py_VISIT(self->deliver);
    Py_VISIT(self->probe);
    Py_VISIT(self->emit_hook);
    return 0;
}

static int
SendCore_clear_gc(SendCoreObject *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->deliver);
    Py_CLEAR(self->probe);
    Py_CLEAR(self->emit_hook);
    return 0;
}

static void
SendCore_dealloc(SendCoreObject *self)
{
    PyObject_GC_UnTrack(self);
    SendCore_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
SendCore_send(SendCoreObject *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    if (nargs != 1) {
        PyErr_SetString(PyExc_TypeError,
                        "send(msg, *, extra_delay=0) takes one positional "
                        "argument");
        return NULL;
    }
    PyObject *msg = args[0];
    long long extra_delay = 0;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    for (Py_ssize_t i = 0; i < nkw; i++) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, i);
        const char *text = PyUnicode_AsUTF8(name);
        if (text == NULL) {
            return NULL;
        }
        if (strcmp(text, "extra_delay") != 0) {
            PyErr_Format(PyExc_TypeError,
                         "send() got an unexpected keyword argument '%s'",
                         text);
            return NULL;
        }
        extra_delay = PyLong_AsLongLong(args[nargs + i]);
        if (extra_delay == -1 && PyErr_Occurred()) {
            return NULL;
        }
    }

    char carries_data;
    int kind_idx;
    if (PyObject_TypeCheck(msg, &Message_Type)) {
        carries_data = ((MessageObject *)msg)->carries_data;
        kind_idx = ((MessageObject *)msg)->kind_idx;
    }
    else {
        PyObject *kind = PyObject_GetAttrString(msg, "kind");
        if (kind == NULL) {
            return NULL;
        }
        int idx;
        if (kind_lookup(kind, &idx, &carries_data) < 0) {
            Py_DECREF(kind);
            return NULL;
        }
        Py_DECREF(kind);
        kind_idx = idx;
    }

    long long flits = carries_data ? self->data_flits : self->control_flits;
    self->flits_sent += flits;
    self->messages_sent += 1;
    if (kind_idx >= 0 && kind_idx < SENDCORE_NKINDS) {
        self->flits_by_idx[kind_idx] += flits;
    }

    /* Probe gating: mirror `if probe._subscribers:` from the Python
     * send, delegating event construction to the Python hook. */
    PyObject *subs = PyObject_GetAttr(self->probe, str_subscribers);
    if (subs == NULL) {
        return NULL;
    }
    int traced = PyObject_IsTrue(subs);
    Py_DECREF(subs);
    if (traced < 0) {
        return NULL;
    }
    if (traced) {
        PyObject *res = PyObject_CallOneArg(self->emit_hook, msg);
        if (res == NULL) {
            return NULL;
        }
        Py_DECREF(res);
    }

    EventObject *ev = engine_schedule_event(
        self->engine, self->link_latency + extra_delay, self->deliver, &msg,
        1);
    if (ev == NULL) {
        return NULL;
    }
    Py_DECREF(ev);
    Py_RETURN_NONE;
}

static PyObject *
SendCore_flits_list(SendCoreObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *out = PyList_New(SENDCORE_NKINDS);
    if (out == NULL) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < SENDCORE_NKINDS; i++) {
        PyObject *v = PyLong_FromLongLong(self->flits_by_idx[i]);
        if (v == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, v);
    }
    return out;
}

static PyObject *
SendCore_set_deliver(SendCoreObject *self, PyObject *deliver)
{
    Py_XSETREF(self->deliver, Py_NewRef(deliver));
    Py_RETURN_NONE;
}

static PyMethodDef SendCore_methods[] = {
    {"send", (PyCFunction)(void (*)(void))SendCore_send,
     METH_FASTCALL | METH_KEYWORDS,
     "send(msg, *, extra_delay=0): account flits and schedule delivery."},
    {"flits_list", (PyCFunction)SendCore_flits_list, METH_NOARGS,
     "Per-kind flit totals as a dense list indexed by MessageKind.idx."},
    {"set_deliver", (PyCFunction)SendCore_set_deliver, METH_O,
     "Rebind the delivery callable (wired after the handler tables "
     "exist)."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef SendCore_members[] = {
    {"flits_sent", T_LONGLONG, offsetof(SendCoreObject, flits_sent), 0,
     NULL},
    {"messages_sent", T_LONGLONG, offsetof(SendCoreObject, messages_sent),
     0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject SendCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.accel._hotcore.SendCore",
    .tp_basicsize = sizeof(SendCoreObject),
    .tp_dealloc = (destructor)SendCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled Crossbar.send: flit accounting + direct C "
              "scheduling of the delivery callback.",
    .tp_traverse = (traverseproc)SendCore_traverse,
    .tp_clear = (inquiry)SendCore_clear_gc,
    .tp_methods = SendCore_methods,
    .tp_members = SendCore_members,
    .tp_new = SendCore_new,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef hotcore_methods[] = {
    {"make_message", (PyCFunction)(void (*)(void))make_message,
     METH_FASTCALL | METH_KEYWORDS,
     "Fast pooled-message factory (drop-in for Message(...))."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef hotcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.accel._hotcore",
    .m_doc = "Compiled hot core: engine, pooled messages, router, and "
             "crossbar send.",
    .m_size = -1,
    .m_methods = hotcore_methods,
};

PyMODINIT_FUNC
PyInit__hotcore(void)
{
    for (Py_ssize_t i = 0; i < MSG_NPARAMS; i++) {
        msg_param_interned[i] = PyUnicode_InternFromString(
            msg_param_names[i]);
        if (msg_param_interned[i] == NULL) {
            return NULL;
        }
    }
    str_subscribers = PyUnicode_InternFromString("_subscribers");
    if (str_subscribers == NULL) {
        return NULL;
    }
    if (PyType_Ready(&Event_Type) < 0 || PyType_Ready(&Engine_Type) < 0 ||
        PyType_Ready(&Message_Type) < 0 || PyType_Ready(&Router_Type) < 0 ||
        PyType_Ready(&SendCore_Type) < 0) {
        return NULL;
    }
    PyObject *threshold = PyLong_FromLong(COMPACT_THRESHOLD);
    if (threshold == NULL) {
        return NULL;
    }
    if (PyDict_SetItemString(Engine_Type.tp_dict, "COMPACT_THRESHOLD",
                             threshold) < 0) {
        Py_DECREF(threshold);
        return NULL;
    }
    Py_DECREF(threshold);

    PyObject *m = PyModule_Create(&hotcore_module);
    if (m == NULL) {
        return NULL;
    }
    if (PyModule_AddObjectRef(m, "Engine", (PyObject *)&Engine_Type) < 0 ||
        PyModule_AddObjectRef(m, "Event", (PyObject *)&Event_Type) < 0 ||
        PyModule_AddObjectRef(m, "Message", (PyObject *)&Message_Type) < 0 ||
        PyModule_AddObjectRef(m, "Router", (PyObject *)&Router_Type) < 0 ||
        PyModule_AddObjectRef(m, "SendCore", (PyObject *)&SendCore_Type)
            < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
