"""Numpy-batched multi-seed lane executor for ``run_many``.

The ``lanes`` backend targets the sweep shape that dominates the
reproduction's workloads: many runs of the *same* configuration that
differ only in seed (confidence intervals, seed sensitivity, Pareto
sweeps).  Dispatching each run as its own pool task pays per-task
pickling, process wake-up, and result-marshalling overhead; a *lane*
groups up to ``REPRO_LANE_WIDTH`` (default 8) seed-siblings into one
task and advances them back-to-back inside the worker, so that overhead
is paid once per lane instead of once per run.

Inside each simulation the fastest available core is used — the
compiled ``_hotcore`` engine when built, pure Python otherwise — and
the per-run results are *identical* to the other backends (the golden
suite runs parametrized over ``lanes`` too).  What changes is only the
executor shape, plus per-lane resource statistics folded with numpy and
attached to every run's resource sample under ``"lane"``.

This module is imported inside worker processes; keep it import-light
(numpy and the runner are imported lazily, inside functions).
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

LANE_WIDTH_ENV = "REPRO_LANE_WIDTH"
DEFAULT_LANE_WIDTH = 8


def lane_width() -> int:
    """Configured lane width (≥1): seeds advanced per worker task."""
    return max(1, int(os.environ.get(LANE_WIDTH_ENV, str(DEFAULT_LANE_WIDTH))))


def seedless_key(cfg) -> str:
    """Grouping key: the run configuration with the seed erased.

    Two configs with the same seedless key are seed-siblings and may
    share a lane.  Derived from the content-addressed key machinery so
    any outcome-relevant field keeps configs apart.
    """
    import dataclasses

    return dataclasses.replace(cfg, seed=0).key()


def group_into_lanes(configs: Sequence, width: int = 0) -> List[List]:
    """Partition ``configs`` into lanes of seed-siblings.

    First-occurrence order is preserved both across groups and within a
    lane, so manifest/progress ordering matches the other backends.
    Configs without siblings still ride (singleton) lanes — uniform
    handling keeps the executor's bookkeeping single-path.
    """
    width = width or lane_width()
    groups: Dict[str, List] = {}
    order: List[str] = []
    for cfg in configs:
        key = seedless_key(cfg)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(cfg)
    lanes: List[List] = []
    for key in order:
        group = groups[key]
        for start in range(0, len(group), width):
            lanes.append(group[start : start + width])
    return lanes


def fold_lane_resources(resources: List[Dict[str, object]]) -> Dict[str, object]:
    """Lane-level statistics folded with numpy from the per-run samples.

    Returned once per lane and attached to each member's resource dict
    so the manifest can attribute batching wins per lane.
    """
    import numpy as np

    events = np.array([int(r.get("events", 0)) for r in resources], dtype=np.int64)
    wall = np.array(
        [float(r.get("wall_seconds", 0.0)) for r in resources], dtype=np.float64
    )
    cpu = np.array(
        [float(r.get("cpu_seconds", 0.0)) for r in resources], dtype=np.float64
    )
    wall_total = float(wall.sum())
    return {
        "width": len(resources),
        "events_total": int(events.sum()),
        "wall_seconds_total": round(wall_total, 6),
        "cpu_seconds_total": round(float(cpu.sum()), 6),
        "events_per_sec_lane": (
            round(float(events.sum()) / wall_total, 3) if wall_total > 0 else 0.0
        ),
        "wall_seconds_mean": round(float(wall.mean()), 6) if len(wall) else 0.0,
        "wall_seconds_max": round(float(wall.max()), 6) if len(wall) else 0.0,
    }


def execute_lane(configs: Sequence, forensics: bool = False) -> List[tuple]:
    """Worker-process entry point: run every config in the lane.

    Returns one :data:`repro.experiments.runner.ExecOutcome` per config,
    in lane order, with the folded lane statistics attached to each
    outcome's resource sample.  Any member's failure fails the whole
    lane (the parent retries members serially, preserving the
    retry-once contract per config).
    """
    from ..experiments import runner

    exec_timed = (
        runner._execute_forensic_timed if forensics else runner._execute_timed
    )
    outcomes = [exec_timed(cfg) for cfg in configs]
    lane_stats = fold_lane_resources([o[3] for o in outcomes])
    for index, (result, seconds, digest, resources) in enumerate(outcomes):
        resources["lane"] = dict(lane_stats, index=index)
    return [tuple(o) for o in outcomes]
