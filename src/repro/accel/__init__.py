"""Backend selection for the accelerated hot core.

Three execution backends sit behind one interface:

``python``
    The pure-Python hot paths (``sim/engine.py``, ``net/messages.py``,
    ``Simulator._route``, ``Crossbar.send``).  Always available; the
    default.
``compiled``
    The ``_hotcore`` C extension: compiled engine, pooled message
    factory, delivery router, and crossbar send.  Built opt-in via
    ``pip install -e .[accel]`` or ``python scripts/build_accel.py``;
    falls back to ``python`` (with a single warning) when absent.
``lanes``
    The numpy-batched multi-seed lane executor for ``run_many``: runs
    of the same configuration differing only in seed are grouped into
    lanes and advanced through one worker task per lane, amortizing
    per-run dispatch cost; lane resource statistics are folded with
    numpy.  Inside each simulation the fastest available core is used
    (compiled when built).  Falls back to ``python`` when numpy is
    absent.

Selection order: an explicit :func:`select_backend` call (the CLI's
``--backend``) wins, else the ``REPRO_BACKEND`` environment variable,
else ``python``.  ``auto`` resolves to ``compiled`` when the extension
is importable and degrades to ``python`` otherwise.  Selection also
writes ``REPRO_BACKEND`` so ``ProcessPoolExecutor`` workers inherit the
choice.

Every backend produces byte-identical :class:`SimulationResult`s — the
golden-determinism suite is parametrized over the available backends,
so this is CI-enforced, not asserted.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Iterator, Optional

#: Names accepted by ``select_backend`` / ``--backend`` / REPRO_BACKEND.
BACKENDS = ("python", "compiled", "lanes", "auto")

_ENV_VAR = "REPRO_BACKEND"
_selected: Optional[str] = None  # None -> read from the environment
_warned_fallbacks: set = set()


class UnknownBackendError(ValueError):
    """Raised for a backend name outside :data:`BACKENDS`."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown backend {name!r}; choose from {', '.join(BACKENDS)}"
        )


# ----------------------------------------------------------------------
# Availability probes (cached, import-free on the hot path)
# ----------------------------------------------------------------------

_compiled_mod = None
_compiled_probe_done = False


def _load_compiled():
    """Import the ``_hotcore`` extension once; None when not built."""
    global _compiled_mod, _compiled_probe_done
    if not _compiled_probe_done:
        _compiled_probe_done = True
        try:
            from . import _hotcore  # type: ignore[attr-defined]

            _compiled_mod = _hotcore
        except ImportError:
            _compiled_mod = None
    return _compiled_mod


def compiled_available() -> bool:
    """True when the ``_hotcore`` C extension is importable."""
    return _load_compiled() is not None


def lanes_available() -> bool:
    """True when numpy is importable (the lanes executor needs it)."""
    try:
        import numpy  # noqa: F401

        return True
    except ImportError:
        return False


def available_backends() -> tuple:
    """The backends that would actually run if selected, best first."""
    out = ["python"]
    if compiled_available():
        out.insert(0, "compiled")
    if lanes_available():
        out.append("lanes")
    return tuple(out)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


def select_backend(name: str) -> str:
    """Select ``name`` for this process (and, via the environment, for
    pool workers).  Returns the *resolved* backend actually in effect."""
    if name not in BACKENDS:
        raise UnknownBackendError(name)
    global _selected
    _selected = name
    os.environ[_ENV_VAR] = name
    return resolved_backend()


def current_backend() -> str:
    """The *requested* backend (may be ``auto``; may be unavailable)."""
    if _selected is not None:
        return _selected
    env = os.environ.get(_ENV_VAR, "").strip()
    if env:
        if env not in BACKENDS:
            raise UnknownBackendError(env)
        return env
    return "python"


def _warn_fallback(requested: str, reason: str) -> None:
    """Warn exactly once per (requested backend, process)."""
    if requested in _warned_fallbacks:
        return
    _warned_fallbacks.add(requested)
    warnings.warn(
        f"backend {requested!r} unavailable ({reason}); "
        "falling back to the pure-Python backend",
        RuntimeWarning,
        stacklevel=3,
    )


def resolved_backend() -> str:
    """The backend that actually executes: ``python``, ``compiled``, or
    ``lanes``.  ``auto`` resolves silently to ``compiled`` when built
    and to ``python`` (with one warning) when not; an unavailable
    explicit choice also degrades to ``python`` with one warning."""
    requested = current_backend()
    if requested == "python":
        return "python"
    if requested == "auto":
        if compiled_available():
            return "compiled"
        _warn_fallback("auto", "the _hotcore extension is not built")
        return "python"
    if requested == "compiled":
        if compiled_available():
            return "compiled"
        _warn_fallback("compiled", "the _hotcore extension is not built")
        return "python"
    # requested == "lanes"
    if lanes_available():
        return "lanes"
    _warn_fallback("lanes", "numpy is not installed")
    return "python"


def compiled_active() -> bool:
    """True when the in-simulator hot core should be the C extension.

    The ``lanes`` backend accelerates the *runner*; inside each
    simulation it still uses the fastest available core, so compiled
    engines serve lanes too when built.
    """
    resolved = resolved_backend()
    if resolved == "compiled":
        return True
    return resolved == "lanes" and compiled_available()


@contextlib.contextmanager
def use(name: str) -> Iterator[str]:
    """Temporarily select ``name`` (tests); restores the prior state."""
    global _selected
    prior_selected = _selected
    prior_env = os.environ.get(_ENV_VAR)
    try:
        yield select_backend(name)
    finally:
        _selected = prior_selected
        if prior_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = prior_env


# ----------------------------------------------------------------------
# Component factories (called at Simulator construction time)
# ----------------------------------------------------------------------


def make_engine():
    """An event engine for the resolved backend."""
    if compiled_active():
        return _load_compiled().Engine()
    from ..sim.engine import Engine

    return Engine()


def message_factory():
    """The message constructor the L1/directory should bind: the C
    ``make_message`` fastcall factory, or the Python ``Message`` class."""
    if compiled_active():
        return _load_compiled().make_message
    from ..net.messages import Message

    return Message


def make_router(dst_handler_tables, fallback):
    """A delivery callable: dst index -> kind index -> handler, then
    release.  ``dst_handler_tables`` is the list of dense per-kind
    handler lists (directory last); ``fallback`` is the Python route."""
    if compiled_active():
        return _load_compiled().Router(list(dst_handler_tables))
    return fallback


def hotcore():
    """The raw extension module (or None) — for the crossbar's SendCore
    wiring and for tests."""
    return _load_compiled() if compiled_active() else None
