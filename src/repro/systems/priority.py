"""The priority-token layer (``priority == "power"``).

:class:`PowerPriority` wraps any base conflict component with PowerTM's
dual-priority rules (Section VI-B): the (single) power transaction wins
every conflict.  As a *holder* it refuses to die — it NACKs plain
requesters, or, when the base component forwards and the block is
eligible, answers with a PiC-less ``SpecResp`` (PCHATS: power producers
sit above every chain and consumers keep their PiC).  As a *requester* it
aborts the holder.  Conflicts not involving the power transaction fall
through to the wrapped base component untouched.

Wrapping ``BaselineRW`` reproduces PowerTM; wrapping CHATS reproduces
PCHATS — and wrapping any future registry entry gives it a power token
for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..htm.stats import AbortReason
from .base import ConflictPolicy
from .forwardrules import block_is_forwardable
from .outcome import ABORT, PolicyOutcome, Resolution

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.config import HTMConfig


class PowerPriority(ConflictPolicy):
    """Power-token rules layered over a base conflict component."""

    def __init__(self, htm: "HTMConfig", base: ConflictPolicy):
        super().__init__(htm)
        self.base = base
        # Whether a power *holder* may answer with a SpecResp at all:
        # only in systems whose base component forwards (PCHATS, not
        # PowerTM).
        self._base_forwards = htm.system.forwards

    def resolve(self, holder, msg, inflight_write):
        if msg.non_transactional:
            return ABORT
        if holder.power:
            if (
                self._base_forwards
                and msg.can_consume
                and self.htm.forward_class is not None
                and block_is_forwardable(
                    self.htm.forward_class, holder, msg.block, inflight_write
                )
            ):
                return PolicyOutcome(
                    Resolution.FORWARD_SPEC, message_pic=None, from_power=True
                )
            return PolicyOutcome(Resolution.NACK)
        if msg.power:
            # Power requesters never consume; the holder yields.
            return PolicyOutcome(
                Resolution.ABORT_LOCAL, abort_reason=AbortReason.POWER
            )
        return self.base.resolve(holder, msg, inflight_write)

    # Validation hooks delegate to the wrapped component (the power
    # transaction itself never consumes, so they only fire for plain
    # transactions governed by the base rules).
    def on_unsuccessful_validation(self, tx):
        return self.base.on_unsuccessful_validation(tx)

    def on_successful_validation(self, tx):
        self.base.on_successful_validation(tx)
