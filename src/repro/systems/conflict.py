"""Conflict-resolution components (the ``conflict`` layer).

Three base behaviours, each parameterised by an ordering scheme and a
validation scheme rather than hardwired to one system:

* :class:`BaselineRW` — requester-wins: the holder always aborts.
* :class:`RequesterSpeculates` — forward whenever the shared guards allow,
  with the ordering scheme deciding chain admission.  Naive R-S is this
  with ``none`` ordering, CHATS with ``pic``, chats-ts with
  ``ideal-timestamp``.
* :class:`RequesterStalls` — NACK conflicting requesters so they retry
  later; deadlock freedom comes from wound-wait on ideal timestamps.

:class:`LEVCBEIdealized` keeps its own class: LEVC's endpoint-flag
ordering is inseparable from its requester-stall fallback (a failed
forwarding restriction degrades to NACK-or-abort rather than to
requester-wins), so it composes the two behaviours internally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import ConflictPolicy
from .outcome import ABORT, PolicyOutcome, Resolution
from .ordering import OrderingScheme
from .validation import ValidationScheme

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.config import HTMConfig


class BaselineRW(ConflictPolicy):
    """Intel RTM-like requester-wins: the holder always aborts."""

    def resolve(self, holder, msg, inflight_write):
        return ABORT


#: Layer-vocabulary alias: ``conflict == "requester-wins"``.
RequesterWins = BaselineRW


class RequesterSpeculates(ConflictPolicy):
    """Requester-speculates, parameterised by ordering and validation.

    The shared guards (non-transactional probes, VSB availability, the
    forward class) decide *whether* forwarding is structurally possible;
    the ordering scheme decides whether it is *safe* and stamps the chain
    position; the validation scheme supplies the consumer-side escape
    hooks."""

    def __init__(
        self,
        htm: "HTMConfig",
        ordering: OrderingScheme,
        validation: ValidationScheme,
    ):
        super().__init__(htm)
        self.ordering = ordering
        self.validation = validation

    def resolve(self, holder, msg, inflight_write):
        guard = self._common_guards(holder, msg, inflight_write)
        if guard is not None:
            return guard
        return self.ordering.forward_decision(holder, msg)

    def on_unsuccessful_validation(self, tx):
        return self.validation.on_unsuccessful(tx)

    def on_successful_validation(self, tx):
        self.validation.on_successful(tx)


class NaiveRS(RequesterSpeculates):
    """Naive requester-speculates: forward whenever structurally possible,
    with no dependency tracking.  Consumers escape cyclic waits through a
    4-bit unsuccessful-validation counter (Section VI-B).

    Kept as a named class for its docstring and direct construction in
    tests; behaviourally it is ``RequesterSpeculates`` with ``none``
    ordering and the ``naive-budget`` validation scheme."""

    def __init__(self, htm: "HTMConfig"):
        from .validation import NaiveBudgetValidation

        super().__init__(htm, OrderingScheme(htm), NaiveBudgetValidation(htm))


class CHATS(RequesterSpeculates):
    """The paper's proposal: PiC-guided choice between requester-speculates
    and requester-wins (Sections III-B and IV-C) — ``RequesterSpeculates``
    with ``pic`` ordering and the ``pic-check`` validation scheme."""

    def __init__(self, htm: "HTMConfig"):
        from .ordering import PicOrdering

        super().__init__(htm, PicOrdering(htm), ValidationScheme(htm))


class RequesterStalls(ConflictPolicy):
    """Pure requester-stalls: a conflicting requester is NACKed and
    retries after ``nack_retry_delay`` cycles while the holder runs to
    completion.

    Unconditional stalling deadlocks the moment two holders wait on each
    other, so the stall is tempered by *wound-wait* on ideal timestamps
    when the spec's ordering layer is ``ideal-timestamp``: an **older**
    requester aborts the holder instead of stalling behind it (the old
    transaction "wounds" the young one and can never itself be made to
    wait on it), which makes every wait point from younger to older and
    keeps the wait-for graph acyclic.  Non-transactional requests always
    win, as in every system (Section IV-A)."""

    def __init__(self, htm: "HTMConfig", *, wound_wait: bool):
        super().__init__(htm)
        self._wound_wait = wound_wait

    def resolve(self, holder, msg, inflight_write):
        if msg.non_transactional:
            return ABORT
        if self._wound_wait and (
            msg.timestamp is None
            or holder.timestamp is None
            or msg.timestamp < holder.timestamp
        ):
            # The requester is older (or the order is unknown): holder
            # yields rather than risk a wait cycle.
            return ABORT
        return PolicyOutcome(Resolution.NACK)


class LEVCBEIdealized(ConflictPolicy):
    """Best-effort adaptation of LEVC (Section VI-B).

    Built on a requester-stall base with *ideal* timestamps: on a conflict
    the holder forwards a speculative value when LEVC's restrictions allow
    — the producer must not already have a consumer, must not itself have
    consumed (chains of length at most 1), and the requester must be an
    endpoint too.  Otherwise the classic timestamp order decides: an older
    requester aborts the holder, a younger requester is NACKed and stalls.

    The deadlock-avoidance scheme is *unaware* of forwarding dependencies
    (the paper's key criticism): a producer can be selected as victim after
    having forwarded, silently dooming its consumer to a validation abort.
    """

    def resolve(self, holder, msg, inflight_write):
        if msg.non_transactional:
            return ABORT
        guard = self._common_guards(holder, msg, inflight_write)
        restrictions_ok = (
            guard is None
            and not holder.levc_has_consumer  # single consumer per producer
            and not holder.levc_has_consumed  # chain length <= 1
            and not msg.req_produced  # requester must be a chain endpoint
            and not msg.req_consumed
        )
        if restrictions_ok:
            return PolicyOutcome(Resolution.FORWARD_SPEC, message_pic=None)
        if (
            msg.timestamp is not None
            and holder.timestamp is not None
            and msg.timestamp < holder.timestamp
        ):
            # Older requester wins: the holder is the victim, regardless of
            # any forwarding it has done (cascading aborts follow).
            return ABORT
        return PolicyOutcome(Resolution.NACK)


__all__ = [
    "BaselineRW",
    "CHATS",
    "LEVCBEIdealized",
    "NaiveRS",
    "RequesterSpeculates",
    "RequesterStalls",
    "RequesterWins",
]
