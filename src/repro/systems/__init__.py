"""Composable HTM-system registry.

Systems are :class:`SystemSpec` descriptors — compositions of a conflict
layer, an ordering layer, a priority layer, and a validation layer, plus
Table II parameters — registered under string names.  The paper's six
systems and the two non-paper demonstrators register on import; user code
adds its own with :func:`register` and runs it through any existing entry
point (``table2_config``, ``run_workload``, ``repro run --system``)::

    from repro.systems import ForwardClass, SystemSpec, register

    register(SystemSpec(
        name="naive-w",
        label="Naive W-only",
        conflict="requester-speculates",
        validation="naive-budget",
        retries=2,
        forward_class=ForwardClass.W,
        vsb_size=4,
        validation_interval=50,
    ))

Only descriptor/registry modules load eagerly (they are imported by
:mod:`repro.sim.config` very early); the policy-construction machinery
(:func:`make_policy` and the component classes) is exposed lazily via
module ``__getattr__`` to keep this package import-light.
"""

from __future__ import annotations

from .spec import (
    CONFLICT_LAYERS,
    FALLBACK_LAYERS,
    ForwardClass,
    ORDERING_LAYERS,
    PRIORITY_LAYERS,
    SystemSpec,
    UnknownSystemError,
    VALIDATION_LAYERS,
    get_spec,
    paper_systems,
    register,
    register_alias,
    registered_systems,
    system_aliases,
)

# Importing these modules registers their systems.
from . import paper as _paper  # noqa: F401
from . import extra as _extra  # noqa: F401
from . import capacity as _capacity  # noqa: F401
from . import hybrid as _hybrid  # noqa: F401

from .compat import SystemKind, all_system_kinds

__all__ = [
    "CONFLICT_LAYERS",
    "FALLBACK_LAYERS",
    "ForwardClass",
    "ORDERING_LAYERS",
    "PRIORITY_LAYERS",
    "SystemKind",
    "SystemSpec",
    "UnknownSystemError",
    "VALIDATION_LAYERS",
    "all_system_kinds",
    "get_spec",
    "make_policy",
    "paper_systems",
    "register",
    "register_alias",
    "registered_systems",
    "system_aliases",
]


def __getattr__(name: str):
    if name == "make_policy":
        from .compose import make_policy

        return make_policy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
