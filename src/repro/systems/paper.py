"""Registry entries for the paper's six evaluated systems (Section VI-B).

Each entry records the system's layer composition and its best
cost-effective Table II parameters: Baseline retries=6; Naive R-S
retries=2, VSB=4, 50-cycle validation; CHATS retries=32, VSB=4, 50-cycle
validation; Power retries=2; PCHATS retries=1; LEVC-BE-Idealized
retries=64 with a 0-cycle validation interval.
"""

from __future__ import annotations

from .spec import ForwardClass, SystemSpec, register, register_alias

BASELINE = register(
    SystemSpec(
        name="baseline",
        label="Baseline",
        conflict="requester-wins",
        retries=6,
    ),
    paper=True,
)

NAIVE_RS = register(
    SystemSpec(
        name="naive-rs",
        label="Naive R-S",
        conflict="requester-speculates",
        ordering="none",
        validation="naive-budget",
        retries=2,
        forward_class=ForwardClass.R_RESTRICT_W,
        vsb_size=4,
        validation_interval=50,
    ),
    paper=True,
)

CHATS = register(
    SystemSpec(
        name="chats",
        label="CHATS",
        conflict="requester-speculates",
        ordering="pic",
        validation="pic-check",
        retries=32,
        forward_class=ForwardClass.R_RESTRICT_W,
        vsb_size=4,
        validation_interval=50,
    ),
    paper=True,
)

POWER = register(
    SystemSpec(
        name="power",
        label="Power",
        conflict="requester-wins",
        priority="power",
        retries=2,
    ),
    paper=True,
)

PCHATS = register(
    SystemSpec(
        name="pchats",
        label="PCHATS",
        conflict="requester-speculates",
        ordering="pic",
        priority="power",
        validation="pic-check",
        retries=1,
        forward_class=ForwardClass.R_RESTRICT_W,
        vsb_size=4,
        validation_interval=50,
    ),
    paper=True,
)

LEVC = register(
    SystemSpec(
        name="levc-be-idealized",
        label="LEVC-BE-Id",
        conflict="requester-speculates",
        ordering="levc-flags",
        validation="interval",
        retries=64,
        forward_class=ForwardClass.R_RESTRICT_W,
        vsb_size=4,
        validation_interval=0,
    ),
    paper=True,
)

# The paper calls the requester-wins baseline "HTM-BE" (best-effort HTM);
# accept that name everywhere a system name is read without adding a
# second registry entry (sweeps and cache keys see only "baseline").
register_alias("htm-be", "baseline")
