"""The hybrid-fallback system family.

The paper's fallback path is a single global lock whose eager
subscription aborts *every* running hardware transaction the moment one
give-up transaction acquires it (Section V-C) — total serialization.
These systems swap the spec's fallback layer for ``"hybrid"``: a give-up
transaction re-executes as instrumented software that runs concurrently
with hardware transactions, in the style of hybrid TMs (Brown & Ravi,
"On the Cost of Concurrency in Hybrid Transactional Memory").

Mechanics (see :class:`~repro.htm.fallback.OwnershipTable` and the
slow-path driver in :mod:`repro.sim.core`):

* the slow path acquires an exclusive per-block *ownership record* at
  encounter time, buffers writes in a redo log, and publishes at commit
  through ordinary coherence stores;
* hardware transactions check the ownership records on every access and
  abort with the ``hybrid-slowpath`` cause when they touch an owned
  block — the instrumentation cost hardware pays for the concurrency;
* slow-path/slow-path conflicts release everything and retry after
  backoff, so ownership waits never form a cycle.

The trade-off this family exposes: fallback entries no longer serialize
the machine, but every orec acquisition costs cycles and every
hardware/software collision burns a hardware abort.
"""

from __future__ import annotations

from .spec import ForwardClass, SystemSpec, register

HYBRID_BE = register(
    SystemSpec(
        name="hybrid-be",
        label="Hybrid-BE",
        conflict="requester-wins",
        fallback="hybrid",
        retries=6,
    )
)

HYBRID_CHATS = register(
    SystemSpec(
        name="hybrid-chats",
        label="Hybrid-CHATS",
        conflict="requester-speculates",
        ordering="pic",
        validation="pic-check",
        fallback="hybrid",
        retries=6,
        forward_class=ForwardClass.R_RESTRICT_W,
        vsb_size=4,
        validation_interval=50,
    )
)
