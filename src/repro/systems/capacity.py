"""The capacity-limited system family.

The paper's evaluation assumes *perfect* read-set signatures and
unbounded write sets (Section VI-B) — commercial HTMs have neither.
These systems put hardware capacity bounds back in, as ordinary
Table-II-style knobs on :class:`~repro.systems.spec.SystemSpec`:

* ``read_set_limit`` — a bounded-entry exact signature
  (:class:`~repro.htm.signature.BoundedPerfectSignature`): the first read
  past the budget raises a ``capacity`` abort and the transaction
  serializes immediately (the RTM "retry not helpful" rule).
* ``write_set_limit`` — the same bound on the speculative write set.
* ``signature_bits`` — a Bloom read signature
  (:class:`~repro.htm.signature.BloomSignature`) whose false positives
  surface as spurious conflicts instead of capacity aborts: the classic
  signature trade-off (aliasing vs. overflow).

None of this touches the paper six — their specs leave all three knobs
``None`` and take the unbounded code paths, byte-identically (pinned by
the golden digests).  The ``figcap`` experiment sweeps ``read_set_limit``
to show capacity aborts falling monotonically as the budget grows.
"""

from __future__ import annotations

from .spec import ForwardClass, SystemSpec, register

#: Default set bounds: sized like a small victim-buffer-backed tracking
#: structure — big enough that short transactions never notice, small
#: enough that pointer-chasing workloads overflow at realistic rates.
#: (The eager fallback-lock subscription consumes one read-set entry.)
DEFAULT_READ_SET_LIMIT = 64
DEFAULT_WRITE_SET_LIMIT = 32

#: Read-set budgets swept by the ``figcap`` experiment.
CAPACITY_SWEEP = (4, 8, 16, 32, 64)

CAP_BE = register(
    SystemSpec(
        name="cap-be",
        label="Cap-BE",
        conflict="requester-wins",
        retries=6,
        read_set_limit=DEFAULT_READ_SET_LIMIT,
        write_set_limit=DEFAULT_WRITE_SET_LIMIT,
    )
)

CAP_CHATS = register(
    SystemSpec(
        name="cap-chats",
        label="Cap-CHATS",
        conflict="requester-speculates",
        ordering="pic",
        validation="pic-check",
        retries=6,
        forward_class=ForwardClass.R_RESTRICT_W,
        vsb_size=4,
        validation_interval=50,
        read_set_limit=DEFAULT_READ_SET_LIMIT,
        write_set_limit=DEFAULT_WRITE_SET_LIMIT,
    )
)

BLOOM_BE = register(
    SystemSpec(
        name="bloom-be",
        label="Bloom-BE",
        conflict="requester-wins",
        retries=6,
        signature_bits=256,
    )
)
