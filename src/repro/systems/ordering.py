"""Chain-ordering schemes: how a forwarding holder keeps chains acyclic.

Once the shared guards of a requester-speculates policy pass, the ordering
scheme owns the forward/abort decision (and any chain-state update on the
holder).  Each scheme corresponds to one value of
:attr:`~repro.systems.spec.SystemSpec.ordering`:

* ``none`` — no dependency tracking: always forward (the naive scheme;
  cyclic waits are broken by the validation layer's escape budget).
* ``pic`` — the CHATS Position-in-Chain register (Sections III-B, IV-C):
  the holder compares the requester's PiC against its own, re-anchors when
  safe, and falls back to requester-wins when forwarding could close a
  cycle.
* ``ideal-timestamp`` — chain positions come from ideal begin timestamps:
  forward only to *younger* requesters (producer strictly older than
  consumer), which keeps every chain acyclic by construction; an older
  requester wins the conflict instead.

(The fourth ordering, ``levc-flags``, is inseparable from its
requester-stall fallback and lives in
:class:`repro.systems.conflict.LEVCBEIdealized`.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.pic import HolderAction
from ..htm.stats import AbortReason
from .outcome import PolicyOutcome, Resolution

if TYPE_CHECKING:  # pragma: no cover
    from ..htm.txstate import TxState
    from ..net.messages import Message
    from ..sim.config import HTMConfig


class OrderingScheme:
    """``none``: forward unconditionally, carrying no chain position."""

    name = "none"

    def __init__(self, htm: "HTMConfig"):
        self.htm = htm

    def forward_decision(self, holder: "TxState", msg: "Message") -> PolicyOutcome:
        return PolicyOutcome(Resolution.FORWARD_SPEC, message_pic=None)


class PicOrdering(OrderingScheme):
    """``pic``: PiC-guided choice between requester-speculates and
    requester-wins, mutating the holder's PiC exactly where the hardware
    would."""

    name = "pic"

    def forward_decision(self, holder: "TxState", msg: "Message") -> PolicyOutcome:
        decision = holder.pic.decide_as_holder(msg.pic)
        if decision.action is HolderAction.ABORT_LOCAL:
            return PolicyOutcome(
                Resolution.ABORT_LOCAL, abort_reason=AbortReason.CYCLE
            )
        if decision.new_local_pic is not None:
            holder.pic.value = decision.new_local_pic
        return PolicyOutcome(
            Resolution.FORWARD_SPEC, message_pic=decision.message_pic
        )


class TimestampOrdering(OrderingScheme):
    """``ideal-timestamp``: forward only when the requester is strictly
    younger than the holder.

    Every forwarding then points from an older producer to a younger
    consumer, so the wait-for graph follows the (total) timestamp order
    and cycles are impossible by construction — the idealised ordering
    the PiC register approximates in a bounded register.  An older
    requester wins the conflict (charged as a cycle-avoidance abort,
    mirroring the PiC scheme's refusals)."""

    name = "ideal-timestamp"

    def forward_decision(self, holder: "TxState", msg: "Message") -> PolicyOutcome:
        if (
            msg.timestamp is None
            or holder.timestamp is None
            or msg.timestamp < holder.timestamp
        ):
            return PolicyOutcome(
                Resolution.ABORT_LOCAL, abort_reason=AbortReason.CYCLE
            )
        return PolicyOutcome(Resolution.FORWARD_SPEC, message_pic=None)
