"""Non-paper systems, registered purely through the registry API.

These two entries are the registry's proof of openness: neither required
touching ``mem/``, ``core/validation.py``, or ``sim/`` — they are plain
layer compositions the simulator can already execute.

* ``stall`` — a pure requester-stalls NACK baseline: conflicting
  requesters are NACKed and retry after ``nack_retry_delay`` cycles,
  tempered by wound-wait on ideal timestamps (an older requester aborts
  the holder) so stalls can never form a wait cycle.  The classic
  contention-management counterpoint to both requester-wins and
  speculative forwarding.
* ``chats-ts`` — CHATS with the Position-in-Chain register replaced by
  ideal timestamps: the holder forwards only to strictly younger
  requesters, which keeps chains acyclic by construction without any
  bounded register or re-anchoring protocol.  SpecResps carry no PiC, so
  consumers escape pathological waits through the naive-budget validation
  counter.  An upper bound on what PiC's 5 bits approximate.
"""

from __future__ import annotations

from .spec import ForwardClass, SystemSpec, register

STALL = register(
    SystemSpec(
        name="stall",
        label="Stall (NACK)",
        conflict="requester-stalls",
        ordering="ideal-timestamp",
        retries=6,
    )
)

CHATS_TS = register(
    SystemSpec(
        name="chats-ts",
        label="CHATS-TS",
        conflict="requester-speculates",
        ordering="ideal-timestamp",
        validation="naive-budget",
        retries=32,
        forward_class=ForwardClass.R_RESTRICT_W,
        vsb_size=4,
        validation_interval=50,
    )
)
