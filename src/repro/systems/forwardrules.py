"""Forward-eligibility rules for speculative data (Section VI-D).

Three configurations control which blocks a conflicting holder may answer
with a ``SpecResp``:

* ``R/W`` (*forward all*) — read-set and write-set blocks;
* ``W`` (*forward written*) — write-set blocks only;
* ``Rrestrict/W`` — read and write-set blocks, except blocks the local core
  has an in-flight exclusive request (GETX) for, i.e. blocks known to be
  invalidated shortly by a local store.  This is the paper's best
  configuration (Fig. 8).

Independent of the class, a block that the holder itself received
speculatively and has not yet validated can never be forwarded: the holder
is not the coherence owner and "the core does not observe coherence traffic
for them" (Section IV-A).
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from .spec import ForwardClass

if TYPE_CHECKING:  # pragma: no cover
    from ..htm.txstate import TxState

#: Predicate provided by the L1 controller: does the local core have an
#: in-flight exclusive (GETX/upgrade) request for the given block?
InflightWriteProbe = Callable[[int], bool]


def block_is_forwardable(
    forward_class: ForwardClass,
    holder: "TxState",
    block: int,
    inflight_write: InflightWriteProbe,
) -> bool:
    """Whether ``holder`` may forward ``block`` speculatively."""
    if holder.vsb.contains(block):
        # Speculatively received, pending validation: never re-forwarded.
        return False
    written = holder.writes(block)
    read = holder.reads(block)
    if not (written or read):
        # Not a conflicting block at all; the caller should not have asked.
        return False
    if forward_class is ForwardClass.W:
        return written
    if forward_class is ForwardClass.RW:
        return True
    if forward_class is ForwardClass.R_RESTRICT_W:
        # The restriction applies to the *read* set (the R in Rrestrict):
        # a read block with an in-flight local GETX is about to be
        # speculatively written, so its current value would be poison.
        # Written blocks always forward — the speculative store already
        # contains the transaction's own pending stores.
        return written or not inflight_write(block)
    raise ValueError(f"unknown forward class {forward_class!r}")
