"""Consumer-side validation schemes.

A forwarding system's consumer periodically re-validates every
speculatively received block (:mod:`repro.core.validation` drives the
timer and the coherence exchange).  What happens on a *fruitless*
validation — the producer is still speculative, the value still matches —
is the system's validation scheme, one per value of
:attr:`~repro.systems.spec.SystemSpec.validation`:

* ``none`` — the system never consumes, so the hooks are never called
  (requester-wins and requester-stalls systems).
* ``interval`` — plain periodic validation with no extra escape: keep
  waiting for the producer to commit (LEVC).
* ``pic-check`` — periodic validation relying on the PiC cycle check
  (applied generically in
  :meth:`repro.systems.base.ConflictPolicy.check_unsuccessful_validation`)
  to break stale-PiC cycles (CHATS, PCHATS).
* ``naive-budget`` — a bounded unsuccessful-validation counter: each
  fruitless validation burns one unit and exhaustion aborts the consumer
  (``NAIVE_LIMIT``), the only way out of an untracked cyclic wait
  (naive R-S, chats-ts).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..htm.stats import AbortReason

if TYPE_CHECKING:  # pragma: no cover
    from ..htm.txstate import TxState
    from ..sim.config import HTMConfig


class ValidationScheme:
    """``none``/``interval``/``pic-check``: no per-validation escape."""

    name = "interval"

    def __init__(self, htm: "HTMConfig"):
        self.htm = htm

    def on_unsuccessful(self, tx: "TxState") -> Optional[AbortReason]:
        return None

    def on_successful(self, tx: "TxState") -> None:
        pass


class NaiveBudgetValidation(ValidationScheme):
    """``naive-budget``: a 4-bit unsuccessful-validation counter
    (Section VI-B) — the escape hatch of dependency-blind forwarding."""

    name = "naive-budget"

    def on_unsuccessful(self, tx: "TxState") -> Optional[AbortReason]:
        tx.naive_budget -= 1
        if tx.naive_budget <= 0:
            return AbortReason.NAIVE_LIMIT
        return None

    def on_successful(self, tx: "TxState") -> None:
        tx.naive_budget = self.htm.naive_validation_budget


def make_validation(name: str, htm: "HTMConfig") -> ValidationScheme:
    """Instantiate the validation scheme for a spec's ``validation`` layer."""
    if name == "naive-budget":
        return NaiveBudgetValidation(htm)
    return ValidationScheme(htm)
