"""Compose a runnable :class:`ConflictPolicy` from a system spec.

``make_policy`` is the single construction point for every system, paper
or user-registered: it reads the four layer names off
``htm.system`` (a :class:`~repro.systems.spec.SystemSpec`) and assembles
the matching components.  There is deliberately no per-system dispatch
table to extend — registering a new :class:`SystemSpec` is sufficient for
the simulator to run it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import ConflictPolicy
from .conflict import (
    BaselineRW,
    LEVCBEIdealized,
    RequesterSpeculates,
    RequesterStalls,
)
from .ordering import OrderingScheme, PicOrdering, TimestampOrdering
from .priority import PowerPriority
from .validation import make_validation

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.config import HTMConfig

_ORDERINGS = {
    "none": OrderingScheme,
    "pic": PicOrdering,
    "ideal-timestamp": TimestampOrdering,
}


def make_policy(htm: "HTMConfig") -> ConflictPolicy:
    """Instantiate the composed policy object for ``htm.system``."""
    spec = htm.system
    if spec.conflict == "requester-wins":
        base: ConflictPolicy = BaselineRW(htm)
    elif spec.conflict == "requester-stalls":
        base = RequesterStalls(
            htm, wound_wait=spec.ordering == "ideal-timestamp"
        )
    elif spec.ordering == "levc-flags":
        # LEVC's endpoint-flag ordering carries its own stall fallback.
        base = LEVCBEIdealized(htm)
    else:
        base = RequesterSpeculates(
            htm,
            _ORDERINGS[spec.ordering](htm),
            make_validation(spec.validation, htm),
        )
    if spec.priority == "power":
        return PowerPriority(htm, base)
    return base
