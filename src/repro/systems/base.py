"""The conflict-policy strategy interface and its shared guards.

One :class:`ConflictPolicy` instance exists per simulation run; it is
consulted by the L1 controller of the *holder* (the cache that detects a
conflict on an incoming probe) and by the consumer-side validation
controller.  Concrete policies are *compositions* built by
:func:`repro.systems.compose.make_policy` from the layers named in the
run's :class:`~repro.systems.spec.SystemSpec`.

Policies mutate holder-side chain state (PiC, LEVC flags) as a side
effect of deciding, exactly where the hardware would.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..htm.stats import AbortReason
from .forwardrules import InflightWriteProbe, block_is_forwardable
from .outcome import ABORT, PolicyOutcome

if TYPE_CHECKING:  # pragma: no cover
    from ..htm.txstate import TxState
    from ..net.messages import Message
    from ..sim.config import HTMConfig


class ConflictPolicy:
    """Strategy interface; one instance per simulation run."""

    def __init__(self, htm: "HTMConfig"):
        self.htm = htm

    def resolve(
        self,
        holder: "TxState",
        msg: "Message",
        inflight_write: InflightWriteProbe,
    ) -> PolicyOutcome:
        raise NotImplementedError

    # Hooks for the consumer-side validation controller -----------------
    def check_unsuccessful_validation(
        self, tx: "TxState", message_pic: Optional[int]
    ) -> Optional[AbortReason]:
        """Judge a still-speculative (``SpecResp``) validation response
        whose value matched.  Returns the abort reason that must kill the
        consumer, or None to keep waiting.

        The PiC cycle check (``local >= remote`` aborts — stale-PiC races,
        Section IV-C) applies to every forwarding system; the
        ``validation_pic_check`` ablation replaces it with a bounded
        fruitless-validation budget.  The system's own validation scheme
        then gets a say via :meth:`on_unsuccessful_validation`.
        """
        if self.htm.validation_pic_check:
            if tx.pic.validation_check(message_pic):
                return AbortReason.CYCLE
        else:
            # Ablation: with the PiC check disabled, undetected cycles
            # can only be broken by bounding fruitless validations.
            tx.naive_budget -= 1
            if tx.naive_budget <= 0:
                return AbortReason.CYCLE
        return self.on_unsuccessful_validation(tx)

    def on_unsuccessful_validation(self, tx: "TxState") -> Optional[AbortReason]:
        """Called when a validation attempt returns still-speculative but
        matching data.  Returns an abort reason to kill the consumer, or
        None to keep waiting."""
        return None

    def on_successful_validation(self, tx: "TxState") -> None:
        """Called when a block is fully validated."""

    def _common_guards(
        self,
        holder: "TxState",
        msg: "Message",
        inflight_write: InflightWriteProbe,
    ) -> Optional[PolicyOutcome]:
        """Checks shared by every forwarding policy.  Returns an outcome to
        short-circuit with, or None to continue to the policy's own rules."""
        if msg.non_transactional:
            # Conflicting non-transactional requests always use
            # requester-wins (Section IV-A).
            return ABORT
        if not msg.can_consume:
            # The requester has no VSB slot (or cannot consume at all).
            return ABORT
        if self.htm.forward_class is None or not block_is_forwardable(
            self.htm.forward_class, holder, msg.block, inflight_write
        ):
            return ABORT
        return None
