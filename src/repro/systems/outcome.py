"""Conflict-resolution outcome records shared by every mechanism layer.

A policy names one of three resolutions for a conflict detected at the
*holder*:

* ``ABORT_LOCAL`` — requester-wins: the holder's transaction aborts and
  the request is satisfied with non-speculative data;
* ``FORWARD_SPEC`` — requester-speculates: the holder answers with a
  ``SpecResp`` carrying its current (speculative) value and cancels the
  request at the directory, retaining coherence ownership;
* ``NACK`` — requester-stalls: the requester receives a negative response
  and retries later.

:class:`PolicyOutcome` is frozen (and slotted): the module-level ``ABORT``
singleton is returned from every requester-wins path of every policy, so
an accidental caller-side mutation would silently cross-contaminate later
resolutions — freezing turns that hazard into an immediate error.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..htm.stats import AbortReason


class Resolution(Enum):
    ABORT_LOCAL = "abort-local"
    FORWARD_SPEC = "forward-spec"
    NACK = "nack"


@dataclass(frozen=True, slots=True)
class PolicyOutcome:
    resolution: Resolution
    #: PiC stamped on the SpecResp (None for naive/LEVC/power producers).
    message_pic: Optional[int] = None
    #: Abort reason charged to the holder on ABORT_LOCAL.
    abort_reason: AbortReason = AbortReason.CONFLICT
    #: SpecResp originates from a power transaction (PCHATS): the consumer
    #: keeps its PiC.
    from_power: bool = False


#: The shared requester-wins outcome (safe to share: frozen).
ABORT = PolicyOutcome(Resolution.ABORT_LOCAL)
