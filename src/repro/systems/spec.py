"""System descriptors and the string-keyed system registry.

An HTM system in this codebase is not a monolith: it is a *composition*
of four orthogonal mechanism layers (Section VI-B of the paper reads as a
cross-product of exactly these):

* **conflict** — what the holder does with a conflicting requester:
  ``requester-wins`` (holder aborts), ``requester-speculates`` (holder
  forwards a speculative value), or ``requester-stalls`` (holder NACKs).
* **ordering** — how chains of speculative forwardings are kept acyclic:
  ``none`` (no tracking — the naive scheme), ``pic`` (the Position-in-
  Chain register of CHATS), ``ideal-timestamp`` (never-rolling-over
  begin timestamps), or ``levc-flags`` (LEVC's endpoint restrictions).
* **priority** — an optional elevated-priority token: ``none`` or
  ``power`` (the PowerTM single-token scheme).
* **validation** — the consumer-side validation scheme: ``none`` (the
  system never consumes), ``interval`` (plain periodic validation),
  ``pic-check`` (periodic validation plus the PiC cycle check), or
  ``naive-budget`` (periodic validation with a bounded unsuccessful-
  validation escape counter).

A :class:`SystemSpec` freezes one choice per layer plus the system's
Table II parameters.  Specs are registered under their string name in a
process-global registry; everything that used to enumerate or dispatch on
the old closed ``SystemKind`` enum — policy construction, the CLI, the
experiment registry, cache keys — now goes through :func:`get_spec` /
:func:`registered_systems`.  Registering a new system is one
:func:`register` call; no core module needs editing.

``SystemSpec`` deliberately quacks like the retired enum member: ``.value``
is the registry name and ``.forwards`` / ``.powered`` are derived from the
layers instead of hardwired membership lists, so existing call sites (VSB
sizing, fallback-path selection, result serialization) keep working
unchanged — byte-identically so, which the golden-determinism digests
enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class ForwardClass(Enum):
    """Which blocks are eligible for speculative forwarding (Section VI-D).

    * ``RW`` — *Forward all*: read-set and write-set blocks.
    * ``W`` — *Forward written*: write-set blocks only.
    * ``R_RESTRICT_W`` — read and write-set blocks, but a heuristic refuses
      to forward blocks with an in-flight local write (the paper's best
      configuration, used by CHATS and PCHATS in the main evaluation).
    """

    RW = "R/W"
    W = "W"
    R_RESTRICT_W = "Rrestrict/W"


#: The closed vocabulary of each mechanism layer.
CONFLICT_LAYERS = ("requester-wins", "requester-speculates", "requester-stalls")
ORDERING_LAYERS = ("none", "pic", "ideal-timestamp", "levc-flags")
PRIORITY_LAYERS = ("none", "power")
VALIDATION_LAYERS = ("none", "interval", "pic-check", "naive-budget")
#: Fallback-path layer: ``lock`` serialises give-up transactions behind
#: the global fallback lock (the paper's model, and PowerTM's token when
#: the priority layer is ``power``); ``hybrid`` runs an instrumented
#: software slow path concurrently with hardware transactions, guarded by
#: per-block ownership records (see :mod:`repro.htm.fallback`).
FALLBACK_LAYERS = ("lock", "hybrid")


@dataclass(frozen=True)
class SystemSpec:
    """One registered HTM system: a layer composition plus its Table II
    parameters.

    Frozen and hashable so specs can key experiment dictionaries and ride
    inside :class:`~repro.sim.config.HTMConfig` (itself frozen and hashed
    by the experiment runner's content-addressed cache).
    """

    #: Registry key, e.g. ``"chats"`` (doubles as the ``.value`` of the
    #: retired enum member for serialization compatibility).
    name: str
    #: Human-readable label used by figures and tables, e.g. ``"CHATS"``.
    label: str
    conflict: str = "requester-wins"
    ordering: str = "none"
    priority: str = "none"
    validation: str = "none"
    #: What a transaction that exhausts its retries does: serialise
    #: behind the global lock (``"lock"``) or enter the instrumented
    #: concurrent software slow path (``"hybrid"``).
    fallback: str = "lock"
    # Table II parameters (the system's best cost-effective values).
    retries: int = 6
    forward_class: Optional[ForwardClass] = None
    vsb_size: Optional[int] = None
    validation_interval: Optional[int] = None
    # Capacity knobs (the capacity-limited family; ``None`` keeps the
    # paper's unbounded read/write-set model).  ``signature_bits`` selects
    # a Bloom read signature, ``read_set_limit`` a bounded-entry perfect
    # signature — mutually exclusive; ``write_set_limit`` bounds the
    # speculative write set.
    signature_bits: Optional[int] = None
    read_set_limit: Optional[int] = None
    write_set_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("system name must be non-empty")
        if self.conflict not in CONFLICT_LAYERS:
            raise ValueError(
                f"unknown conflict layer {self.conflict!r}; "
                f"choose from {list(CONFLICT_LAYERS)}"
            )
        if self.ordering not in ORDERING_LAYERS:
            raise ValueError(
                f"unknown ordering layer {self.ordering!r}; "
                f"choose from {list(ORDERING_LAYERS)}"
            )
        if self.priority not in PRIORITY_LAYERS:
            raise ValueError(
                f"unknown priority layer {self.priority!r}; "
                f"choose from {list(PRIORITY_LAYERS)}"
            )
        if self.validation not in VALIDATION_LAYERS:
            raise ValueError(
                f"unknown validation layer {self.validation!r}; "
                f"choose from {list(VALIDATION_LAYERS)}"
            )
        if self.fallback not in FALLBACK_LAYERS:
            raise ValueError(
                f"unknown fallback layer {self.fallback!r}; "
                f"choose from {list(FALLBACK_LAYERS)}"
            )
        if self.fallback == "hybrid" and self.priority == "power":
            raise ValueError(
                f"system {self.name!r}: the power token is itself a "
                f"fallback path; combine it with fallback='lock'"
            )
        if self.read_set_limit is not None and self.signature_bits is not None:
            raise ValueError(
                f"system {self.name!r}: read_set_limit and signature_bits "
                f"are mutually exclusive read-set models"
            )
        for knob in ("signature_bits", "read_set_limit", "write_set_limit"):
            bound = getattr(self, knob)
            if bound is not None and bound < 1:
                raise ValueError(f"system {self.name!r}: {knob} must be positive")
        if self.forwards:
            # A forwarding system must carry the full forwarding
            # parameter set so ``table2_config`` always yields a valid
            # HTMConfig (checked again at registration time).
            if self.forward_class is None:
                raise ValueError(f"system {self.name!r} forwards but has no forward class")
            if self.vsb_size is None or self.vsb_size < 1:
                raise ValueError(f"system {self.name!r} forwards but has no VSB size")
            if self.validation_interval is None or self.validation_interval < 0:
                raise ValueError(
                    f"system {self.name!r} forwards but has no validation interval"
                )

    # -- enum-member compatibility surface ------------------------------
    @property
    def value(self) -> str:
        """The serialized identity (the retired enum's ``.value``)."""
        return self.name

    @property
    def forwards(self) -> bool:
        """Whether this system ever sends speculative responses (derived
        from the conflict layer, not a hardwired membership list)."""
        return self.conflict == "requester-speculates"

    @property
    def powered(self) -> bool:
        """Whether this system uses the PowerTM elevated-priority token."""
        return self.priority == "power"

    @property
    def uses_timestamps(self) -> bool:
        """Whether transactions need an ideal begin timestamp drawn at
        start (LEVC's and the wound-wait/chats-ts orderings)."""
        return self.ordering in ("ideal-timestamp", "levc-flags")

    # -- presentation ---------------------------------------------------
    def describe_layers(self) -> str:
        """One-line layer composition, for ``repro list`` and docs."""
        text = (
            f"conflict={self.conflict} ordering={self.ordering} "
            f"priority={self.priority} validation={self.validation}"
        )
        if self.fallback != "lock":
            text += f" fallback={self.fallback}"
        return text

    def describe_table2(self) -> str:
        """One-line Table II parameter summary."""
        parts = [f"retries={self.retries}"]
        if self.forward_class is not None:
            parts.append(f"class={self.forward_class.value}")
        if self.vsb_size is not None:
            parts.append(f"vsb={self.vsb_size}")
        if self.validation_interval is not None:
            parts.append(f"interval={self.validation_interval}")
        if self.signature_bits is not None:
            parts.append(f"sig-bits={self.signature_bits}")
        if self.read_set_limit is not None:
            parts.append(f"rs-limit={self.read_set_limit}")
        if self.write_set_limit is not None:
            parts.append(f"ws-limit={self.write_set_limit}")
        return " ".join(parts)

    def __repr__(self) -> str:  # compact — specs appear in test ids/errors
        return f"SystemSpec({self.name!r})"

    def __str__(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# The registry.
# ----------------------------------------------------------------------
class UnknownSystemError(KeyError):
    """Lookup of a system name that is not registered."""

    def __init__(self, name: str, registered: Tuple[str, ...]):
        super().__init__(name)
        self.name = name
        self.registered = registered

    def __str__(self) -> str:
        return (
            f"unknown system {self.name!r}; registered systems: "
            f"{list(self.registered)}"
        )


_REGISTRY: Dict[str, SystemSpec] = {}
_ORDER: List[str] = []  # registration order
_PAPER: List[str] = []  # the paper's six, in presentation order
_ALIASES: Dict[str, str] = {}  # alternate lookup name -> registered name


def register(spec: SystemSpec, *, paper: bool = False) -> SystemSpec:
    """Register ``spec`` under ``spec.name`` and return it.

    ``paper=True`` additionally lists the system among the paper's six
    (the set enumerated by ``--all-systems`` and the figure sweeps).
    Registering the same name twice is an error unless the spec is
    identical (idempotent re-imports are fine).
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing == spec:
            return existing
        raise ValueError(
            f"system {spec.name!r} is already registered with a different "
            f"spec; pick a new name"
        )
    _REGISTRY[spec.name] = spec
    _ORDER.append(spec.name)
    if paper:
        _PAPER.append(spec.name)
    return spec


def register_alias(alias: str, target: str) -> None:
    """Make ``alias`` resolve to the registered system ``target``.

    Aliases are lookup conveniences only: they resolve through
    :func:`get_spec` but never appear in :func:`registered_systems`, the
    paper-six sweeps, or cache keys (the resolved spec's canonical name
    is what serializes).  Re-registering an alias to the same target is
    idempotent; retargeting or shadowing a registered name is an error.
    """
    if alias in _REGISTRY:
        raise ValueError(f"{alias!r} is already a registered system name")
    existing = _ALIASES.get(alias)
    if existing is not None and existing != target:
        raise ValueError(
            f"alias {alias!r} already points at {existing!r}; "
            f"cannot retarget to {target!r}"
        )
    if target not in _REGISTRY:
        raise UnknownSystemError(target, tuple(_ORDER))
    _ALIASES[alias] = target


def system_aliases() -> Dict[str, str]:
    """Every registered alias, mapped to its canonical system name."""
    return dict(_ALIASES)


def get_spec(name: str) -> SystemSpec:
    """Look up a registered system by name (or alias).

    Raises :class:`UnknownSystemError` (a ``KeyError`` whose message lists
    every registered key) for unknown names.
    """
    if isinstance(name, SystemSpec):
        return name
    spec = _REGISTRY.get(name)
    if spec is None and name in _ALIASES:
        spec = _REGISTRY.get(_ALIASES[name])
    if spec is None:
        raise UnknownSystemError(name, tuple(_ORDER))
    return spec


def registered_systems() -> Tuple[SystemSpec, ...]:
    """Every registered system, in registration order."""
    return tuple(_REGISTRY[name] for name in _ORDER)


def paper_systems() -> Tuple[SystemSpec, ...]:
    """The paper's six systems, in the paper's presentation order."""
    return tuple(_REGISTRY[name] for name in _PAPER)
