"""``SystemKind`` — enum-shaped compatibility facade over the registry.

The closed ``SystemKind`` enum is gone; systems live in the string-keyed
registry (:mod:`repro.systems.spec`).  This shim keeps the old spelling
working for existing code and tests:

* ``SystemKind.CHATS`` — attribute access yields the registered
  :class:`~repro.systems.spec.SystemSpec` singleton (identity-stable, so
  ``is`` comparisons and dict keys behave like enum members);
* ``for kind in SystemKind`` — iterates the paper's six systems in
  presentation order;
* ``SystemKind("chats")`` — name lookup through the registry, raising the
  registry's helpful unknown-name error.

New code should use :func:`repro.systems.get_spec` and friends directly.
"""

from __future__ import annotations

from . import paper
from .spec import SystemSpec, get_spec, paper_systems


class _SystemKindMeta(type):
    def __iter__(cls):
        return iter(paper_systems())

    def __len__(cls) -> int:
        return len(paper_systems())

    def __contains__(cls, item) -> bool:
        return isinstance(item, SystemSpec) and item in paper_systems()

    def __call__(cls, value):  # SystemKind("chats") — enum-style lookup
        return get_spec(value)


class SystemKind(metaclass=_SystemKindMeta):
    """The paper's six systems, as registry singletons (compat shim)."""

    BASELINE = paper.BASELINE
    NAIVE_RS = paper.NAIVE_RS
    CHATS = paper.CHATS
    POWER = paper.POWER
    PCHATS = paper.PCHATS
    LEVC = paper.LEVC


def all_system_kinds() -> tuple:
    """The six paper systems in the paper's presentation order (compat
    alias of :func:`repro.systems.paper_systems`)."""
    return paper_systems()
