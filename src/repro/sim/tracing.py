"""Structured tracing of a simulation (compatibility shim).

The tracer lives in :mod:`repro.obs.tracer` as a subscriber of the
per-simulator instrumentation bus; this module re-exports it under its
historical import path.  The old implementation monkey-patched
``Crossbar.send`` / ``Core._do_commit`` / ``Core.abort_tx`` at *class*
level — unsafe with concurrent simulators and leaky on exceptions — and
was replaced by explicit emit points feeding
:class:`~repro.obs.probe.Probe`.

Example::

    sim = Simulator(workload, htm=table2_config("chats"))
    with Tracer(sim, blocks={geometry.block_of(HOT)}) as trace:
        sim.run()
    for event in trace.events:
        print(event)
"""

from __future__ import annotations

from ..obs.tracer import TraceEvent, Tracer

__all__ = ["TraceEvent", "Tracer"]
