"""Structured tracing of a simulation.

A :class:`Tracer` attaches to a :class:`~repro.sim.simulator.Simulator`
before ``run()`` and records typed :class:`TraceEvent` entries for the
things a CHATS debugging session cares about: coherence messages,
speculative forwards, validations, commits, and aborts.  Filters keep the
trace small (by block, by core, by event kind).

Example::

    sim = Simulator(workload, htm=table2_config(SystemKind.CHATS))
    with Tracer(sim, blocks={geometry.block_of(HOT)}) as trace:
        sim.run()
    for event in trace.events:
        print(event)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from ..htm.stats import AbortReason
from ..net.messages import DIRECTORY, Message
from ..net.network import Crossbar
from .core import Core


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is one of ``message``, ``forward``, ``commit``, ``abort``.
    """

    cycle: int
    kind: str
    core: Optional[int] = None
    block: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = "" if self.core is None else f" core{self.core}"
        blk = "" if self.block is None else f" blk={self.block:#x}"
        return f"[{self.cycle:>8d}] {self.kind:<8s}{where}{blk} {self.detail}"


def _describe_message(msg: Message) -> str:
    src = "DIR" if msg.src == DIRECTORY else f"T{msg.src}"
    dst = "DIR" if msg.dst == DIRECTORY else f"T{msg.dst}"
    extras = []
    if msg.pic is not None:
        extras.append(f"PiC={msg.pic}")
    if msg.is_validation:
        extras.append("validation")
    if msg.power:
        extras.append("power")
    if msg.action:
        extras.append(msg.action)
    if msg.non_transactional:
        extras.append("non-tx")
    suffix = (" " + " ".join(extras)) if extras else ""
    return f"{src}->{dst} {msg.kind.value}{suffix}"


class Tracer:
    """Context manager that hooks the simulator and collects events."""

    def __init__(
        self,
        sim,
        *,
        blocks: Optional[Iterable[int]] = None,
        cores: Optional[Iterable[int]] = None,
        kinds: Optional[Iterable[str]] = None,
        max_events: int = 100_000,
    ):
        self.sim = sim
        self.events: List[TraceEvent] = []
        self._blocks: Optional[Set[int]] = set(blocks) if blocks else None
        self._cores: Optional[Set[int]] = set(cores) if cores else None
        self._kinds: Optional[Set[str]] = set(kinds) if kinds else None
        self._max_events = max_events
        self._orig_send = None
        self._orig_commit = None
        self._orig_abort = None

    # ------------------------------------------------------------------
    def _wants(self, kind: str, core: Optional[int], block: Optional[int]) -> bool:
        if len(self.events) >= self._max_events:
            return False
        if self._kinds is not None and kind not in self._kinds:
            return False
        if self._cores is not None and core is not None and core not in self._cores:
            return False
        if self._blocks is not None and block is not None and block not in self._blocks:
            return False
        return True

    def _record(self, kind: str, core=None, block=None, detail="") -> None:
        if self._wants(kind, core, block):
            self.events.append(
                TraceEvent(
                    cycle=self.sim.engine.now,
                    kind=kind,
                    core=core,
                    block=block,
                    detail=detail,
                )
            )

    # ------------------------------------------------------------------
    def __enter__(self) -> "Tracer":
        tracer = self
        sim = self.sim

        self._orig_send = Crossbar.send

        def send(net_self, msg, *, extra_delay=0):
            if net_self is sim.network:
                src = None if msg.src == DIRECTORY else msg.src
                tracer._record(
                    "message", core=src, block=msg.block,
                    detail=_describe_message(msg),
                )
                from ..net.messages import MessageKind

                if msg.kind is MessageKind.SPEC_RESP:
                    tracer._record(
                        "forward",
                        core=msg.src,
                        block=msg.block,
                        detail=f"-> T{msg.dst} PiC={msg.pic}",
                    )
            tracer._orig_send(net_self, msg, extra_delay=extra_delay)

        Crossbar.send = send

        self._orig_commit = Core._do_commit

        def do_commit(core_self):
            if core_self.sim is sim and core_self.tx is not None:
                tracer._record(
                    "commit",
                    core=core_self.core_id,
                    detail=f"epoch={core_self.tx.epoch}"
                    + (" power" if core_self.tx.power else ""),
                )
            tracer._orig_commit(core_self)

        Core._do_commit = do_commit

        self._orig_abort = Core.abort_tx

        def abort_tx(core_self, reason: AbortReason):
            if (
                core_self.sim is sim
                and core_self.tx is not None
                and core_self.tx.active
            ):
                tracer._record(
                    "abort",
                    core=core_self.core_id,
                    detail=f"epoch={core_self.tx.epoch} reason={reason.value}",
                )
            tracer._orig_abort(core_self, reason)

        Core.abort_tx = abort_tx
        return self

    def __exit__(self, *exc) -> None:
        Crossbar.send = self._orig_send
        Core._do_commit = self._orig_commit
        Core.abort_tx = self._orig_abort

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self) -> str:
        return "\n".join(str(e) for e in self.events)
