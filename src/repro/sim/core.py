"""Core driver: executes one workload thread against the simulated machine.

The driver advances the thread's generator coroutine op by op.  Plain ops
run non-transactionally; a :class:`~repro.sim.ops.Txn` marker enters the
transaction state machine:

1. *Eager lock subscription* — the fallback lock word is read
   transactionally at begin, so the acquiring store of a fallback-path
   thread aborts every running transaction (Section V-C).
2. The body generator is driven with transactional semantics; every abort
   (conflict, validation, cycle, capacity, lock) restarts it from scratch
   with a fresh epoch after a linear backoff.
3. After ``retries`` conflict-induced aborts the fallback engages: PowerTM
   systems request the (single) power token and re-execute with elevated
   priority; other systems — and power transactions that keep failing —
   serialize under the global lock and run the body non-speculatively.
4. Commit waits for the VSB to drain (Section III-A) and then publishes
   the write set atomically.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from ..core.validation import ValidationController
from ..htm.fallback import LOCK_FREE, LOCK_HELD
from ..htm.stats import AbortReason, AttemptOutcome
from ..htm.txstate import TxState
from ..obs import events as obs
from .ops import Abort, AtomicCAS, Read, Txn, Work, Write

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

#: Attempts a power transaction gets before it gives up the token and
#: serializes under the global lock (capacity aborts can be persistent).
POWER_MAX_ATTEMPTS = 4

#: Delay between polls while spinning on a held fallback lock.
LOCK_SPIN_DELAY = 60

#: Hybrid slow path: cycles charged for acquiring one ownership record
#: (the CAS on the orec word) — the per-access instrumentation cost of
#: running software transactions concurrently with hardware ones.
SLOWPATH_OREC_DELAY = 4


class Core:
    """One simulated core running one workload thread."""

    def __init__(self, core_id: int, sim: "Simulator"):
        self.core_id = core_id
        self.sim = sim
        self.engine = sim.engine
        self.htm = sim.htm
        self.policy = sim.policy
        self.stats = sim.stats
        self.l1 = sim.l1s[core_id]
        self.validation = ValidationController(self)

        self.tx: Optional[TxState] = None
        # Reusable TxState sub-objects (signature, write set, store, PiC,
        # VSB), harvested from the first attempt and recycled for every
        # later one — a retry allocates one TxState and one AttemptRecord
        # instead of seven objects.
        self._tx_machinery: Optional[tuple] = None
        self._epoch = 0
        self._thread: Optional[Generator] = None
        self.done = False

        # Per-Txn-instance state.
        self._txn: Optional[Txn] = None
        self._tgen: Optional[Generator] = None
        self._conflict_aborts = 0
        self._attempts = 0
        self._power = False
        self._power_attempts = 0
        # Spec hooks resolved once: whether this system's ordering layer
        # needs ideal begin timestamps, and whether its fallback path is
        # the power token or the global lock.
        self._uses_timestamps = self.htm.system.uses_timestamps
        self._powered = self.htm.system.powered
        #: Spec hook: give-up transactions enter the concurrent software
        #: slow path instead of serializing behind the global lock.
        self._hybrid = self.htm.system.fallback == "hybrid"
        self._block_of = sim.workload.space.geometry.block_of
        self._levc_timestamp: Optional[int] = None
        self._in_fallback = False
        # Hybrid slow-path state: ownership records held (acquisition
        # order) and the redo log of buffered writes (addr -> value).
        self._orecs_held: list = []
        self._redo: dict = {}
        # Cycle at which the current attempt entered the commit fence
        # (waiting for the VSB to drain); feeds ``vsb_stall_cycles``.
        self._fence_since: Optional[int] = None
        # Cycle at which the current attempt started running user code
        # (None until the lock subscription succeeds) and at which the
        # fallback lock was acquired; feed the wasted-cycle gauges.
        self._attempt_begin: Optional[int] = None
        self._fallback_since: Optional[int] = None
        # Blocks written by earlier aborted attempts of the current Txn:
        # the hardware analogue is a store-address predictor.  Feeds the
        # Rrestrict/W "in-flight write" heuristic — a block this attempt
        # has read but a previous attempt wrote is about to be invalidated
        # by a local store, so forwarding it would hand out poison.
        self._write_history: set = set()

    # ------------------------------------------------------------------
    # Thread-level execution.
    # ------------------------------------------------------------------
    def start(self, thread: Generator) -> None:
        self._thread = thread
        self.engine.schedule(0, self._advance_thread, None)

    def _advance_thread(self, send_value: Any) -> None:
        assert self._thread is not None
        try:
            op = self._thread.send(send_value)
        except StopIteration:
            self.done = True
            self.sim.core_finished(self.core_id)
            return
        # Exact-type dispatch: the op protocol is a closed set of frozen
        # records, so ``is``-comparisons beat isinstance() on this hot path.
        cls = op.__class__
        if cls is Txn:
            self._start_txn(op)
        elif cls is Read:
            self.l1.nontx_read(op.addr, self._advance_thread)
        elif cls is Write:
            self.l1.nontx_write(op.addr, op.value, lambda _v: self._advance_thread(None))
        elif cls is AtomicCAS:
            self.l1.nontx_cas(op.addr, op.expect, op.new, self._advance_thread)
        elif cls is Work:
            self.engine.schedule(max(1, op.cycles), self._advance_thread, None)
        else:
            raise TypeError(f"thread yielded unsupported op {op!r}")

    # ------------------------------------------------------------------
    # Transaction lifecycle.
    # ------------------------------------------------------------------
    def _start_txn(self, txn: Txn) -> None:
        self._txn = txn
        self._conflict_aborts = 0
        self._attempts = 0
        self._power = False
        self._power_attempts = 0
        self._in_fallback = False
        self._write_history = set()
        # Chain-state allocation is spec-driven: only orderings that rank
        # transactions by age draw a timestamp (kept across retries).
        self._levc_timestamp = (
            self.sim.next_timestamp() if self._uses_timestamps else None
        )
        self._begin_attempt()

    def _begin_attempt(self) -> None:
        assert self._txn is not None
        self._epoch += 1
        self._attempts += 1
        self._attempt_begin = None
        self.tx = TxState(
            core_id=self.core_id,
            epoch=self._epoch,
            memory=self.sim.memory,
            htm=self.htm,
            power=self._power,
            timestamp=self._levc_timestamp,
            machinery=self._tx_machinery,
        )
        if self._tx_machinery is None:
            self._tx_machinery = self.tx.machinery()
        # Eager lock subscription.
        epoch = self._epoch
        self.l1.tx_read(
            self.tx, self.sim.lock.addr, lambda v: self._after_subscribe(epoch, v)
        )

    def _after_subscribe(self, epoch: int, lock_value: int) -> None:
        tx = self.tx
        if tx is None or not tx.active or tx.epoch != epoch:
            return
        if lock_value != LOCK_FREE:
            # Lock held: quietly roll back and spin until released.
            self._quiet_rollback()
            self.engine.schedule(LOCK_SPIN_DELAY, self._wait_for_lock_free)
            return
        assert self._txn is not None
        self.stats.tx_attempts += 1
        self._attempt_begin = self.engine.now
        probe = self.sim.probe
        if probe._subscribers:
            probe.emit(
                obs.TxBegin(
                    cycle=self.engine.now, core=self.core_id,
                    epoch=epoch, power=self._power,
                )
            )
        self._tgen = self._txn.body(*self._txn.args)
        self._advance_tx(epoch, None)

    def _quiet_rollback(self) -> None:
        """Roll back an attempt that never ran user code (lock was held)."""
        tx = self.tx
        assert tx is not None
        tx.begin_abort(AbortReason.EXPLICIT)
        self.l1.cache.gang_invalidate_speculative()
        tx.finish_abort()
        self.validation.cancel()
        self.tx = None
        self._tgen = None

    def _wait_for_lock_free(self) -> None:
        self.l1.nontx_read(self.sim.lock.addr, self._lock_poll_result)

    def _lock_poll_result(self, value: int) -> None:
        if value == LOCK_FREE:
            self._begin_attempt()
        else:
            self.engine.schedule(LOCK_SPIN_DELAY, self._wait_for_lock_free)

    def _advance_tx(self, epoch: int, send_value: Any) -> None:
        tx = self.tx
        if tx is None or not tx.active or tx.epoch != epoch:
            return
        assert self._tgen is not None
        try:
            op = self._tgen.send(send_value)
        except StopIteration as stop:
            self._try_commit(stop.value)
            return
        cls = op.__class__
        if cls is Read:
            self.l1.tx_read(tx, op.addr, lambda v: self._advance_tx(epoch, v))
        elif cls is Write:
            self.l1.tx_write(
                tx, op.addr, op.value, lambda _v: self._advance_tx(epoch, None)
            )
        elif cls is Work:
            self.engine.schedule(
                max(1, op.cycles), self._advance_tx, epoch, None
            )
        elif cls is Abort:
            self._explicit_abort(op)
        else:
            raise TypeError(f"transaction yielded unsupported op {op!r}")

    def _explicit_abort(self, op: Abort) -> None:
        if op.no_retry:
            self._conflict_aborts = self.htm.retries + 1
        self.abort_tx(AbortReason.EXPLICIT)

    # ------------------------------------------------------------------
    # Commit.
    # ------------------------------------------------------------------
    def _try_commit(self, result: Any) -> None:
        tx = self.tx
        assert tx is not None
        self._tx_result = result
        if tx.vsb.empty:
            self._do_commit()
        else:
            # Section III-A: commit is fenced until every speculatively
            # received block has been validated.
            tx.commit_pending = True
            self._fence_since = self.engine.now

    def finish_pending_commit(self) -> None:
        tx = self.tx
        if tx is not None and tx.active and tx.commit_pending:
            tx.commit_pending = False
            self._settle_fence()
            self._do_commit()

    def _settle_fence(self) -> None:
        """Account cycles spent fenced on a non-empty VSB."""
        if self._fence_since is not None:
            self.stats.vsb_stall_cycles += self.engine.now - self._fence_since
            self._fence_since = None

    def _do_commit(self) -> None:
        tx = self.tx
        assert tx is not None and tx.active
        tx.record.outcome = AttemptOutcome.COMMITTED
        self.stats.record_attempt(tx.record)
        probe = self.sim.probe
        if probe._subscribers:
            probe.emit(
                obs.Commit(
                    cycle=self.engine.now, core=self.core_id, epoch=tx.epoch,
                    power=self._power,
                    label=self._txn.label if self._txn is not None else "",
                )
            )
        tx.commit()
        self.l1.cache.clear_speculative_marks()
        self.validation.cancel()
        self.stats.tx_commits += 1
        if self._attempt_begin is not None:
            self.stats.committed_cycles += self.engine.now - self._attempt_begin
            self._attempt_begin = None
        if self._txn is not None:
            self.stats.label_commits[self._txn.label] += 1
        if self._power:
            self.stats.power_commits += 1
            self.sim.power.release(self.core_id)
            self._power = False
        self.tx = None
        self._tgen = None
        self._txn = None
        self.engine.schedule(1, self._advance_thread, self._tx_result)

    # ------------------------------------------------------------------
    # Abort (called by the L1 controller, validation controller, or self).
    # ------------------------------------------------------------------
    def abort_tx(
        self,
        reason: AbortReason,
        *,
        src: Optional[int] = None,
        block: Optional[int] = None,
    ) -> None:
        """Roll back the running attempt.

        ``src``/``block`` name the proximate cause when the abort site
        knows it (conflicting requester, mismatching producer, the block
        that overflowed); they ride the :class:`~repro.obs.events.Abort`
        event for the forensics layer and change nothing else.
        """
        tx = self.tx
        if tx is None or not tx.active:
            return
        probe = self.sim.probe
        if probe._subscribers:
            probe.emit(
                obs.Abort(
                    cycle=self.engine.now, core=self.core_id, epoch=tx.epoch,
                    reason=reason.value,
                    label=self._txn.label if self._txn is not None else "",
                    src=src, block=block,
                )
            )
        if self._attempt_begin is not None:
            self.stats.aborted_cycles += self.engine.now - self._attempt_begin
            self._attempt_begin = None
        if tx.commit_pending:
            # The attempt died inside the commit fence: the wait still
            # counts as VSB stall time.
            self._settle_fence()
        self._fence_since = None
        tx.begin_abort(reason)
        self._write_history |= tx.write_set
        tx.record.outcome = AttemptOutcome.ABORTED
        tx.record.reason = reason
        self.stats.record_attempt(tx.record)
        self.stats.aborts[reason] += 1
        if self._txn is not None:
            self.stats.label_aborts[self._txn.label] += 1
        self.l1.cache.gang_invalidate_speculative()
        tx.finish_abort()
        self.validation.cancel()
        self.tx = None
        self._tgen = None
        if reason.conflict_induced or reason is AbortReason.EXPLICIT:
            # Conflict-induced aborts drive the paper's thresholds;
            # explicit (_xabort-style) aborts burn retry budget too, as in
            # RTM runtimes.
            self._conflict_aborts += 1
        if self._power:
            self._power_attempts += 1
            if self._power_attempts >= POWER_MAX_ATTEMPTS:
                self.sim.power.release(self.core_id)
                self._power = False
                self.engine.schedule(1, self._acquire_global_lock)
                return
            self.engine.schedule(self._backoff(), self._begin_attempt)
            return
        if reason is AbortReason.CAPACITY:
            # The RTM abort code would carry "retry not helpful": a
            # transaction that overflows the L1 will overflow it again, so
            # the runtime serializes immediately.
            self.engine.schedule(1, self._enter_fallback)
            return
        if self._conflict_aborts > self.htm.retries:
            self.engine.schedule(1, self._enter_fallback)
            return
        self.engine.schedule(self._backoff(), self._begin_attempt)

    def write_predicted(self, block: int) -> bool:
        """Whether a local store to ``block`` is expected shortly (it was
        in the write set of an earlier attempt of the same transaction)."""
        return block in self._write_history

    def _backoff(self) -> int:
        """Randomised exponential backoff (deterministic jitter).

        RTM runtimes back off exponentially between retries so colliding
        transactions de-synchronise instead of re-aborting each other in
        lockstep until the fallback threshold.
        """
        base = self.sim.config.retry_backoff_base
        window = base << min(self._attempts, 6)
        # xorshift-style hash of (core, attempt, epoch) as jitter source.
        x = (self.core_id * 2654435761 + self._attempts * 40503 + self._epoch) & 0xFFFFFFFF
        x ^= x >> 13
        x = (x * 0x5BD1E995) & 0xFFFFFFFF
        x ^= x >> 15
        return base + (x % max(1, window))

    # ------------------------------------------------------------------
    # Fallback paths.
    # ------------------------------------------------------------------
    def _enter_fallback(self) -> None:
        if self._powered:
            self.sim.power.request(self.core_id, self._power_granted)
        elif self._hybrid:
            self._begin_slowpath()
        else:
            self._acquire_global_lock()

    def _power_granted(self) -> None:
        self._power = True
        self._power_attempts = 0
        probe = self.sim.probe
        if probe._subscribers:
            probe.emit(
                obs.PowerElevate(cycle=self.engine.now, core=self.core_id)
            )
        self.engine.schedule(1, self._begin_attempt)

    def _acquire_global_lock(self) -> None:
        self.l1.nontx_cas(
            self.sim.lock.addr, LOCK_FREE, LOCK_HELD, self._lock_cas_result
        )

    def _lock_cas_result(self, observed: int) -> None:
        if observed == LOCK_FREE:
            self.sim.lock.acquisitions += 1
            self._fallback_since = self.engine.now
            probe = self.sim.probe
            if probe._subscribers:
                probe.emit(
                    obs.FallbackAcquire(
                        cycle=self.engine.now, core=self.core_id
                    )
                )
            self._run_fallback_body()
        else:
            self.sim.lock.failed_cas += 1
            self.engine.schedule(LOCK_SPIN_DELAY, self._acquire_global_lock)

    def _run_fallback_body(self) -> None:
        assert self._txn is not None
        self._in_fallback = True
        self._tgen = self._txn.body(*self._txn.args)
        self._advance_fallback(None)

    def _advance_fallback(self, send_value: Any) -> None:
        assert self._tgen is not None
        try:
            op = self._tgen.send(send_value)
        except StopIteration as stop:
            self._finish_fallback(stop.value)
            return
        cls = op.__class__
        if cls is Read:
            self.l1.nontx_read(op.addr, self._advance_fallback)
        elif cls is Write:
            self.l1.nontx_write(
                op.addr, op.value, lambda _v: self._advance_fallback(None)
            )
        elif cls is Work:
            self.engine.schedule(max(1, op.cycles), self._advance_fallback, None)
        elif cls is Abort:
            # An explicit abort under the lock restarts the body (the lock
            # is still held, so this cannot livelock against other cores).
            self._tgen = self._txn.body(*self._txn.args)
            self.engine.schedule(1, self._advance_fallback, None)
        else:
            raise TypeError(f"fallback body yielded unsupported op {op!r}")

    def _finish_fallback(self, result: Any) -> None:
        self._in_fallback = False
        self.stats.tx_fallback_commits += 1
        if self._fallback_since is not None:
            self.stats.fallback_cycles += self.engine.now - self._fallback_since
            self._fallback_since = None
        probe = self.sim.probe
        if probe._subscribers:
            probe.emit(
                obs.FallbackCommit(
                    cycle=self.engine.now, core=self.core_id,
                    label=self._txn.label if self._txn is not None else "",
                )
            )
        if self._txn is not None:
            self.stats.label_commits[self._txn.label] += 1
        self._txn = None
        self._tgen = None
        # Release the global lock; the releasing store is an ordinary
        # non-transactional write.
        self.l1.nontx_write(
            self.sim.lock.addr,
            LOCK_FREE,
            lambda _v: self.engine.schedule(1, self._advance_thread, result),
        )

    # ------------------------------------------------------------------
    # Hybrid software slow path (spec.fallback == "hybrid").
    #
    # The give-up transaction re-executes as instrumented software that
    # runs *concurrently* with hardware transactions: it acquires an
    # exclusive per-block ownership record at encounter time (reads and
    # writes alike), buffers its writes in a redo log, and publishes them
    # through ordinary non-transactional stores at commit — whose GETX
    # traffic aborts conflicting hardware readers via the normal
    # coherence path, while the ownership records (checked by hardware
    # transactions on every access) fence the window between first touch
    # and publication.  On an ownership conflict with another slow path
    # it releases everything and retries after backoff, so ownership
    # waits never form a cycle.
    # ------------------------------------------------------------------
    def _begin_slowpath(self) -> None:
        assert self._txn is not None
        self._in_fallback = True
        self._fallback_since = self.engine.now
        self.sim.orecs.enter(self.core_id)
        probe = self.sim.probe
        if probe._subscribers:
            # The span between FallbackAcquire and FallbackCommit brackets
            # the whole slow-path execution, internal restarts included —
            # mirroring the lock path, so the ledger's "fallback" bucket
            # and the fallback_cycles gauge stay in exact agreement.
            probe.emit(
                obs.FallbackAcquire(cycle=self.engine.now, core=self.core_id)
            )
        self._restart_slowpath()

    def _restart_slowpath(self) -> None:
        assert self._txn is not None
        self._redo = {}
        self._tgen = self._txn.body(*self._txn.args)
        self._advance_slowpath(None)

    def _advance_slowpath(self, send_value: Any) -> None:
        assert self._tgen is not None
        try:
            op = self._tgen.send(send_value)
        except StopIteration as stop:
            self._tx_result = stop.value
            self._publish_slowpath(list(self._redo.items()), 0)
            return
        cls = op.__class__
        if cls is Read:
            self._slowpath_read(op.addr)
        elif cls is Write:
            self._slowpath_write(op.addr, op.value)
        elif cls is Work:
            self.engine.schedule(max(1, op.cycles), self._advance_slowpath, None)
        elif cls is Abort:
            # An explicit abort restarts the software transaction; drop
            # every record first so other threads can make progress while
            # we back off (unlike the lock path, nothing is serialized).
            self._release_orecs()
            self._attempts += 1
            self.engine.schedule(self._backoff(), self._restart_slowpath)
        else:
            raise TypeError(f"slow-path body yielded unsupported op {op!r}")

    def _claim_orec(self, block: int) -> Optional[int]:
        """Acquire the ownership record for ``block``, returning the cycle
        cost of the acquisition (0 when already held), or ``None`` when
        another slow path owns it — in which case everything has been
        released and a restart is scheduled."""
        orecs = self.sim.orecs
        owner = orecs.owner(block)
        if owner is not None and owner != self.core_id:
            orecs.conflicts += 1
            self._release_orecs()
            self._attempts += 1
            self.engine.schedule(self._backoff(), self._restart_slowpath)
            return None
        if owner is None:
            orecs.acquire(block, self.core_id)
            self._orecs_held.append(block)
            return SLOWPATH_OREC_DELAY
        return 0

    def _slowpath_read(self, addr: int) -> None:
        cost = self._claim_orec(self._block_of(addr))
        if cost is None:
            return
        if addr in self._redo:
            # Read-own-write: the redo log overlays committed memory.
            self.engine.schedule(
                1 + cost, self._advance_slowpath, self._redo[addr]
            )
        elif cost:
            self.engine.schedule(
                cost, self.l1.nontx_read, addr, self._advance_slowpath
            )
        else:
            self.l1.nontx_read(addr, self._advance_slowpath)

    def _slowpath_write(self, addr: int, value: int) -> None:
        cost = self._claim_orec(self._block_of(addr))
        if cost is None:
            return
        self._redo[addr] = value
        self.engine.schedule(1 + cost, self._advance_slowpath, None)

    def _release_orecs(self) -> None:
        if self._orecs_held:
            self.sim.orecs.release_all(self.core_id, self._orecs_held)
            self._orecs_held = []
        self._redo = {}
        self._tgen = None

    def _publish_slowpath(self, items: list, index: int) -> None:
        """Drain the redo log into committed memory, one non-transactional
        store at a time (each one's GETX aborts conflicting hardware
        transactions through the ordinary coherence path).  Ownership
        records are held until the last store lands, so no hardware
        transaction can observe a half-published redo log."""
        if index < len(items):
            addr, value = items[index]
            self.l1.nontx_write(
                addr,
                value,
                lambda _v: self._publish_slowpath(items, index + 1),
            )
            return
        self._finish_slowpath()

    def _finish_slowpath(self) -> None:
        self._release_orecs()
        self.sim.orecs.exit(self.core_id)
        self._in_fallback = False
        self.stats.tx_fallback_commits += 1
        if self._fallback_since is not None:
            self.stats.fallback_cycles += self.engine.now - self._fallback_since
            self._fallback_since = None
        probe = self.sim.probe
        if probe._subscribers:
            probe.emit(
                obs.FallbackCommit(
                    cycle=self.engine.now, core=self.core_id,
                    label=self._txn.label if self._txn is not None else "",
                )
            )
        if self._txn is not None:
            self.stats.label_commits[self._txn.label] += 1
        self._txn = None
        self.engine.schedule(1, self._advance_thread, self._tx_result)
