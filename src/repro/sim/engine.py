"""Discrete-event simulation engine.

A single ``heapq``-backed event queue drives the whole machine.  Events
scheduled for the same cycle fire in FIFO order (a monotonically increasing
sequence number breaks ties), which makes every simulation run fully
deterministic for a given workload seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class CancelToken:
    """Handle returned by :meth:`Engine.schedule`; lets callers revoke a
    pending event (used by validation timers and backoff sleeps)."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """Minimal deterministic discrete-event engine."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, CancelToken, Callable, tuple]] = []
        self._seq = itertools.count()
        self._now = 0
        self.events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated cycle."""
        return self._now

    def schedule(self, delay: int, fn: Callable, *args: Any) -> CancelToken:
        """Run ``fn(*args)`` after ``delay`` cycles; returns a cancel token."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        token = CancelToken()
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), token, fn, args)
        )
        return token

    def schedule_at(self, cycle: int, fn: Callable, *args: Any) -> CancelToken:
        """Run ``fn(*args)`` at absolute ``cycle``."""
        return self.schedule(cycle - self._now, fn, *args)

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        while self._queue:
            when, _seq, token, fn, args = heapq.heappop(self._queue)
            if token.cancelled:
                continue
            self._now = when
            self.events_processed += 1
            fn(*args)
            return True
        return False

    def run(self, *, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue.

        ``until`` bounds simulated time; ``max_events`` bounds host work
        (a deadlock/livelock backstop for tests).  Returns the final cycle.

        Contract for bounded runs: after ``run(until=N)`` the clock reads
        ``N`` (unless it was already past ``N``) even when the queue
        drained early, so back-to-back bounded runs observe a consistent,
        monotonic clock.
        """
        processed = 0
        while self._queue:
            head = self._queue[0]
            if head[2].cancelled:
                # Discard lazily so the ``until`` check below always sees
                # a live event (a cancelled head must not let ``step``
                # run a later event past the bound).
                heapq.heappop(self._queue)
                continue
            if until is not None and head[0] > until:
                break
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"engine exceeded {max_events} events at cycle {self._now}; "
                    "likely livelock in the simulated machine"
                )
            if self.step():
                processed += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) queued events."""
        return sum(
            1 for _, _, token, _, _ in self._queue if not token.cancelled
        )
