"""Discrete-event simulation engine.

A single event queue drives the whole machine.  Events scheduled for the
same cycle fire in FIFO order, which makes every simulation run fully
deterministic for a given workload seed.

Hot-path design (this module is the innermost loop of every experiment):

* One allocation per event.  An :class:`Event` is a mutable record
  ``[when, fn, args, engine]`` that is simultaneously the queue entry
  and its own cancel handle — there is no separate ``CancelToken``
  object.  It subclasses ``list`` (with empty ``__slots__``, so no
  per-instance ``__dict__``).
* Calendar-bucket queue.  Future events live in a per-cycle FIFO bucket
  (``dict`` keyed by absolute cycle); the heap orders only the *distinct*
  cycle numbers.  Typical workloads schedule many events per cycle, so
  heap traffic drops from one push+pop per event to one per populated
  cycle.  Bucket append order *is* schedule order, so draining a bucket
  FIFO reproduces the exact deterministic order with zero comparisons
  and no per-event sequence counter.
* Zero-delay fast lane.  ``schedule(0, ...)`` appends straight to the
  current cycle's run list.  Same-cycle events scheduled *while the cycle
  executes* always follow the bucket entries that matured at that cycle
  (the bucket was sealed when the cycle began), so lane order stays
  exact.
* Next-cycle fast lane.  ``delay == 1`` dominates real machines (link
  and L1 hit latencies are one cycle), so those events go to a dedicated
  ``_next`` list and never touch the bucket dict or the heap.  Order is
  preserved because a bucket for cycle ``T+1`` can only receive entries
  *before* cycle ``T`` runs (a delay-1 schedule during ``T`` goes to
  ``_next``, anything longer lands past ``T+1``), so draining the bucket
  first and ``_next`` second is exactly global schedule order.
* O(1) ``pending()`` via a live-event counter maintained on schedule,
  cancel, and fire.
* Cancelled entries are dropped lazily when their cycle drains, and the
  buckets are compacted in place once dead entries outnumber live ones,
  so a workload that arms and cancels millions of timers keeps a bounded
  queue.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Dict, List, Optional


class Event(list):
    """A scheduled event: ``[when, fn, args, engine]``.

    The record is its own cancel handle: :meth:`cancel` marks it dead in
    place (the engine discards it lazily or during compaction).  Firing
    clears ``fn`` as well, so a late ``cancel()`` on an already-fired
    event is a harmless no-op.
    """

    __slots__ = ()

    @property
    def when(self) -> int:
        return self[0]

    @property
    def cancelled(self) -> bool:
        """True once the event can no longer fire (cancelled *or* fired)."""
        return self[1] is None

    def cancel(self) -> None:
        if self[1] is None:
            return
        self[1] = None
        self[2] = ()
        engine = self[3]
        engine._live -= 1
        engine._dead += 1
        if (
            engine._dead >= engine.COMPACT_THRESHOLD
            and engine._dead >= engine._live
        ):
            engine._compact()


#: Backwards-compatible alias: ``schedule`` used to return a dedicated
#: ``CancelToken``; the event record now plays that role itself.
CancelToken = Event


class Engine:
    """Minimal deterministic discrete-event engine."""

    __slots__ = (
        "_buckets",
        "_cycles",
        "_lane",
        "_next",
        "_now",
        "_live",
        "_dead",
        "events_processed",
    )

    #: Dead entries tolerated before an in-place compaction (also requires
    #: dead >= live, so lightly-cancelled queues never churn).
    COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        # Future events: absolute cycle -> FIFO list of events, plus a heap
        # of the distinct cycle keys.  A key is pushed exactly once, when
        # its bucket is created, and popped when the clock reaches it.
        self._buckets: Dict[int, List[Event]] = {}
        self._cycles: List[int] = []
        # Events runnable at the current cycle, in FIFO order.
        self._lane: deque = deque()
        # Events for cycle ``_now + 1`` (the dominant delay), bypassing
        # the bucket dict and the cycle heap entirely.
        self._next: List[Event] = []
        self._now = 0
        self._live = 0
        self._dead = 0
        self.events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated cycle."""
        return self._now

    def schedule(self, delay: int, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` cycles; returns the event,
        which doubles as its cancel handle."""
        if delay == 1:
            event = Event((self._now + 1, fn, args, self))
            self._next.append(event)
        elif delay:
            if delay < 0:
                raise ValueError("cannot schedule into the past")
            when = self._now + delay
            event = Event((when, fn, args, self))
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [event]
                heapq.heappush(self._cycles, when)
            else:
                bucket.append(event)
        else:
            event = Event((self._now, fn, args, self))
            self._lane.append(event)
        self._live += 1
        return event

    def schedule_at(self, cycle: int, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute ``cycle``."""
        return self.schedule(cycle - self._now, fn, *args)

    # ------------------------------------------------------------------
    def _advance(self, until: Optional[int]) -> bool:
        """Seed the empty lane with the next populated cycle's events.

        Returns False when there is nothing left (or the next cycle lies
        beyond ``until``).  Invariant: every ``_next`` entry matures at
        exactly ``_now + 1`` (entries are appended only while the current
        cycle fires, and the clock cannot move before the lane drains),
        so the bucket for that cycle — sealed strictly earlier — drains
        first and ``_next`` second, preserving global schedule order.
        """
        cycles = self._cycles
        nxt = self._next
        target = self._now + 1
        if cycles:
            cycle = cycles[0]
            if nxt and target < cycle:
                cycle = target
        elif nxt:
            cycle = target
        else:
            return False
        if until is not None and cycle > until:
            return False
        lane = self._lane
        if cycles and cycles[0] == cycle:
            heapq.heappop(cycles)
            lane.extend(self._buckets.pop(cycle))
        if nxt and cycle == target:
            lane.extend(nxt)
            nxt.clear()
        return True

    def _next_event(self) -> Optional[Event]:
        """Pop the next live event in deterministic order, or None."""
        lane = self._lane
        while True:
            while lane:
                event = lane.popleft()
                if event[1] is None:
                    self._dead -= 1
                    continue
                return event
            if not self._advance(None):
                return None

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        event = self._next_event()
        if event is None:
            return False
        fn = event[1]
        args = event[2]
        event[1] = None  # consumed: a late cancel() must be a no-op
        event[2] = ()
        self._now = event[0]
        self._live -= 1
        self.events_processed += 1
        fn(*args)
        return True

    def run(self, *, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue.

        ``until`` bounds simulated time; ``max_events`` bounds host work
        (a deadlock/livelock backstop for tests).  Returns the final cycle.

        Contract for bounded runs: after ``run(until=N)`` the clock reads
        ``N`` (unless it was already past ``N``) even when the queue
        drained early, so back-to-back bounded runs observe a consistent,
        monotonic clock.
        """
        if until is not None and until < self._now:
            return self._now
        lane = self._lane
        processed = 0
        try:
            while True:
                if lane:
                    # Peek-then-pop so an event is never lost to the
                    # ``max_events`` backstop.  ``_compact`` mutates the
                    # containers in place, so the local binding stays
                    # valid even when a callback triggers compaction.
                    event = lane[0]
                    fn = event[1]
                    if fn is None:
                        lane.popleft()
                        self._dead -= 1
                        continue
                    if max_events is not None and processed >= max_events:
                        raise RuntimeError(
                            f"engine exceeded {max_events} events at cycle "
                            f"{self._now}; likely livelock in the simulated "
                            "machine"
                        )
                    lane.popleft()
                    args = event[2]
                    event[1] = None
                    event[2] = ()
                    self._now = event[0]
                    self._live -= 1
                    processed += 1
                    fn(*args)
                    continue
                if not self._advance(until):
                    break
        finally:
            self.events_processed += processed
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) queued events — O(1)."""
        return self._live

    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Drop cancelled entries, in place (callers hold aliases to the
        containers), preserving the deterministic order.

        Emptied buckets stay registered (their cycle key is already in the
        heap); the drain loop skips them for free.
        """
        for bucket in self._buckets.values():
            bucket[:] = [event for event in bucket if event[1] is not None]
        nxt = self._next
        nxt[:] = [event for event in nxt if event[1] is not None]
        lane = self._lane
        for _ in range(len(lane)):
            event = lane.popleft()
            if event[1] is not None:
                lane.append(event)
        self._dead = 0
