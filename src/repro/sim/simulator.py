"""Top-level simulator: wires the machine together and runs a workload."""

from __future__ import annotations

import itertools
from typing import List, Optional

from .. import accel
from ..core.policies import make_policy
from ..htm.fallback import FallbackLock, OwnershipTable
from ..htm.power import PowerTokenManager
from ..htm.stats import HTMStats
from ..mem.directory import Directory
from ..mem.l1controller import L1Controller
from ..mem.memory import MainMemory
from ..net.messages import Message
from ..net.network import Crossbar
from ..obs.interval import IntervalMetrics
from ..obs.probe import Probe
from ..systems.spec import SystemSpec
from .config import HTMConfig, SystemConfig, table2_config
from .core import Core
from .results import SimulationResult


class DeadlockError(RuntimeError):
    """The event queue drained while threads were still unfinished."""


class Simulator:
    """One simulated machine executing one workload under one HTM system."""

    def __init__(
        self,
        workload,
        htm: Optional[HTMConfig] = None,
        config: Optional[SystemConfig] = None,
    ):
        self.workload = workload
        self.htm = htm if htm is not None else table2_config("baseline")
        self.config = config if config is not None else SystemConfig()
        if workload.num_threads > self.config.num_cores:
            raise ValueError(
                f"workload wants {workload.num_threads} threads but the "
                f"machine has {self.config.num_cores} cores"
            )

        # The selected backend decides the hot core: the compiled C
        # engine or the pure-Python ``Engine``.  Both produce identical
        # event orders (the golden suite is parametrized over backends).
        self.engine = accel.make_engine()
        #: Instrumentation bus: subscribers see every probe event of this
        #: simulator (and only this one); inert while nobody listens.
        self.probe = Probe()
        self.memory = MainMemory(workload.space.geometry)
        self.network = Crossbar(
            self.engine, self.config, self._route, probe=self.probe
        )
        self.directory = Directory(
            self.engine, self.config, self.memory, self.network,
            probe=self.probe,
        )
        self.policy = make_policy(self.htm)
        self.power = PowerTokenManager()
        self.stats = HTMStats()
        self.lock = FallbackLock(workload.space)
        lock_block = workload.space.geometry.block_of(self.lock.addr)
        # Hybrid-fallback systems get per-block ownership records; every
        # other system keeps ``None`` here so the L1/core hot paths carry
        # no new work (the golden digests pin this).
        self.orecs: Optional[OwnershipTable] = (
            OwnershipTable() if self.htm.system.fallback == "hybrid" else None
        )

        self.l1s: List[L1Controller] = [
            L1Controller(
                core_id=i,
                engine=self.engine,
                config=self.config,
                htm=self.htm,
                geometry=workload.space.geometry,
                memory=self.memory,
                network=self.network,
                policy=self.policy,
                stats=self.stats,
                lock_block=lock_block,
                probe=self.probe,
                orecs=self.orecs,
            )
            for i in range(self.config.num_cores)
        ]
        self.cores: List[Core] = [
            Core(i, self) for i in range(self.config.num_cores)
        ]
        for l1, core in zip(self.l1s, self.cores):
            l1.core = core

        # Dense delivery table indexed by ``msg.dst``: cores at 0..N-1 and
        # the directory (dst == DIRECTORY == -1) in the last slot via
        # Python's negative indexing.
        self._dst_handlers = [l1.handle for l1 in self.l1s]
        self._dst_handlers.append(self.directory.handle)
        # Wire the delivery callback now that the handler tables exist:
        # the compiled dense router (dst -> kind -> handler -> release,
        # one C call) when the compiled backend is active, else _route.
        self.network.finalize_deliver(
            accel.make_router(
                [l1._handlers for l1 in self.l1s]
                + [self.directory._handlers],
                self._route,
            )
        )

        self._timestamps = itertools.count(1)
        self._finished = 0
        self._started = 0

        workload.setup(self.memory)

    # ------------------------------------------------------------------
    def _route(self, msg: Message) -> None:
        self._dst_handlers[msg.dst](msg)
        # Recycle unless the handler retained the message past delivery.
        msg.release()

    def next_timestamp(self) -> int:
        """Ideal, never-rolling-over begin timestamps (Section VI-B) —
        drawn only by systems whose spec orders transactions by age."""
        return next(self._timestamps)

    def core_finished(self, core_id: int) -> None:
        self._finished += 1

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_events: int = 80_000_000,
        metrics_window: Optional[int] = None,
    ) -> SimulationResult:
        """Execute the workload to completion and collect results.

        ``metrics_window`` (cycles) attaches an
        :class:`~repro.obs.interval.IntervalMetrics` subscriber for the
        duration of the run and serializes its time series into the
        result (``result.intervals``); ``None`` keeps the bus silent.
        """
        collector: Optional[IntervalMetrics] = None
        if metrics_window is not None:
            collector = IntervalMetrics(window=metrics_window)
            self.probe.subscribe(collector)
        for tid in range(self.workload.num_threads):
            self.cores[tid].start(self.workload.thread_body(tid))
            self._started += 1
        try:
            cycles = self.engine.run(max_events=max_events)
        finally:
            if collector is not None:
                self.probe.unsubscribe(collector)
        if self._finished != self._started:
            stuck = [c.core_id for c in self.cores if not c.done and c.core_id < self._started]
            raise DeadlockError(
                f"simulation wedged at cycle {cycles}: threads {stuck} never "
                f"finished (lock={self.memory.read_word(self.lock.addr)}, "
                f"power_holder={self.power.holder})"
            )
        self.workload.verify(self.memory)
        return SimulationResult(
            workload=self.workload.name,
            system=self.htm.system.value,
            cycles=cycles,
            stats=self.stats,
            network=self.network.stats(),
            directory={
                "requests": self.directory.requests,
                "forwards": self.directory.forwards,
                "inv_rounds": self.directory.inv_rounds,
                "memory_fetches": self.directory.memory_fetches,
            },
            lock_acquisitions=self.lock.acquisitions,
            power_grants=self.power.grants,
            events=self.engine.events_processed,
            intervals=collector.to_dict() if collector is not None else None,
        )


def run_simulation(
    workload,
    system: SystemSpec | str = "baseline",
    *,
    htm: Optional[HTMConfig] = None,
    config: Optional[SystemConfig] = None,
    max_events: int = 80_000_000,
    metrics_window: Optional[int] = None,
) -> SimulationResult:
    """Convenience one-shot: build a simulator for ``system`` and run it."""
    htm = htm if htm is not None else table2_config(system)
    return Simulator(workload, htm=htm, config=config).run(
        max_events=max_events, metrics_window=metrics_window
    )
