"""System and HTM configuration dataclasses.

``SystemConfig`` mirrors Table I of the paper (the machine model) and
``HTMConfig`` mirrors Table II (the per-system HTM parameters).  Both are
plain frozen dataclasses so that experiment definitions can be hashed and
cached by the experiment runner.

The HTM system itself is a :class:`~repro.systems.spec.SystemSpec` from
the composable system registry (:mod:`repro.systems`); this module
re-exports the registry's compatibility surface (``SystemKind``,
``ForwardClass``, ``all_system_kinds``) under its historical import path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from ..systems.compat import SystemKind, all_system_kinds
from ..systems.spec import ForwardClass, SystemSpec, get_spec
from ..systems import paper as _paper

__all__ = [
    "ForwardClass",
    "HTMConfig",
    "NOT_APPLICABLE",
    "SystemConfig",
    "SystemKind",
    "SystemSpec",
    "all_system_kinds",
    "table2_config",
]


@dataclass(frozen=True)
class SystemConfig:
    """Machine model parameters (Table I), scaled to the simulator.

    Latencies are expressed in simulated cycles.  The defaults follow the
    Golden-Cove-like setup of the paper: 16 cores, 48KiB/12-way L1D with
    1-cycle hits, private L2 (4-cycle roundtrip), shared L3 (30-cycle
    roundtrip), DDR4 memory, and a single-cycle crossbar with 16-byte flits
    (5 flits per data message, 1 per control message).
    """

    num_cores: int = 16

    # Geometry.
    block_bytes: int = 64
    word_bytes: int = 8
    l1_size_bytes: int = 48 * 1024
    l1_ways: int = 12

    # Latencies (cycles).
    l1_hit_latency: int = 1
    l2_roundtrip: int = 4
    l3_roundtrip: int = 30
    memory_latency: int = 120
    link_latency: int = 1
    # The directory is co-located with the shared L3 (Table I): reaching
    # it costs an L2 miss plus the L3 lookup, so probes it forwards to
    # other cores arrive tens of cycles after the request was issued —
    # long after a short store burst at the owner has finished.
    directory_latency: int = 18

    # Network accounting.
    flit_bytes: int = 16
    data_message_flits: int = 5
    control_message_flits: int = 1

    # Base of the randomised exponential backoff between transaction
    # retries (cycles), as in RTM runtime retry loops.
    retry_backoff_base: int = 40

    # Ablation switch (Section V-A discussion): when True the L1 victim
    # selection avoids speculative (write-set) lines; when False plain LRU
    # applies and evicting an SM line costs a capacity abort.
    write_set_aware_replacement: bool = True

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        if self.block_bytes % self.word_bytes:
            raise ValueError("block size must be a multiple of the word size")
        lines = self.l1_size_bytes // self.block_bytes
        if lines % self.l1_ways:
            raise ValueError("L1 lines must divide evenly into ways")

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // self.word_bytes

    @property
    def l1_lines(self) -> int:
        return self.l1_size_bytes // self.block_bytes

    @property
    def l1_sets(self) -> int:
        return self.l1_lines // self.l1_ways


#: Value used by Table II for fields that do not apply to a system.
NOT_APPLICABLE = None


@dataclass(frozen=True)
class HTMConfig:
    """Per-system HTM parameters (Table II).

    ``retries`` is the number of conflict-induced aborts tolerated before
    the fallback path is taken.  ``vsb_size`` and ``validation_interval``
    only apply to forwarding systems.  ``pic_bits`` sizes the Position in
    Chain register (CHATS/PCHATS); ``naive_validation_budget`` sizes the
    naive requester-speculates escape counter (4 bits → 16 attempts).
    """

    system: SystemSpec = _paper.BASELINE
    retries: int = 6
    forward_class: ForwardClass | None = None
    vsb_size: int | None = None
    validation_interval: int | None = None
    pic_bits: int = 5
    naive_validation_budget: int = 16
    # Power systems: aborts before requesting the power token.
    power_threshold: int = 2
    # Requester-stall systems (Power holder nacks, LEVC): cycles a nacked
    # requester waits before re-issuing its request.
    nack_retry_delay: int = 50
    # Ablation switch: the validation-time PiC comparison that catches
    # cycles created by stale PiC exchanges (Section IV-B).  When off,
    # consumers stuck in an undetected cycle escape through the
    # unsuccessful-validation budget instead (slower livelock recovery).
    validation_pic_check: bool = True
    # Read-set signature: None reproduces the paper's *perfect* signature
    # (Section VI-B); an integer selects a Bloom filter of that many bits,
    # whose false positives surface as spurious conflicts — an ablation of
    # the perfect-signature assumption.
    signature_bits: Optional[int] = None
    # Capacity-limited systems: bounded-entry read-set tracking (a
    # BoundedPerfectSignature of this many blocks) and a bounded write
    # set.  Exceeding either raises a ``capacity`` abort that transitions
    # straight to the fallback path.  ``None`` keeps the paper's unbounded
    # model.  ``read_set_limit`` is mutually exclusive with
    # ``signature_bits`` (both replace the perfect signature).
    read_set_limit: Optional[int] = None
    write_set_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.read_set_limit is not None:
            if self.signature_bits is not None:
                raise ValueError(
                    "read_set_limit and signature_bits are mutually "
                    "exclusive read-set models"
                )
            if self.read_set_limit < 1:
                raise ValueError("read_set_limit must be positive")
        if self.write_set_limit is not None and self.write_set_limit < 1:
            raise ValueError("write_set_limit must be positive")
        if self.system.forwards:
            if self.vsb_size is None or self.vsb_size < 1:
                raise ValueError(f"{self.system} requires a positive VSB size")
            if self.validation_interval is None or self.validation_interval < 0:
                raise ValueError(
                    f"{self.system} requires a validation interval >= 0"
                )
            if self.forward_class is None:
                raise ValueError(f"{self.system} requires a forward class")
        if self.pic_bits < 2:
            raise ValueError("PiC needs at least 2 bits")

    @property
    def pic_limit(self) -> int:
        """Exclusive upper bound of the PiC range (2**bits values, one of
        which — the all-ones pattern — is reserved to encode the unset
        PiC)."""
        return (1 << self.pic_bits) - 1

    @property
    def pic_init(self) -> int:
        """Initial PiC, in the middle of the range to allow chains to grow
        from either end (Section IV-C)."""
        return self.pic_limit // 2

    def replace(self, **changes: object) -> "HTMConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def table2_config(system: Union[SystemSpec, str]) -> HTMConfig:
    """Return the Table II configuration recorded in ``system``'s spec.

    Accepts a :class:`~repro.systems.spec.SystemSpec` or a registered
    system name; every registered system — paper or user-added — carries
    its own best cost-effective parameters, so this works for all of them.
    """
    spec = get_spec(system)
    return HTMConfig(
        system=spec,
        retries=spec.retries,
        forward_class=spec.forward_class,
        vsb_size=spec.vsb_size,
        validation_interval=spec.validation_interval,
        signature_bits=spec.signature_bits,
        read_set_limit=spec.read_set_limit,
        write_set_limit=spec.write_set_limit,
    )
