"""System and HTM configuration dataclasses.

``SystemConfig`` mirrors Table I of the paper (the machine model) and
``HTMConfig`` mirrors Table II (the per-system HTM parameters).  Both are
plain frozen dataclasses so that experiment definitions can be hashed and
cached by the experiment runner.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum
from typing import Optional


class ForwardClass(Enum):
    """Which blocks are eligible for speculative forwarding (Section VI-D).

    * ``RW`` — *Forward all*: read-set and write-set blocks.
    * ``W`` — *Forward written*: write-set blocks only.
    * ``R_RESTRICT_W`` — read and write-set blocks, but a heuristic refuses
      to forward blocks with an in-flight local write (the paper's best
      configuration, used by CHATS and PCHATS in the main evaluation).
    """

    RW = "R/W"
    W = "W"
    R_RESTRICT_W = "Rrestrict/W"


class SystemKind(Enum):
    """The six HTM systems evaluated in the paper (Section VI-B)."""

    BASELINE = "baseline"
    NAIVE_RS = "naive-rs"
    CHATS = "chats"
    POWER = "power"
    PCHATS = "pchats"
    LEVC = "levc-be-idealized"

    @property
    def forwards(self) -> bool:
        """Whether this system ever sends speculative responses."""
        return self in (
            SystemKind.NAIVE_RS,
            SystemKind.CHATS,
            SystemKind.PCHATS,
            SystemKind.LEVC,
        )

    @property
    def powered(self) -> bool:
        """Whether this system uses the PowerTM elevated-priority token."""
        return self in (SystemKind.POWER, SystemKind.PCHATS)


@dataclass(frozen=True)
class SystemConfig:
    """Machine model parameters (Table I), scaled to the simulator.

    Latencies are expressed in simulated cycles.  The defaults follow the
    Golden-Cove-like setup of the paper: 16 cores, 48KiB/12-way L1D with
    1-cycle hits, private L2 (4-cycle roundtrip), shared L3 (30-cycle
    roundtrip), DDR4 memory, and a single-cycle crossbar with 16-byte flits
    (5 flits per data message, 1 per control message).
    """

    num_cores: int = 16

    # Geometry.
    block_bytes: int = 64
    word_bytes: int = 8
    l1_size_bytes: int = 48 * 1024
    l1_ways: int = 12

    # Latencies (cycles).
    l1_hit_latency: int = 1
    l2_roundtrip: int = 4
    l3_roundtrip: int = 30
    memory_latency: int = 120
    link_latency: int = 1
    # The directory is co-located with the shared L3 (Table I): reaching
    # it costs an L2 miss plus the L3 lookup, so probes it forwards to
    # other cores arrive tens of cycles after the request was issued —
    # long after a short store burst at the owner has finished.
    directory_latency: int = 18

    # Network accounting.
    flit_bytes: int = 16
    data_message_flits: int = 5
    control_message_flits: int = 1

    # Base of the randomised exponential backoff between transaction
    # retries (cycles), as in RTM runtime retry loops.
    retry_backoff_base: int = 40

    # Ablation switch (Section V-A discussion): when True the L1 victim
    # selection avoids speculative (write-set) lines; when False plain LRU
    # applies and evicting an SM line costs a capacity abort.
    write_set_aware_replacement: bool = True

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        if self.block_bytes % self.word_bytes:
            raise ValueError("block size must be a multiple of the word size")
        lines = self.l1_size_bytes // self.block_bytes
        if lines % self.l1_ways:
            raise ValueError("L1 lines must divide evenly into ways")

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // self.word_bytes

    @property
    def l1_lines(self) -> int:
        return self.l1_size_bytes // self.block_bytes

    @property
    def l1_sets(self) -> int:
        return self.l1_lines // self.l1_ways


#: Value used by Table II for fields that do not apply to a system.
NOT_APPLICABLE = None


@dataclass(frozen=True)
class HTMConfig:
    """Per-system HTM parameters (Table II).

    ``retries`` is the number of conflict-induced aborts tolerated before
    the fallback path is taken.  ``vsb_size`` and ``validation_interval``
    only apply to forwarding systems.  ``pic_bits`` sizes the Position in
    Chain register (CHATS/PCHATS); ``naive_validation_budget`` sizes the
    naive requester-speculates escape counter (4 bits → 16 attempts).
    """

    system: SystemKind = SystemKind.BASELINE
    retries: int = 6
    forward_class: ForwardClass | None = None
    vsb_size: int | None = None
    validation_interval: int | None = None
    pic_bits: int = 5
    naive_validation_budget: int = 16
    # Power systems: aborts before requesting the power token.
    power_threshold: int = 2
    # Requester-stall systems (Power holder nacks, LEVC): cycles a nacked
    # requester waits before re-issuing its request.
    nack_retry_delay: int = 50
    # Ablation switch: the validation-time PiC comparison that catches
    # cycles created by stale PiC exchanges (Section IV-B).  When off,
    # consumers stuck in an undetected cycle escape through the
    # unsuccessful-validation budget instead (slower livelock recovery).
    validation_pic_check: bool = True
    # Read-set signature: None reproduces the paper's *perfect* signature
    # (Section VI-B); an integer selects a Bloom filter of that many bits,
    # whose false positives surface as spurious conflicts — an ablation of
    # the perfect-signature assumption.
    signature_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.system.forwards:
            if self.vsb_size is None or self.vsb_size < 1:
                raise ValueError(f"{self.system} requires a positive VSB size")
            if self.validation_interval is None or self.validation_interval < 0:
                raise ValueError(
                    f"{self.system} requires a validation interval >= 0"
                )
            if self.forward_class is None:
                raise ValueError(f"{self.system} requires a forward class")
        if self.pic_bits < 2:
            raise ValueError("PiC needs at least 2 bits")

    @property
    def pic_limit(self) -> int:
        """Exclusive upper bound of the PiC range (2**bits values, one of
        which — the all-ones pattern — is reserved to encode the unset
        PiC)."""
        return (1 << self.pic_bits) - 1

    @property
    def pic_init(self) -> int:
        """Initial PiC, in the middle of the range to allow chains to grow
        from either end (Section IV-C)."""
        return self.pic_limit // 2

    def replace(self, **changes: object) -> "HTMConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def table2_config(system: SystemKind) -> HTMConfig:
    """Return the optimal Table II configuration for ``system``.

    These are the paper's best cost-effective values: Baseline retries=6;
    Naive R-S retries=2, VSB=4, 50-cycle validation; CHATS retries=32,
    VSB=4, 50-cycle validation; Power retries=2; PCHATS retries=1;
    LEVC-BE-Idealized retries=64 with a 0-cycle validation interval.
    """
    table = {
        SystemKind.BASELINE: HTMConfig(system=SystemKind.BASELINE, retries=6),
        SystemKind.NAIVE_RS: HTMConfig(
            system=SystemKind.NAIVE_RS,
            retries=2,
            forward_class=ForwardClass.R_RESTRICT_W,
            vsb_size=4,
            validation_interval=50,
        ),
        SystemKind.CHATS: HTMConfig(
            system=SystemKind.CHATS,
            retries=32,
            forward_class=ForwardClass.R_RESTRICT_W,
            vsb_size=4,
            validation_interval=50,
        ),
        SystemKind.POWER: HTMConfig(system=SystemKind.POWER, retries=2),
        SystemKind.PCHATS: HTMConfig(
            system=SystemKind.PCHATS,
            retries=1,
            forward_class=ForwardClass.R_RESTRICT_W,
            vsb_size=4,
            validation_interval=50,
        ),
        SystemKind.LEVC: HTMConfig(
            system=SystemKind.LEVC,
            retries=64,
            forward_class=ForwardClass.R_RESTRICT_W,
            vsb_size=4,
            validation_interval=0,
        ),
    }
    return table[system]


def all_system_kinds() -> tuple[SystemKind, ...]:
    """The six systems in the paper's presentation order."""
    return (
        SystemKind.BASELINE,
        SystemKind.NAIVE_RS,
        SystemKind.CHATS,
        SystemKind.POWER,
        SystemKind.PCHATS,
        SystemKind.LEVC,
    )
