"""Runtime invariant checking for the simulated machine.

``check_invariants`` can be called at any cycle of a running simulation —
it is scheduled periodically by the stress tests and callable from a
debugger.  The invariants are chosen to hold even while requests are in
flight:

* **Single writable copy** — at most one L1 holds a genuinely-owned
  (E/M, not speculatively received) line per block.  CHATS deliberately
  relaxes SWMR *reads* (consumers hold speculative copies), but a second
  writable copy would break coherence outright.
* **Spec copies are accounted** — every ``spec_received`` line belongs to
  the core's active transaction, is in its write set, and has a matching
  VSB entry holding the pristine copy.
* **Cons bit discipline** — a set Cons bit implies unvalidated entries in
  the VSB (the bit clears exactly when the VSB drains, Section IV-B).
* **SM lines belong to live transactions** — no speculative line may
  exist on a core without an active transaction attempt.
* **Power singleton** — at most one elevated transaction system-wide.

Quiescent-only invariants (queue empty, lock free, directory idle) are
checked separately by :func:`check_quiescent` after a run completes.
"""

from __future__ import annotations

from typing import List


class InvariantViolation(AssertionError):
    """A machine invariant failed; the message names the culprit."""


def check_invariants(sim) -> None:
    """Validate cross-component invariants of a (possibly mid-run)
    simulation.  Raises :class:`InvariantViolation` on failure."""
    _check_single_writable_copy(sim)
    _check_speculative_accounting(sim)
    _check_power_singleton(sim)


def _check_single_writable_copy(sim) -> None:
    owners: dict = {}
    for l1 in sim.l1s:
        for cset in l1.cache._sets:
            for line in cset.values():
                if line.state in ("E", "M") and not line.spec_received:
                    previous = owners.get(line.block)
                    if previous is not None:
                        raise InvariantViolation(
                            f"block {line.block:#x} writable in both core "
                            f"{previous} and core {l1.core_id}"
                        )
                    owners[line.block] = l1.core_id


def _check_speculative_accounting(sim) -> None:
    for core in sim.cores:
        l1 = core.l1
        tx = core.tx
        spec_lines = l1.cache.speculative_blocks()
        if spec_lines and (tx is None or not tx.active):
            raise InvariantViolation(
                f"core {core.core_id} holds SM lines {spec_lines} with no "
                "active transaction"
            )
        if tx is None or not tx.active:
            continue
        for cset in l1.cache._sets:
            for line in cset.values():
                if not line.spec_received:
                    continue
                if not tx.writes(line.block):
                    raise InvariantViolation(
                        f"core {core.core_id}: spec-received block "
                        f"{line.block:#x} missing from the write set"
                    )
                if not tx.vsb.contains(line.block):
                    raise InvariantViolation(
                        f"core {core.core_id}: spec-received block "
                        f"{line.block:#x} has no VSB entry"
                    )
        if tx.pic.cons and tx.vsb.empty:
            raise InvariantViolation(
                f"core {core.core_id}: Cons bit set with an empty VSB"
            )
        for block in tx.vsb.blocks():
            if not tx.writes(block):
                raise InvariantViolation(
                    f"core {core.core_id}: VSB block {block:#x} not in the "
                    "write set"
                )


def _check_power_singleton(sim) -> None:
    elevated: List[int] = [
        core.core_id
        for core in sim.cores
        if core.tx is not None and core.tx.active and core.tx.power
    ]
    if len(elevated) > 1:
        raise InvariantViolation(f"multiple power transactions: {elevated}")
    if elevated and sim.power.holder != elevated[0]:
        raise InvariantViolation(
            f"core {elevated[0]} runs elevated without holding the token "
            f"(holder={sim.power.holder})"
        )


def check_quiescent(sim) -> None:
    """Validate end-of-run invariants: the machine must be fully idle."""
    for core in sim.cores:
        if core.tx is not None:
            raise InvariantViolation(
                f"core {core.core_id} still has a transaction after the run"
            )
        if core.l1._outstanding:
            raise InvariantViolation(
                f"core {core.core_id} has dangling coherence requests"
            )
        if core.l1.cache.speculative_blocks():
            raise InvariantViolation(
                f"core {core.core_id} retired with SM lines cached"
            )
    for block, entry in sim.directory._blocks.items():
        if entry.busy or entry.queue or entry.inv_round is not None:
            raise InvariantViolation(
                f"directory block {block:#x} not quiescent"
            )
    if sim.power.holder is not None:
        raise InvariantViolation("power token never released")
    if sim.memory.read_word(sim.lock.addr) != 0:
        raise InvariantViolation("fallback lock left held")
