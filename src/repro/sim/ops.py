"""Operation protocol yielded by workload coroutines.

Workload threads and transaction bodies are Python generator functions.
They ``yield`` the operations below; the core driver performs each one
against the simulated machine and ``send()``s the result (the value for
reads, None otherwise) back into the generator.  Because a transaction body
is just a generator *function*, an aborted attempt restarts by
instantiating a fresh generator — re-executing the body with the values it
observes on the new attempt, exactly like re-running the instructions after
a hardware rollback.

The op records are plain ``__slots__`` classes rather than dataclasses:
workloads construct tens of thousands of them per run, and the frozen
dataclass ``__init__`` (one ``object.__setattr__`` per field) dominated the
workload-side profile.  They are immutable by convention — the driver only
ever reads them — and dispatched by exact type (``op.__class__ is Read``),
so no dataclass machinery is needed.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Read:
    """Load the word at ``addr``; the read value is sent back."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"Read(addr={self.addr!r})"


class Write:
    """Store ``value`` to the word at ``addr``."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: int):
        self.addr = addr
        self.value = value

    def __repr__(self) -> str:
        return f"Write(addr={self.addr!r}, value={self.value!r})"


class AtomicCAS:
    """Non-transactional compare-and-swap on the word at ``addr``.

    Atomically (at the completion of the exclusive coherence request):
    if the current value equals ``expect``, store ``new``.  The *observed*
    value is sent back (CAS succeeded iff it equals ``expect``).  Only
    valid outside transactions — inside a transaction the whole region is
    already atomic, so plain Read/Write suffice.
    """

    __slots__ = ("addr", "expect", "new")

    def __init__(self, addr: int, expect: int, new: int):
        self.addr = addr
        self.expect = expect
        self.new = new

    def __repr__(self) -> str:
        return (
            f"AtomicCAS(addr={self.addr!r}, expect={self.expect!r}, "
            f"new={self.new!r})"
        )


class Work:
    """Spend ``cycles`` of local computation."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Work(cycles={self.cycles!r})"


class Abort:
    """Explicitly abort the enclosing transaction (e.g. ``_xabort``).

    The attempt is rolled back and retried like a conflict abort unless
    ``no_retry`` is set, in which case the transaction proceeds straight to
    the fallback path.
    """

    __slots__ = ("no_retry",)

    def __init__(self, no_retry: bool = False):
        self.no_retry = no_retry

    def __repr__(self) -> str:
        return f"Abort(no_retry={self.no_retry!r})"


class Txn:
    """Top-level marker: run ``body(ctx, *args)`` as a transaction.

    ``body`` is a generator function; its ``return`` value is sent back to
    the thread generator once the transaction commits (on the hardware path
    or the fallback path).
    """

    __slots__ = ("body", "args", "label")

    def __init__(
        self,
        body: Callable[..., Any],
        args: Tuple = (),
        label: str = "",
    ):
        self.body = body
        self.args = args
        #: Label for per-transaction-site statistics (optional).
        self.label = label

    def __repr__(self) -> str:
        return (
            f"Txn(body={self.body!r}, args={self.args!r}, "
            f"label={self.label!r})"
        )


#: Union type of everything a transaction body may yield.
TxOp = (Read, Write, Work, Abort)
#: Union type of everything a top-level thread may yield.
ThreadOp = (Read, Write, AtomicCAS, Work, Txn)
