"""Operation protocol yielded by workload coroutines.

Workload threads and transaction bodies are Python generator functions.
They ``yield`` the operations below; the core driver performs each one
against the simulated machine and ``send()``s the result (the value for
reads, None otherwise) back into the generator.  Because a transaction body
is just a generator *function*, an aborted attempt restarts by
instantiating a fresh generator — re-executing the body with the values it
observes on the new attempt, exactly like re-running the instructions after
a hardware rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class Read:
    """Load the word at ``addr``; the read value is sent back."""

    addr: int


@dataclass(frozen=True)
class Write:
    """Store ``value`` to the word at ``addr``."""

    addr: int
    value: int


@dataclass(frozen=True)
class AtomicCAS:
    """Non-transactional compare-and-swap on the word at ``addr``.

    Atomically (at the completion of the exclusive coherence request):
    if the current value equals ``expect``, store ``new``.  The *observed*
    value is sent back (CAS succeeded iff it equals ``expect``).  Only
    valid outside transactions — inside a transaction the whole region is
    already atomic, so plain Read/Write suffice.
    """

    addr: int
    expect: int
    new: int


@dataclass(frozen=True)
class Work:
    """Spend ``cycles`` of local computation."""

    cycles: int


@dataclass(frozen=True)
class Abort:
    """Explicitly abort the enclosing transaction (e.g. ``_xabort``).

    The attempt is rolled back and retried like a conflict abort unless
    ``no_retry`` is set, in which case the transaction proceeds straight to
    the fallback path.
    """

    no_retry: bool = False


@dataclass(frozen=True)
class Txn:
    """Top-level marker: run ``body(ctx, *args)`` as a transaction.

    ``body`` is a generator function; its ``return`` value is sent back to
    the thread generator once the transaction commits (on the hardware path
    or the fallback path).
    """

    body: Callable[..., Any]
    args: Tuple = field(default_factory=tuple)
    #: Label for per-transaction-site statistics (optional).
    label: str = ""


#: Union type of everything a transaction body may yield.
TxOp = (Read, Write, Work, Abort)
#: Union type of everything a top-level thread may yield.
ThreadOp = (Read, Write, AtomicCAS, Work, Txn)
