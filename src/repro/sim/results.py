"""Simulation results bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..htm.stats import HTMStats


@dataclass
class SimulationResult:
    """Everything one run produces, as consumed by the figures/benches."""

    workload: str
    system: str
    cycles: int
    stats: HTMStats
    network: Dict[str, int] = field(default_factory=dict)
    directory: Dict[str, int] = field(default_factory=dict)
    lock_acquisitions: int = 0
    power_grants: int = 0
    events: int = 0
    #: Serialized :class:`~repro.obs.interval.IntervalMetrics` time series
    #: (``{"window": W, "bins": [...]}``) when the run collected one.
    intervals: Optional[Dict[str, object]] = None

    @property
    def total_commits(self) -> int:
        return self.stats.tx_commits + self.stats.tx_fallback_commits

    @property
    def total_aborts(self) -> int:
        return self.stats.total_aborts

    @property
    def flits(self) -> int:
        return self.network.get("flits", 0)

    @property
    def abort_ratio(self) -> float:
        """Aborted attempts per committed transaction."""
        commits = max(1, self.total_commits)
        return self.total_aborts / commits

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Execution-time ratio baseline/self (>1 means self is faster)."""
        if self.cycles == 0:
            raise ValueError("degenerate run with zero cycles")
        return baseline.cycles / self.cycles

    def normalized_time(self, baseline: "SimulationResult") -> float:
        """Execution time normalized to ``baseline`` (Fig. 4 convention:
        lower is better, 1.0 is the baseline)."""
        if baseline.cycles == 0:
            raise ValueError("degenerate baseline with zero cycles")
        return self.cycles / baseline.cycles

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-serializable form (the disk-cache payload)."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "cycles": self.cycles,
            "stats": self.stats.to_dict(),
            "network": dict(self.network),
            "directory": dict(self.directory),
            "lock_acquisitions": self.lock_acquisitions,
            "power_grants": self.power_grants,
            "events": self.events,
        }
        if self.intervals is not None:
            out["intervals"] = self.intervals
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`: round-trips to an equal result."""
        return cls(
            workload=str(data["workload"]),
            system=str(data["system"]),
            cycles=int(data["cycles"]),
            stats=HTMStats.from_dict(data["stats"]),
            network={str(k): int(v) for k, v in data["network"].items()},
            directory={str(k): int(v) for k, v in data["directory"].items()},
            lock_acquisitions=int(data["lock_acquisitions"]),
            power_grants=int(data["power_grants"]),
            events=int(data["events"]),
            intervals=data.get("intervals"),
        )

    def summary(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "system": self.system,
            "cycles": self.cycles,
            "commits": self.total_commits,
            "hw_commits": self.stats.tx_commits,
            "fallback_commits": self.stats.tx_fallback_commits,
            "aborts": self.total_aborts,
            "abort_breakdown": self.stats.abort_breakdown(),
            "spec_forwards": self.stats.spec_forwards,
            "flits": self.flits,
            "lock_acquisitions": self.lock_acquisitions,
            "power_grants": self.power_grants,
        }
