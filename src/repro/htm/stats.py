"""Statistics collected during simulation.

These counters back the paper's evaluation figures:

* Fig. 4 — execution time (``cycles``).
* Fig. 5 — aborted transactions split by :class:`AbortReason`.
* Fig. 6 — executed transactions that conflicted/forwarded, split by how
  the attempt finished (committed vs aborted).
* Fig. 7 — network flits (collected by the crossbar, merged here).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional


class AbortReason(Enum):
    """Why a transaction attempt rolled back (Fig. 5 categories)."""

    CONFLICT = "conflict"  # requester-wins resolution chose us as victim
    VALIDATION = "validation"  # value mismatch on a speculated block
    CYCLE = "cycle"  # PiC rule detected a (potential) cycle
    CAPACITY = "capacity"  # SM line eviction or VSB pressure
    LOCK = "lock"  # fallback-lock subscription invalidated
    NAIVE_LIMIT = "naive-limit"  # naive R-S validation budget exhausted
    EXPLICIT = "explicit"  # workload/runtime requested the abort
    POWER = "power"  # lost a conflict against a power transaction
    HYBRID = "hybrid-slowpath"  # conflicted with a software slow-path txn

    @property
    def conflict_induced(self) -> bool:
        """Whether the abort counts against the retry/power thresholds.

        The paper's retry thresholds and PowerTM elevation trigger count
        *conflict-induced* aborts; capacity and explicit aborts go straight
        to other handling.
        """
        return self in (
            AbortReason.CONFLICT,
            AbortReason.VALIDATION,
            AbortReason.CYCLE,
            AbortReason.NAIVE_LIMIT,
            AbortReason.POWER,
            AbortReason.LOCK,
            AbortReason.HYBRID,
        )


class AttemptOutcome(Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


#: HTMStats fields that never serialize (see ``HTMStats.to_dict``).
TRANSIENT_GAUGES = frozenset(
    {"committed_cycles", "aborted_cycles", "fallback_cycles"}
)


@dataclass(slots=True)
class AttemptRecord:
    """Fig. 6 bookkeeping for a single hardware transaction attempt."""

    conflicted: bool = False  # involved in any conflict (either side)
    forwarded: bool = False  # produced speculative data for someone
    consumed: bool = False  # received speculative data
    outcome: Optional[AttemptOutcome] = None
    reason: Optional[AbortReason] = None


@dataclass(slots=True)
class HTMStats:
    """Aggregate counters for one simulation run."""

    tx_attempts: int = 0
    tx_commits: int = 0
    tx_fallback_commits: int = 0  # executed under the global lock
    power_commits: int = 0  # committed holding the power token
    aborts: Counter = field(default_factory=Counter)  # AbortReason -> count
    spec_forwards: int = 0  # SpecResp messages produced
    validations_attempted: int = 0
    validations_succeeded: int = 0
    validation_mismatches: int = 0
    # VSB occupancy gauges: the deepest any core's VSB ever got, and the
    # total cycles commits spent fenced on a non-empty VSB (Section III-A).
    vsb_high_water: int = 0
    vsb_stall_cycles: int = 0
    # Wasted-work cycle gauges (the paper's Figs. 5-7 causal view): cycles
    # spent inside attempts that committed, inside attempts that rolled
    # back (wasted speculative work), and inside fallback-serialized
    # sections.  Transient — excluded from to_dict/from_dict (so cached
    # payloads and the golden determinism digests are unchanged) and from
    # equality (a cache-reloaded result must still compare equal to the
    # live run it was saved from); the forensics layer (repro inspect)
    # recomputes them from live runs and cross-checks them against the
    # TxLedger's buckets.
    committed_cycles: int = field(default=0, compare=False)
    aborted_cycles: int = field(default=0, compare=False)
    fallback_cycles: int = field(default=0, compare=False)
    # Per-transaction-site statistics (keyed by Txn.label, "" when unset).
    label_commits: Counter = field(default_factory=Counter)
    label_aborts: Counter = field(default_factory=Counter)
    # Fig. 6: attempts that conflicted/forwarded, split by outcome.
    conflicted_committed: int = 0
    conflicted_aborted: int = 0
    forwarder_committed: int = 0
    forwarder_aborted: int = 0
    consumer_committed: int = 0
    consumer_aborted: int = 0

    def record_attempt(self, record: AttemptRecord) -> None:
        committed = record.outcome is AttemptOutcome.COMMITTED
        if record.conflicted:
            if committed:
                self.conflicted_committed += 1
            else:
                self.conflicted_aborted += 1
        if record.forwarded:
            if committed:
                self.forwarder_committed += 1
            else:
                self.forwarder_aborted += 1
        if record.consumed:
            if committed:
                self.consumer_committed += 1
            else:
                self.consumer_aborted += 1

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts.values())

    def abort_breakdown(self) -> Dict[str, int]:
        return {reason.value: self.aborts.get(reason, 0) for reason in AbortReason}

    def label_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-transaction-site commit/abort counts (labels from Txn)."""
        labels = set(self.label_commits) | set(self.label_aborts)
        return {
            label: {
                "commits": self.label_commits.get(label, 0),
                "aborts": self.label_aborts.get(label, 0),
            }
            for label in sorted(labels)
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every counter (disk cache).

        The transient wasted-cycle gauges are omitted: they are an
        in-process forensic view, and serializing them would change the
        golden determinism digests pinned on this payload."""
        out: Dict[str, object] = {}
        for f in dataclasses.fields(self):
            if f.name in TRANSIENT_GAUGES:
                continue
            value = getattr(self, f.name)
            if f.name == "aborts":
                out[f.name] = {r.value: n for r, n in value.items() if n}
            elif isinstance(value, Counter):
                out[f.name] = {k: n for k, n in value.items() if n}
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HTMStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected by the
        dataclass constructor, missing counters default to zero."""
        kwargs: Dict[str, object] = {}
        for f in dataclasses.fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            if f.name == "aborts":
                kwargs[f.name] = Counter(
                    {AbortReason(k): int(n) for k, n in value.items()}
                )
            elif f.name in ("label_commits", "label_aborts"):
                kwargs[f.name] = Counter(
                    {str(k): int(n) for k, n in value.items()}
                )
            else:
                kwargs[f.name] = int(value)
        return cls(**kwargs)

    def merge(self, other: "HTMStats") -> None:
        """Accumulate another core's counters into this one."""
        self.label_commits.update(other.label_commits)
        self.label_aborts.update(other.label_aborts)
        self.tx_attempts += other.tx_attempts
        self.tx_commits += other.tx_commits
        self.tx_fallback_commits += other.tx_fallback_commits
        self.power_commits += other.power_commits
        self.aborts.update(other.aborts)
        self.spec_forwards += other.spec_forwards
        self.validations_attempted += other.validations_attempted
        self.validations_succeeded += other.validations_succeeded
        self.validation_mismatches += other.validation_mismatches
        # A gauge, not a counter: the merged high water is the max.
        self.vsb_high_water = max(self.vsb_high_water, other.vsb_high_water)
        self.vsb_stall_cycles += other.vsb_stall_cycles
        self.committed_cycles += other.committed_cycles
        self.aborted_cycles += other.aborted_cycles
        self.fallback_cycles += other.fallback_cycles
        self.conflicted_committed += other.conflicted_committed
        self.conflicted_aborted += other.conflicted_aborted
        self.forwarder_committed += other.forwarder_committed
        self.forwarder_aborted += other.forwarder_aborted
        self.consumer_committed += other.consumer_committed
        self.consumer_aborted += other.consumer_aborted
