"""Global fallback lock with eager subscription (Section V-C).

Best-effort HTM gives no forward-progress guarantee, so after the retry
threshold a transaction re-executes non-speculatively under a single global
lock [10].  Transactions *eagerly subscribe*: they read the lock word at
begin, putting its block into their read signature, so the lock holder's
acquiring store (a conflicting non-transactional GETX) aborts every running
transaction — preserving atomicity against the non-speculative path.

The lock itself is an ordinary simulated memory word manipulated with the
non-transactional atomic-CAS path of the coherence model; this module only
pins its address and tracks contention statistics.
"""

from __future__ import annotations

from ..mem.address import AddressSpace


LOCK_FREE = 0
LOCK_HELD = 1


class FallbackLock:
    """Address + bookkeeping for the single global fallback lock."""

    def __init__(self, space: AddressSpace):
        # A dedicated block so the lock never false-shares with data.
        self.addr = space.alloc(space.geometry.block_bytes)
        self.acquisitions = 0
        self.failed_cas = 0

    def block(self, geometry) -> int:
        return geometry.block_of(self.addr)
