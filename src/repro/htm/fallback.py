"""Fallback paths: the global lock and the hybrid ownership records.

Best-effort HTM gives no forward-progress guarantee, so after the retry
threshold a transaction re-executes non-speculatively.  Two models:

* :class:`FallbackLock` — the paper's single global lock [10].
  Transactions *eagerly subscribe*: they read the lock word at begin,
  putting its block into their read signature, so the lock holder's
  acquiring store (a conflicting non-transactional GETX) aborts every
  running transaction — preserving atomicity against the non-speculative
  path.  The lock itself is an ordinary simulated memory word manipulated
  with the non-transactional atomic-CAS path of the coherence model; this
  module only pins its address and tracks contention statistics.

* :class:`OwnershipTable` — the hybrid slow path's per-block ownership
  records (``SystemSpec.fallback == "hybrid"``).  A give-up transaction
  re-executes as instrumented software that acquires an exclusive record
  per block at encounter time, buffers writes in a redo log, and
  publishes at commit; hardware transactions check the records on every
  access and abort with ``hybrid-slowpath`` when they touch an owned
  block.  Like the PowerTM token manager, the table is simulator-level
  metadata rather than simulated memory — the cost of the software
  instrumentation is modelled as a per-acquisition cycle charge at the
  core (see :data:`repro.sim.core.SLOWPATH_OREC_DELAY`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..mem.address import AddressSpace


LOCK_FREE = 0
LOCK_HELD = 1


class FallbackLock:
    """Address + bookkeeping for the single global fallback lock."""

    def __init__(self, space: AddressSpace):
        # A dedicated block so the lock never false-shares with data.
        self.addr = space.alloc(space.geometry.block_bytes)
        self.acquisitions = 0
        self.failed_cas = 0

    def block(self, geometry) -> int:
        return geometry.block_of(self.addr)


class OwnershipTable:
    """Per-block exclusive ownership records for the hybrid slow path.

    One table per simulation.  Software slow-path transactions acquire a
    record per block before touching it (encounter-time locking) and hold
    every record until their redo log has been published; on a conflict
    with another owner they release *everything* and retry after backoff,
    so ownership waits can never form a cycle.  Hardware transactions
    consult :meth:`owner` on each transactional access.
    """

    def __init__(self) -> None:
        self._owner: Dict[int, int] = {}
        #: Cores currently executing the software slow path (used by the
        #: L1 controllers to classify holder-side aborts caused by
        #: slow-path coherence traffic as ``hybrid-slowpath``).
        self._active: Set[int] = set()
        # Contention bookkeeping (simulator-level; never serialized).
        self.acquisitions = 0
        self.conflicts = 0
        self.slowpath_entries = 0

    def owner(self, block: int) -> Optional[int]:
        return self._owner.get(block)

    def acquire(self, block: int, core: int) -> None:
        current = self._owner.get(block)
        if current is not None and current != core:
            raise RuntimeError(
                f"orec {block:#x} already owned by core {current}"
            )
        if current is None:
            self._owner[block] = core
            self.acquisitions += 1

    def release_all(self, core: int, blocks: List[int]) -> None:
        for block in blocks:
            if self._owner.get(block) == core:
                del self._owner[block]

    def enter(self, core: int) -> None:
        self._active.add(core)
        self.slowpath_entries += 1

    def exit(self, core: int) -> None:
        self._active.discard(core)

    def in_slowpath(self, core: int) -> bool:
        return core in self._active
