"""Read-set signatures.

The paper's baseline uses a *perfect* signature for read sets (Section
VI-B), following commercial RTM implementations whose read sets can exceed
the private cache.  A perfect signature never produces false positives or
negatives.  Two departures from that idealisation back the
capacity-limited system family (``repro.systems.capacity``):

* :class:`BloomSignature` — a classic H3-style Bloom filter whose false
  positives surface as spurious conflicts (first-class via the
  ``signature_bits`` Table-II knob, originally an ablation toy);
* :class:`BoundedPerfectSignature` — exact tracking up to a fixed entry
  budget, raising :class:`FootprintOverflow` on the first block past it
  (the overflow becomes a ``capacity`` abort at the L1 controller).
"""

from __future__ import annotations

from typing import Iterable, Set


class FootprintOverflow(Exception):
    """A transactional footprint exceeded a hardware capacity bound.

    Raised by :class:`BoundedPerfectSignature` (read-set entry budget) and
    by :meth:`~repro.htm.txstate.TxState.track_write` (write-set budget);
    the L1 controller converts it into an ``AbortReason.CAPACITY`` abort,
    which the core answers with an immediate fallback transition — the
    RTM "retrying will not help" rule.
    """

    def __init__(self, block: int):
        super().__init__(f"capacity bound exceeded at block {block:#x}")
        self.block = block


class PerfectSignature:
    """Exact set of blocks — the paper's evaluation configuration."""

    __slots__ = ("_blocks",)

    def __init__(self) -> None:
        self._blocks: Set[int] = set()

    def add(self, block: int) -> None:
        self._blocks.add(block)

    def test(self, block: int) -> bool:
        return block in self._blocks

    def clear(self) -> None:
        self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    def blocks(self) -> Set[int]:
        return set(self._blocks)


class BoundedPerfectSignature(PerfectSignature):
    """Exact signature with a bounded number of entries.

    Models a fully-associative tracking structure of ``max_entries``
    lines: membership is exact (no false positives), but adding a *new*
    block past the budget raises :class:`FootprintOverflow`.  Re-adding a
    tracked block is always free, so retries with the same footprint fail
    deterministically at the same access.
    """

    __slots__ = ("max_entries",)

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        super().__init__()
        self.max_entries = max_entries

    def add(self, block: int) -> None:
        blocks = self._blocks
        if block not in blocks and len(blocks) >= self.max_entries:
            raise FootprintOverflow(block)
        blocks.add(block)


class BloomSignature:
    """H3-style Bloom filter signature (for sensitivity studies only).

    False positives manifest as spurious conflicts, exactly as a real
    hardware signature would behave.
    """

    __slots__ = ("_bits", "_hashes", "_seed", "_filter", "_count")

    def __init__(self, bits: int = 2048, hashes: int = 4, seed: int = 0x5EED):
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self._bits = bits
        self._hashes = hashes
        self._seed = seed
        self._filter = 0
        self._count = 0

    def _positions(self, block: int) -> Iterable[int]:
        x = block ^ self._seed
        for i in range(self._hashes):
            # xorshift-style mix per hash function.
            x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
            x ^= x >> 7
            x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
            yield (x + i * 0x9E3779B97F4A7C15) % self._bits

    def add(self, block: int) -> None:
        for pos in self._positions(block):
            self._filter |= 1 << pos
        self._count += 1

    def test(self, block: int) -> bool:
        return all(self._filter & (1 << pos) for pos in self._positions(block))

    def clear(self) -> None:
        self._filter = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count
