"""Read-set signatures.

The paper's baseline uses a *perfect* signature for read sets (Section
VI-B), following commercial RTM implementations whose read sets can exceed
the private cache.  A perfect signature never produces false positives or
negatives; we also provide a classic Bloom-filter signature for ablation
studies of the "perfect signature" assumption.
"""

from __future__ import annotations

from typing import Iterable, Set


class PerfectSignature:
    """Exact set of blocks — the paper's evaluation configuration."""

    __slots__ = ("_blocks",)

    def __init__(self) -> None:
        self._blocks: Set[int] = set()

    def add(self, block: int) -> None:
        self._blocks.add(block)

    def test(self, block: int) -> bool:
        return block in self._blocks

    def clear(self) -> None:
        self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    def blocks(self) -> Set[int]:
        return set(self._blocks)


class BloomSignature:
    """H3-style Bloom filter signature (for sensitivity studies only).

    False positives manifest as spurious conflicts, exactly as a real
    hardware signature would behave.
    """

    __slots__ = ("_bits", "_hashes", "_seed", "_filter", "_count")

    def __init__(self, bits: int = 2048, hashes: int = 4, seed: int = 0x5EED):
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self._bits = bits
        self._hashes = hashes
        self._seed = seed
        self._filter = 0
        self._count = 0

    def _positions(self, block: int) -> Iterable[int]:
        x = block ^ self._seed
        for i in range(self._hashes):
            # xorshift-style mix per hash function.
            x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
            x ^= x >> 7
            x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
            yield (x + i * 0x9E3779B97F4A7C15) % self._bits

    def add(self, block: int) -> None:
        for pos in self._positions(block):
            self._filter |= 1 << pos
        self._count += 1

    def test(self, block: int) -> bool:
        return all(self._filter & (1 << pos) for pos in self._positions(block))

    def clear(self) -> None:
        self._filter = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count
