"""PowerTM token manager (Dice, Herlihy, Kogan — reference [12]).

The runtime guarantees at most one *power* (elevated-priority) transaction
system-wide.  A core requests the token after its conflict-abort threshold
is reached; requests queue FIFO and the token is granted when released.
Conflicts involving a power transaction are always resolved in its favour
(see :class:`repro.core.policies.Power` / ``PCHATS``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional


class PowerTokenManager:
    """FIFO arbiter for the single power token."""

    def __init__(self) -> None:
        self._holder: Optional[int] = None
        self._queue: Deque[tuple] = deque()
        self.grants: int = 0
        self.max_queue_depth: int = 0

    @property
    def holder(self) -> Optional[int]:
        return self._holder

    def is_power(self, core_id: int) -> bool:
        return self._holder == core_id

    def request(self, core_id: int, granted: Callable[[], None]) -> None:
        """Ask for the token; ``granted`` fires (possibly immediately) when
        this core becomes the power transaction."""
        if self._holder == core_id:
            granted()
            return
        if self._holder is None and not self._queue:
            self._holder = core_id
            self.grants += 1
            granted()
            return
        if any(cid == core_id for cid, _ in self._queue):
            raise RuntimeError(f"core {core_id} already queued for the token")
        self._queue.append((core_id, granted))
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))

    def release(self, core_id: int) -> None:
        """Commit (or final failure) of the power transaction."""
        if self._holder != core_id:
            raise RuntimeError(
                f"core {core_id} released a token held by {self._holder}"
            )
        self._holder = None
        if self._queue:
            next_core, granted = self._queue.popleft()
            self._holder = next_core
            self.grants += 1
            granted()

    def cancel(self, core_id: int) -> None:
        """Remove a queued (not yet granted) request, e.g. because the
        waiting transaction moved to the lock fallback instead."""
        self._queue = deque((c, g) for c, g in self._queue if c != core_id)
