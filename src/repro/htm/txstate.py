"""Per-core hardware transaction state.

One :class:`TxState` object describes a single *attempt* of a transaction:
read signature, write set, redo image (speculative store), VSB, PiC, the
power/priority bit, and the Fig. 6 attempt record.  A retry creates a fresh
``TxState`` with a new epoch so that in-flight responses addressed to the
dead attempt can be recognised and dropped.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Set

from ..core.pic import PiCRegister
from ..core.vsb import ValidationStateBuffer
from ..mem.memory import MainMemory, SpeculativeStore
from ..sim.config import HTMConfig
from .signature import (
    BloomSignature,
    BoundedPerfectSignature,
    FootprintOverflow,
    PerfectSignature,
)
from .stats import AbortReason, AttemptRecord


class TxStatus(Enum):
    ACTIVE = "active"
    ABORTING = "aborting"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TxState:
    """State of one hardware transaction attempt on one core."""

    __slots__ = (
        "core_id",
        "epoch",
        "status",
        "active",
        "power",
        "timestamp",
        "read_sig",
        "write_set",
        "store",
        "pic",
        "vsb",
        "naive_budget",
        "write_limit",
        "abort_reason",
        "record",
        "levc_has_consumer",
        "levc_has_consumed",
        "levc_has_produced",
        "commit_pending",
    )

    def __init__(
        self,
        core_id: int,
        epoch: int,
        memory: MainMemory,
        htm: HTMConfig,
        *,
        power: bool = False,
        timestamp: Optional[int] = None,
        machinery: Optional[tuple] = None,
    ):
        self.core_id = core_id
        self.epoch = epoch
        self.status = TxStatus.ACTIVE
        #: Hot-path mirror of ``status is TxStatus.ACTIVE`` — checked on
        #: every coherence response and probe, so it is a plain attribute
        #: maintained at the (rare) status transitions.
        self.active = True
        self.power = power
        #: Ideal begin timestamp (kept across retries by the core driver);
        #: ``None`` unless the spec's ordering layer ranks transactions by
        #: age (``spec.uses_timestamps``).
        self.timestamp = timestamp

        if machinery is not None:
            # Per-core reuse across attempts (see :meth:`machinery`): the
            # previous attempt ended via ``commit()``/``finish_abort()``,
            # both of which restore the signature, write set, store and
            # PiC to their pristine state.  The VSB retires entries
            # without rewinding its round-robin pointer, so it is the one
            # piece that needs an explicit clear here.
            (
                self.read_sig,
                self.write_set,
                self.store,
                self.pic,
                self.vsb,
            ) = machinery
            self.vsb.clear()
        else:
            # Perfect signature per the paper's evaluation; a Bloom filter
            # or a bounded-entry exact signature when the configuration
            # models finite read-set tracking (the capacity family).
            if htm.read_set_limit is not None:
                self.read_sig = BoundedPerfectSignature(htm.read_set_limit)
            elif htm.signature_bits is not None:
                self.read_sig = BloomSignature(bits=htm.signature_bits)
            else:
                self.read_sig = PerfectSignature()
            self.write_set = set()
            self.store = SpeculativeStore(memory)
            self.pic = PiCRegister(limit=htm.pic_limit, init=htm.pic_init)
            # Spec hook: only specs whose conflict layer speculates get a
            # real VSB; others carry a 1-slot stub (never filled).
            self.vsb = (
                ValidationStateBuffer(htm.vsb_size)
                if htm.system.forwards and htm.vsb_size
                else ValidationStateBuffer(1)
            )
        #: Naive R-S escape hatch: unsuccessful-validation budget.
        self.naive_budget = htm.naive_validation_budget
        #: Capacity family: bounded speculative write set (None = unbounded).
        self.write_limit = htm.write_set_limit

        self.abort_reason: Optional[AbortReason] = None
        self.record = AttemptRecord()

        # LEVC restrictions bookkeeping.
        self.levc_has_consumer = False
        self.levc_has_consumed = False
        self.levc_has_produced = False

        # Whether the attempt is waiting in the commit fence for the VSB
        # to drain (Section III-A: commit requires an empty VSB).
        self.commit_pending = False

    # ------------------------------------------------------------------
    def machinery(self) -> tuple:
        """The reusable sub-objects, to be passed back into the next
        attempt's constructor once this attempt has finished.  Safe
        because every asynchronous path into a transaction re-fetches the
        *current* attempt and epoch-checks before mutating — a stale
        reference to a finished ``TxState`` is never written through."""
        return (self.read_sig, self.write_set, self.store, self.pic, self.vsb)

    def reads(self, block: int) -> bool:
        return self.read_sig.test(block)

    def writes(self, block: int) -> bool:
        return block in self.write_set

    def conflicts_with_read(self, block: int) -> bool:
        """A remote *exclusive* request conflicts with reads and writes."""
        return self.reads(block) or self.writes(block)

    def conflicts_with_write(self, block: int) -> bool:
        """A remote *read* request conflicts only with our writes."""
        return self.writes(block)

    def track_read(self, block: int) -> None:
        self.read_sig.add(block)

    def track_write(self, block: int) -> None:
        ws = self.write_set
        if (
            self.write_limit is not None
            and block not in ws
            and len(ws) >= self.write_limit
        ):
            raise FootprintOverflow(block)
        ws.add(block)
        # Writes imply read permission in the conflict model.
        self.read_sig.add(block)

    def footprint(self) -> Set[int]:
        """Exact footprint (perfect signatures only); Bloom-signature
        transactions fall back to the write set plus nothing — callers
        needing membership should use :meth:`reads`/:meth:`writes`."""
        if isinstance(self.read_sig, PerfectSignature):
            return self.read_sig.blocks() | self.write_set
        return set(self.write_set)

    # ------------------------------------------------------------------
    def mark_conflicted(self) -> None:
        self.record.conflicted = True

    def mark_forwarded(self) -> None:
        self.record.conflicted = True
        self.record.forwarded = True
        self.levc_has_consumer = True
        self.levc_has_produced = True

    def mark_consumed(self) -> None:
        self.record.conflicted = True
        self.record.consumed = True
        self.levc_has_consumed = True

    # ------------------------------------------------------------------
    def begin_abort(self, reason: AbortReason) -> None:
        """Transition to ABORTING (cleanup happens at the core driver)."""
        if self.status in (TxStatus.COMMITTED, TxStatus.ABORTED):
            raise RuntimeError(f"abort of finished transaction ({self.status})")
        if self.status is TxStatus.ABORTING:
            return  # already dying; first reason wins
        self.status = TxStatus.ABORTING
        self.active = False
        self.abort_reason = reason

    def finish_abort(self) -> None:
        self.store.discard()
        self.vsb.clear()
        self.pic.reset()
        self.read_sig.clear()
        self.write_set.clear()
        self.status = TxStatus.ABORTED
        self.active = False

    def can_commit(self) -> bool:
        """Commit gate: every speculatively received block validated."""
        return self.status is TxStatus.ACTIVE and self.vsb.empty

    def commit(self) -> None:
        if not self.can_commit():
            raise RuntimeError("commit attempted with pending speculation")
        self.store.commit()
        self.read_sig.clear()
        self.write_set.clear()
        self.pic.reset()
        self.status = TxStatus.COMMITTED
        self.active = False
