"""repro — a full Python reproduction of *Chaining Transactions for
Effective Concurrency Management in Hardware Transactional Memory*
(CHATS, MICRO 2024).

The package contains an event-driven multicore simulator (cores, MESI
directory coherence, L1 caches with speculative versioning, a crossbar
interconnect), a registry of best-effort HTM systems composed from
pluggable mechanism layers (the paper's six — requester-wins baseline,
naive requester-speculates, CHATS, PowerTM, PCHATS, LEVC-BE-Idealized —
plus registry-defined extras), re-implementations of the STAMP benchmarks
plus the paper's two microbenchmarks, and a harness regenerating every
table and figure of the paper's evaluation.

Quickstart::

    from repro import run_workload

    base = run_workload("kmeans-h", system="baseline", scale=0.1)
    chats = run_workload("kmeans-h", system="chats", scale=0.1)
    print(chats.normalized_time(base))  # < 1.0: CHATS is faster

New systems are composed and registered without touching the simulator —
see :mod:`repro.systems` (``register``/``SystemSpec``) and the "Systems
registry" section of ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from typing import Optional

from .sim.config import (
    ForwardClass,
    HTMConfig,
    SystemConfig,
    SystemKind,
    all_system_kinds,
    table2_config,
)
from .sim.invariants import InvariantViolation, check_invariants, check_quiescent
from .sim.results import SimulationResult
from .sim.simulator import DeadlockError, Simulator, run_simulation
from .sim.tracing import TraceEvent, Tracer
from .systems import (
    SystemSpec,
    UnknownSystemError,
    get_spec,
    paper_systems,
    register,
    registered_systems,
)
from .workloads.base import Workload, make_workload, workload_names
from .workloads.scripted import ScriptedWorkload

# Register all built-in workloads on import.
from .workloads import synth as _synth  # noqa: F401
from .workloads.stamp import register_all as _register_stamp

_register_stamp()

__version__ = "1.0.0"

__all__ = [
    "ForwardClass",
    "HTMConfig",
    "InvariantViolation",
    "ScriptedWorkload",
    "SimulationResult",
    "Simulator",
    "SystemConfig",
    "SystemKind",
    "SystemSpec",
    "TraceEvent",
    "Tracer",
    "DeadlockError",
    "Workload",
    "all_system_kinds",
    "UnknownSystemError",
    "check_invariants",
    "check_quiescent",
    "get_spec",
    "make_workload",
    "paper_systems",
    "register",
    "registered_systems",
    "run_simulation",
    "run_workload",
    "table2_config",
    "workload_names",
]


def run_workload(
    name: str,
    system: "SystemSpec | str" = "baseline",
    *,
    threads: int = 16,
    seed: int = 1,
    scale: float = 1.0,
    htm: Optional[HTMConfig] = None,
    config: Optional[SystemConfig] = None,
    max_events: int = 80_000_000,
) -> SimulationResult:
    """Run a registered workload under an HTM system and return results.

    This is the primary public entry point: it instantiates the workload,
    builds the machine with the Table II configuration for ``system``
    (unless an explicit ``htm`` overrides it), runs to completion, checks
    the workload's correctness invariants, and returns the
    :class:`SimulationResult`.
    """
    workload = make_workload(name, threads=threads, seed=seed, scale=scale)
    return run_simulation(
        workload, system, htm=htm, config=config, max_events=max_events
    )
