"""The per-simulator instrumentation hub.

One :class:`Probe` is created by each
:class:`~repro.sim.simulator.Simulator` and handed (by reference) to the
components that emit events — there is no global state, so two
simulators in the same process (or tracing resumed after an exception)
can never cross-talk, unlike the retired class-attribute monkey-patching
``Tracer``.

Emission is *zero-cost when nobody listens*: every emit site guards the
event construction with ``if probe: ...``, and an unsubscribed probe is
falsy, so the hot path pays one attribute load and one branch.

Example::

    sim = Simulator(workload)
    sim.probe.subscribe(print)       # stream every event
    sim.run()
"""

from __future__ import annotations

from typing import Callable, List

from .events import ProbeEvent

Subscriber = Callable[[ProbeEvent], None]


class Probe:
    """Fan-out hub for typed probe events."""

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []

    def __bool__(self) -> bool:
        """Truthy only while at least one subscriber is attached — emit
        sites use this to skip event construction entirely."""
        return bool(self._subscribers)

    @property
    def active(self) -> bool:
        return bool(self._subscribers)

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Attach ``fn``; it receives every subsequent event."""
        if fn not in self._subscribers:
            self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Detach ``fn``; unknown subscribers are ignored (idempotent)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    def emit(self, event: ProbeEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order.

        The subscriber list is snapshotted so a callback may unsubscribe
        itself (e.g. a tracer that hit its event cap) mid-delivery.
        """
        for fn in tuple(self._subscribers):
            fn(event)
