"""The per-simulator instrumentation hub.

One :class:`Probe` is created by each
:class:`~repro.sim.simulator.Simulator` and handed (by reference) to the
components that emit events — there is no global state, so two
simulators in the same process (or tracing resumed after an exception)
can never cross-talk, unlike the retired class-attribute monkey-patching
``Tracer``.

Emission is *zero-cost when nobody listens*: every emit site guards the
event construction with ``if probe: ...``, and an unsubscribed probe is
falsy, so the hot path pays one attribute load and one branch.

Example::

    sim = Simulator(workload)
    sim.probe.subscribe(print)       # stream every event
    sim.run()
"""

from __future__ import annotations

from typing import Callable, Tuple

from .events import ProbeEvent

Subscriber = Callable[[ProbeEvent], None]


class Probe:
    """Fan-out hub for typed probe events.

    The subscriber collection is a copy-on-write tuple: ``subscribe`` /
    ``unsubscribe`` build a replacement tuple, ``emit`` iterates whatever
    tuple it sees at call time.  A callback that unsubscribes itself (or
    anyone else) mid-delivery mutates only the *next* emit's view — the
    in-flight iteration keeps its snapshot — and the hot path allocates
    nothing per event (the old per-emit ``tuple(...)`` copy is gone).
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: Tuple[Subscriber, ...] = ()

    def __bool__(self) -> bool:
        """Truthy only while at least one subscriber is attached — emit
        sites use this to skip event construction entirely."""
        return bool(self._subscribers)

    @property
    def active(self) -> bool:
        return bool(self._subscribers)

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Attach ``fn``; it receives every subsequent event."""
        if fn not in self._subscribers:
            self._subscribers = self._subscribers + (fn,)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Detach ``fn``; unknown subscribers are ignored (idempotent)."""
        if fn in self._subscribers:
            self._subscribers = tuple(
                s for s in self._subscribers if s != fn
            )

    def emit(self, event: ProbeEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order.

        Snapshot semantics come free from copy-on-write: the loop binds
        the current tuple once, so concurrent (un)subscription from a
        callback cannot perturb this delivery round.
        """
        for fn in self._subscribers:
            fn(event)
