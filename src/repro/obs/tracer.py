"""Structured tracing of a simulation, as an instrumentation-bus subscriber.

A :class:`Tracer` attaches to a :class:`~repro.sim.simulator.Simulator`'s
probe before ``run()`` and records typed :class:`TraceEvent` entries for
the things a CHATS debugging session cares about: coherence messages,
speculative forwards, validations, commits, and aborts.  Filters keep the
trace small (by block, by core, by event kind).

Unlike its retired predecessor — which monkey-patched ``Crossbar.send``
and ``Core._do_commit`` at *class* level, leaking across concurrent
simulators and on exceptions — the tracer is purely instance-scoped: it
subscribes to one simulator's :class:`~repro.obs.probe.Probe` and sees
nothing else.

Example::

    sim = Simulator(workload, htm=table2_config("chats"))
    with Tracer(sim, blocks={geometry.block_of(HOT)}) as trace:
        sim.run()
    for event in trace.events:
        print(event)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from .events import (
    Abort,
    Commit,
    DirForward,
    DirInvRound,
    FallbackAcquire,
    MsgSent,
    PicUpdate,
    PowerElevate,
    ProbeEvent,
    SpecForward,
    TxBegin,
    ValidationMismatch,
    ValidationOk,
    ValidationStart,
    VsbDrain,
    VsbInsert,
)

#: Node id of the directory (mirrors ``repro.net.messages.DIRECTORY``
#: without importing the protocol layer into the observability layer).
_DIRECTORY = -1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is the emitting probe event's kind — ``message``,
    ``forward``, ``commit``, ``abort``, ``validation-start``, ... — see
    :data:`repro.obs.events.EVENT_TYPES` for the full taxonomy.
    """

    cycle: int
    kind: str
    core: Optional[int] = None
    block: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = "" if self.core is None else f" core{self.core}"
        blk = "" if self.block is None else f" blk={self.block:#x}"
        return f"[{self.cycle:>8d}] {self.kind:<8s}{where}{blk} {self.detail}"


def _node(node: int) -> str:
    return "DIR" if node == _DIRECTORY else f"T{node}"


def _describe_message(ev: MsgSent) -> str:
    extras = []
    if ev.pic is not None:
        extras.append(f"PiC={ev.pic}")
    if ev.is_validation:
        extras.append("validation")
    if ev.power:
        extras.append("power")
    if ev.action:
        extras.append(ev.action)
    if ev.non_transactional:
        extras.append("non-tx")
    suffix = (" " + " ".join(extras)) if extras else ""
    return f"{_node(ev.src)}->{_node(ev.dst)} {ev.msg_kind}{suffix}"


def _flatten(ev: ProbeEvent) -> TraceEvent:
    """Project a typed probe event onto the (core, block, detail) shape."""
    if isinstance(ev, MsgSent):
        core = None if ev.src == _DIRECTORY else ev.src
        return TraceEvent(ev.cycle, ev.kind, core, ev.block, _describe_message(ev))
    if isinstance(ev, SpecForward):
        return TraceEvent(
            ev.cycle, ev.kind, ev.producer, ev.block,
            f"-> T{ev.consumer} PiC={ev.pic}",
        )
    if isinstance(ev, Commit):
        detail = f"epoch={ev.epoch}" + (" power" if ev.power else "")
        return TraceEvent(ev.cycle, ev.kind, ev.core, None, detail)
    if isinstance(ev, Abort):
        return TraceEvent(
            ev.cycle, ev.kind, ev.core, None,
            f"epoch={ev.epoch} reason={ev.reason}",
        )
    if isinstance(ev, TxBegin):
        detail = f"epoch={ev.epoch}" + (" power" if ev.power else "")
        return TraceEvent(ev.cycle, ev.kind, ev.core, None, detail)
    if isinstance(ev, (ValidationStart, ValidationOk, ValidationMismatch)):
        return TraceEvent(
            ev.cycle, ev.kind, ev.core, ev.block, f"epoch={ev.epoch}"
        )
    if isinstance(ev, PicUpdate):
        return TraceEvent(
            ev.cycle, ev.kind, ev.core, None, f"value={ev.value} ({ev.source})"
        )
    if isinstance(ev, (VsbInsert, VsbDrain)):
        return TraceEvent(
            ev.cycle, ev.kind, ev.core, ev.block, f"occupancy={ev.occupancy}"
        )
    if isinstance(ev, (FallbackAcquire, PowerElevate)):
        return TraceEvent(ev.cycle, ev.kind, ev.core, None, "")
    if isinstance(ev, DirForward):
        return TraceEvent(
            ev.cycle, ev.kind, None, ev.block,
            f"owner=T{ev.owner} for T{ev.requester}"
            + (" excl" if ev.exclusive else ""),
        )
    if isinstance(ev, DirInvRound):
        return TraceEvent(
            ev.cycle, ev.kind, None, ev.block,
            f"sharers={ev.sharers} for T{ev.requester}",
        )
    return TraceEvent(ev.cycle, ev.kind)  # pragma: no cover - future kinds


class Tracer:
    """Context manager that subscribes to a simulator's probe and collects
    filtered :class:`TraceEvent` entries."""

    def __init__(
        self,
        sim,
        *,
        blocks: Optional[Iterable[int]] = None,
        cores: Optional[Iterable[int]] = None,
        kinds: Optional[Iterable[str]] = None,
        max_events: int = 100_000,
    ):
        self.sim = sim
        self.events: List[TraceEvent] = []
        self._blocks: Optional[Set[int]] = set(blocks) if blocks else None
        self._cores: Optional[Set[int]] = set(cores) if cores else None
        self._kinds: Optional[Set[str]] = set(kinds) if kinds else None
        self._max_events = max_events

    # ------------------------------------------------------------------
    def _wants(self, kind: str, core: Optional[int], block: Optional[int]) -> bool:
        if len(self.events) >= self._max_events:
            return False
        if self._kinds is not None and kind not in self._kinds:
            return False
        if self._cores is not None and core is not None and core not in self._cores:
            return False
        if self._blocks is not None and block is not None and block not in self._blocks:
            return False
        return True

    def __call__(self, ev: ProbeEvent) -> None:
        """Probe subscriber entry point."""
        flat = _flatten(ev)
        if self._wants(flat.kind, flat.core, flat.block):
            self.events.append(flat)

    # ------------------------------------------------------------------
    def attach(self) -> "Tracer":
        self.sim.probe.subscribe(self)
        return self

    def detach(self) -> None:
        self.sim.probe.unsubscribe(self)

    def __enter__(self) -> "Tracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self) -> str:
        return "\n".join(str(e) for e in self.events)
