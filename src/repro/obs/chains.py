"""Forwarding-chain reconstruction for post-mortem debugging.

CHATS' correctness story revolves around *chains*: producer → consumer
edges created by speculative forwarding, ordered by the PiC registers.
When a run misbehaves (cycle aborts, cascading validation failures) the
question is always "what did the chain look like?" — which no aggregate
counter answers.

:class:`ChainInspector` subscribes to the bus, collects every
:class:`~repro.obs.events.SpecForward` edge (with the PiC stamped on the
SpecResp at forward time) and every abort, then reconstructs linear
chains by linking edges whose consumer later acts as a producer.  A
producer forwarding to several consumers forks: the first consumer
extends the chain, later ones start new chains anchored at the fork.

Example::

    inspector = ChainInspector(sim)
    with inspector:
        sim.run()
    print(inspector.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .events import Abort, ProbeEvent, SpecForward


@dataclass(frozen=True)
class ChainEdge:
    """One producer→consumer forwarding, with PiC at forward time."""

    cycle: int
    producer: int
    consumer: int
    block: int
    pic: Optional[int]


@dataclass
class Chain:
    """A maximal linear sequence of forwarding edges."""

    edges: List[ChainEdge]

    @property
    def depth(self) -> int:
        return len(self.edges)

    @property
    def cores(self) -> List[int]:
        out = [self.edges[0].producer]
        out.extend(e.consumer for e in self.edges)
        return out

    @property
    def blocks(self) -> List[int]:
        return [e.block for e in self.edges]

    @property
    def start_cycle(self) -> int:
        return self.edges[0].cycle

    @property
    def end_cycle(self) -> int:
        return self.edges[-1].cycle


def link_chains(edges: Iterable[ChainEdge]) -> List[Chain]:
    """Link forwarding edges (in cycle order) into maximal linear chains.

    A producer forwarding to several consumers forks: the first consumer
    extends the chain, later ones start new chains anchored at the fork.
    Shared by :class:`ChainInspector` and the forensics attribution pass
    (:mod:`repro.obs.attribution`), so both agree on what a chain is.
    """
    chains: List[Chain] = []
    #: consumer core -> chain currently ending at that core.
    open_ends: Dict[int, Chain] = {}
    for edge in sorted(edges, key=lambda e: e.cycle):
        chain = open_ends.pop(edge.producer, None)
        if chain is None:
            chain = Chain(edges=[edge])
            chains.append(chain)
        else:
            chain.edges.append(edge)
        open_ends[edge.consumer] = chain
    return chains


class ChainInspector:
    """Probe subscriber reconstructing speculative forwarding chains."""

    def __init__(self, sim=None):
        self.sim = sim
        self.edges: List[ChainEdge] = []
        #: core -> list of (cycle, reason) aborts, for attribution.
        self.aborts: Dict[int, List[tuple]] = {}

    # ------------------------------------------------------------------
    def __call__(self, ev: ProbeEvent) -> None:
        if isinstance(ev, SpecForward):
            self.edges.append(
                ChainEdge(
                    cycle=ev.cycle,
                    producer=ev.producer,
                    consumer=ev.consumer,
                    block=ev.block,
                    pic=ev.pic,
                )
            )
        elif isinstance(ev, Abort):
            self.aborts.setdefault(ev.core, []).append((ev.cycle, ev.reason))

    def attach(self) -> "ChainInspector":
        if self.sim is None:
            raise RuntimeError("no simulator bound; subscribe manually")
        self.sim.probe.subscribe(self)
        return self

    def detach(self) -> None:
        if self.sim is not None:
            self.sim.probe.unsubscribe(self)

    def __enter__(self) -> "ChainInspector":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def chains(self) -> List[Chain]:
        """Link edges (in cycle order) into maximal linear chains."""
        return link_chains(self.edges)

    def _abort_after(self, core: int, cycle: int) -> Optional[tuple]:
        """First abort of ``core`` at or after ``cycle`` (if any)."""
        for when, reason in sorted(self.aborts.get(core, [])):
            if when >= cycle:
                return when, reason
        return None

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable chain dump for post-mortem debugging."""
        chains = self.chains()
        if not chains:
            return "no speculative forwarding observed"
        lines = [f"{len(chains)} chain(s), {len(self.edges)} forward(s)"]
        for i, chain in enumerate(chains, 1):
            lines.append(
                f"chain #{i}: depth={chain.depth} "
                f"cycles={chain.start_cycle}..{chain.end_cycle}"
            )
            hops = [f"T{chain.edges[0].producer}"]
            for e in chain.edges:
                pic = "power" if e.pic is None else f"PiC={e.pic}"
                hops.append(f"-[blk={e.block:#x} {pic} @{e.cycle}]-> T{e.consumer}")
            lines.append("  " + " ".join(hops))
            for e in chain.edges:
                hit = self._abort_after(e.consumer, e.cycle)
                if hit is not None:
                    when, reason = hit
                    lines.append(
                        f"  ! consumer T{e.consumer} aborted "
                        f"({reason}) at cycle {when}"
                    )
        return "\n".join(lines)
