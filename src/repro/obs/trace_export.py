"""Trace export: JSONL event streams and Chrome ``trace_event`` files.

Two exporters ride the instrumentation bus:

* :class:`JsonlTraceWriter` streams every probe event as one JSON object
  per line — greppable, diffable, and trivially parseable (each line is
  ``event.to_dict()`` exactly).

* :class:`ChromeTraceExporter` buffers events and writes the Chrome
  ``trace_event`` JSON format (the ``{"traceEvents": [...]}`` object
  form), loadable in Perfetto / ``chrome://tracing``.  Layout: one track
  (thread) per simulated core carrying transaction-attempt slices plus
  instant markers, and one extra *directory* track for directory-sourced
  coherence traffic.  Timestamps are simulated cycles, reported as
  microseconds (1 cycle = 1 us) so Perfetto's zoom levels behave.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Union

from .events import (
    Abort,
    Commit,
    DirForward,
    DirInvRound,
    FallbackAcquire,
    MsgSent,
    PicUpdate,
    PowerElevate,
    ProbeEvent,
    SpecForward,
    TxBegin,
    ValidationMismatch,
    ValidationOk,
    ValidationStart,
    VsbDrain,
    VsbInsert,
)

_DIRECTORY = -1

#: Perfetto thread id used for the directory track (cores use their id).
DIRECTORY_TRACK = 9999

#: pid shared by every track (the whole machine is one "process").
TRACE_PID = 1


class JsonlTraceWriter:
    """Probe subscriber writing one JSON object per event per line."""

    def __init__(self, destination: Union[str, IO[str]]):
        if isinstance(destination, str):
            self._file: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False
        self.events_written = 0

    def __call__(self, ev: ProbeEvent) -> None:
        self._file.write(json.dumps(ev.to_dict(), sort_keys=True))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChromeTraceExporter:
    """Probe subscriber producing a Perfetto-loadable Chrome trace."""

    def __init__(self) -> None:
        self._events: List[Dict[str, object]] = []
        #: core -> cycle of the currently open transaction slice.
        self._open_tx: Dict[int, int] = {}
        self._cores_seen: set = set()
        self._directory_seen = False
        self._last_cycle = 0

    # ------------------------------------------------------------------
    def _add(
        self,
        *,
        name: str,
        ph: str,
        ts: int,
        tid: int,
        args: Optional[Dict[str, object]] = None,
        cat: str = "sim",
    ) -> None:
        entry: Dict[str, object] = {
            "name": name,
            "ph": ph,
            "ts": ts,
            "pid": TRACE_PID,
            "tid": tid,
            "cat": cat,
        }
        if ph == "i":
            entry["s"] = "t"  # thread-scoped instant
        if args:
            entry["args"] = args
        self._events.append(entry)

    @property
    def events_recorded(self) -> int:
        """Trace entries buffered so far (excluding metadata)."""
        return len(self._events)

    def _track(self, core: int) -> int:
        if core == _DIRECTORY:
            self._directory_seen = True
            return DIRECTORY_TRACK
        self._cores_seen.add(core)
        return core

    def _instant(self, name: str, cycle: int, core: int, **args) -> None:
        self._add(name=name, ph="i", ts=cycle, tid=self._track(core), args=args or None)

    # ------------------------------------------------------------------
    def __call__(self, ev: ProbeEvent) -> None:
        self._last_cycle = max(self._last_cycle, ev.cycle)
        if isinstance(ev, TxBegin):
            tid = self._track(ev.core)
            # A begin while a slice is open (shouldn't happen) closes it.
            if ev.core in self._open_tx:
                self._add(name="tx", ph="E", ts=ev.cycle, tid=tid)
            self._open_tx[ev.core] = ev.cycle
            self._add(
                name="tx", ph="B", ts=ev.cycle, tid=tid,
                args={"epoch": ev.epoch, "power": ev.power},
            )
        elif isinstance(ev, Commit):
            self._finish_tx(ev.core, ev.cycle, "commit", power=ev.power)
        elif isinstance(ev, Abort):
            self._finish_tx(ev.core, ev.cycle, "abort", reason=ev.reason)
        elif isinstance(ev, SpecForward):
            self._instant(
                "forward", ev.cycle, ev.producer,
                consumer=ev.consumer, block=hex(ev.block), pic=ev.pic,
            )
        elif isinstance(ev, ValidationStart):
            self._instant("validate", ev.cycle, ev.core, block=hex(ev.block))
        elif isinstance(ev, ValidationOk):
            self._instant("validate-ok", ev.cycle, ev.core, block=hex(ev.block))
        elif isinstance(ev, ValidationMismatch):
            self._instant("validate-mismatch", ev.cycle, ev.core, block=hex(ev.block))
        elif isinstance(ev, VsbInsert):
            self._instant(
                "vsb-insert", ev.cycle, ev.core,
                block=hex(ev.block), occupancy=ev.occupancy,
            )
        elif isinstance(ev, VsbDrain):
            self._instant(
                "vsb-drain", ev.cycle, ev.core,
                block=hex(ev.block), occupancy=ev.occupancy,
            )
        elif isinstance(ev, PicUpdate):
            self._instant("pic", ev.cycle, ev.core, value=ev.value, source=ev.source)
        elif isinstance(ev, FallbackAcquire):
            self._instant("fallback-lock", ev.cycle, ev.core)
        elif isinstance(ev, PowerElevate):
            self._instant("power-token", ev.cycle, ev.core)
        elif isinstance(ev, MsgSent):
            self._instant(
                f"msg:{ev.msg_kind}", ev.cycle, ev.src,
                dst=ev.dst, block=hex(ev.block),
            )
        elif isinstance(ev, DirForward):
            self._instant(
                "dir-forward", ev.cycle, _DIRECTORY,
                block=hex(ev.block), owner=ev.owner, requester=ev.requester,
            )
        elif isinstance(ev, DirInvRound):
            self._instant(
                "dir-inv-round", ev.cycle, _DIRECTORY,
                block=hex(ev.block), sharers=ev.sharers,
            )

    def _finish_tx(self, core: int, cycle: int, outcome: str, **args) -> None:
        tid = self._track(core)
        args["outcome"] = outcome
        if core in self._open_tx:
            del self._open_tx[core]
            self._add(name="tx", ph="E", ts=cycle, tid=tid, args=args)
        else:
            # Commit/abort without a recorded begin (e.g. the attempt died
            # during lock subscription): mark it as an instant.
            self._instant(outcome, cycle, core, **args)

    # ------------------------------------------------------------------
    def finalize(self) -> Dict[str, object]:
        """Close dangling slices and return the trace_event payload."""
        for core, _since in sorted(self._open_tx.items()):
            self._add(
                name="tx", ph="E", ts=self._last_cycle, tid=self._track(core),
                args={"outcome": "unfinished"},
            )
        self._open_tx.clear()
        meta: List[Dict[str, object]] = [
            {
                "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
                "args": {"name": "repro simulator"},
            }
        ]
        for core in sorted(self._cores_seen):
            meta.append(
                {
                    "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                    "tid": core, "args": {"name": f"core {core}"},
                }
            )
        if self._directory_seen:
            meta.append(
                {
                    "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                    "tid": DIRECTORY_TRACK, "args": {"name": "directory"},
                }
            )
        return {
            "traceEvents": meta + self._events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "1 trace us = 1 simulated cycle"},
        }

    def write(self, destination: Union[str, IO[str]]) -> None:
        payload = self.finalize()
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, destination)
