"""Trace export: JSONL event streams and Chrome ``trace_event`` files.

Two exporters ride the instrumentation bus:

* :class:`JsonlTraceWriter` streams every probe event as one JSON object
  per line — greppable, diffable, and trivially parseable (each line is
  ``event.to_dict()`` exactly).

* :class:`ChromeTraceExporter` buffers events and writes the Chrome
  ``trace_event`` JSON format (the ``{"traceEvents": [...]}`` object
  form), loadable in Perfetto / ``chrome://tracing``.  Layout: one track
  (thread) per simulated core carrying transaction-attempt slices plus
  instant markers, and one extra *directory* track for directory-sourced
  coherence traffic.  Timestamps are simulated cycles, reported as
  microseconds (1 cycle = 1 us) so Perfetto's zoom levels behave.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Dict, List, Optional, Union

from .events import (
    Abort,
    Commit,
    DirForward,
    DirInvRound,
    FallbackAcquire,
    FallbackCommit,
    MsgSent,
    PicUpdate,
    PowerElevate,
    ProbeEvent,
    SpecForward,
    TxBegin,
    ValidationMismatch,
    ValidationOk,
    ValidationStart,
    VsbDrain,
    VsbInsert,
)

_DIRECTORY = -1

#: Perfetto thread id used for the directory track (cores use their id).
DIRECTORY_TRACK = 9999

#: pid shared by every track (the whole machine is one "process").
TRACE_PID = 1


class JsonlTraceWriter:
    """Probe subscriber writing one JSON object per event per line."""

    def __init__(self, destination: Union[str, IO[str]]):
        if isinstance(destination, str):
            self._file: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False
        self.events_written = 0

    def __call__(self, ev: ProbeEvent) -> None:
        self._file.write(json.dumps(ev.to_dict(), sort_keys=True))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChromeTraceExporter:
    """Probe subscriber producing a Perfetto-loadable Chrome trace."""

    def __init__(self) -> None:
        self._events: List[Dict[str, object]] = []
        #: core -> cycle of the currently open transaction slice.
        self._open_tx: Dict[int, int] = {}
        #: core -> cycle of the currently open fallback-serialized slice.
        self._open_fb: Dict[int, int] = {}
        #: event kind -> count of events with no rendering rule.
        self._dropped: Dict[str, int] = {}
        self._cores_seen: set = set()
        self._directory_seen = False
        self._last_cycle = 0

    # ------------------------------------------------------------------
    def _add(
        self,
        *,
        name: str,
        ph: str,
        ts: int,
        tid: int,
        args: Optional[Dict[str, object]] = None,
        cat: str = "sim",
    ) -> None:
        entry: Dict[str, object] = {
            "name": name,
            "ph": ph,
            "ts": ts,
            "pid": TRACE_PID,
            "tid": tid,
            "cat": cat,
        }
        if ph == "i":
            entry["s"] = "t"  # thread-scoped instant
        if args:
            entry["args"] = args
        self._events.append(entry)

    @property
    def events_recorded(self) -> int:
        """Trace entries buffered so far (excluding metadata)."""
        return len(self._events)

    @property
    def dropped_kinds(self) -> Dict[str, int]:
        """Event kinds seen but not rendered, with occurrence counts."""
        return dict(self._dropped)

    def _track(self, core: int) -> int:
        if core == _DIRECTORY:
            self._directory_seen = True
            return DIRECTORY_TRACK
        self._cores_seen.add(core)
        return core

    def _instant(self, name: str, cycle: int, core: int, **args) -> None:
        self._add(name=name, ph="i", ts=cycle, tid=self._track(core), args=args or None)

    # ------------------------------------------------------------------
    def __call__(self, ev: ProbeEvent) -> None:
        self._last_cycle = max(self._last_cycle, ev.cycle)
        if isinstance(ev, TxBegin):
            tid = self._track(ev.core)
            # A begin while a slice is open (shouldn't happen) closes it.
            if ev.core in self._open_tx:
                self._add(name="tx", ph="E", ts=ev.cycle, tid=tid)
            self._open_tx[ev.core] = ev.cycle
            self._add(
                name="tx", ph="B", ts=ev.cycle, tid=tid,
                args={"epoch": ev.epoch, "power": ev.power},
            )
        elif isinstance(ev, Commit):
            self._finish_tx(ev.core, ev.cycle, "commit", power=ev.power)
        elif isinstance(ev, Abort):
            self._finish_tx(ev.core, ev.cycle, "abort", reason=ev.reason)
            if ev.reason == "capacity":
                self._instant("capacity-abort", ev.cycle, ev.core)
        elif isinstance(ev, SpecForward):
            self._instant(
                "forward", ev.cycle, ev.producer,
                consumer=ev.consumer, block=hex(ev.block), pic=ev.pic,
            )
        elif isinstance(ev, ValidationStart):
            self._instant("validate", ev.cycle, ev.core, block=hex(ev.block))
        elif isinstance(ev, ValidationOk):
            self._instant("validate-ok", ev.cycle, ev.core, block=hex(ev.block))
        elif isinstance(ev, ValidationMismatch):
            self._instant("validate-mismatch", ev.cycle, ev.core, block=hex(ev.block))
        elif isinstance(ev, VsbInsert):
            self._instant(
                "vsb-insert", ev.cycle, ev.core,
                block=hex(ev.block), occupancy=ev.occupancy,
            )
        elif isinstance(ev, VsbDrain):
            self._instant(
                "vsb-drain", ev.cycle, ev.core,
                block=hex(ev.block), occupancy=ev.occupancy,
            )
        elif isinstance(ev, PicUpdate):
            self._instant("pic", ev.cycle, ev.core, value=ev.value, source=ev.source)
        elif isinstance(ev, FallbackAcquire):
            tid = self._track(ev.core)
            # An acquire while a fallback slice is open closes it first.
            if ev.core in self._open_fb:
                self._add(
                    name="fallback", ph="E", ts=ev.cycle, tid=tid,
                    args={"outcome": "reacquired"},
                )
            self._open_fb[ev.core] = ev.cycle
            self._add(name="fallback", ph="B", ts=ev.cycle, tid=tid)
        elif isinstance(ev, FallbackCommit):
            tid = self._track(ev.core)
            if ev.core in self._open_fb:
                del self._open_fb[ev.core]
                self._add(
                    name="fallback", ph="E", ts=ev.cycle, tid=tid,
                    args={"outcome": "commit", "label": ev.label},
                )
            else:
                # Commit without a recorded acquire: mark it instead.
                self._instant(
                    "fallback-commit", ev.cycle, ev.core, label=ev.label
                )
        elif isinstance(ev, PowerElevate):
            self._instant("power-token", ev.cycle, ev.core)
        elif isinstance(ev, MsgSent):
            self._instant(
                f"msg:{ev.msg_kind}", ev.cycle, ev.src,
                dst=ev.dst, block=hex(ev.block),
            )
        elif isinstance(ev, DirForward):
            self._instant(
                "dir-forward", ev.cycle, _DIRECTORY,
                block=hex(ev.block), owner=ev.owner, requester=ev.requester,
            )
        elif isinstance(ev, DirInvRound):
            self._instant(
                "dir-inv-round", ev.cycle, _DIRECTORY,
                block=hex(ev.block), sharers=ev.sharers,
            )
        else:
            # Unknown kind (e.g. an event added after this exporter):
            # count it so finalize() can warn instead of dropping silently.
            self._dropped[ev.kind] = self._dropped.get(ev.kind, 0) + 1

    def _finish_tx(self, core: int, cycle: int, outcome: str, **args) -> None:
        tid = self._track(core)
        args["outcome"] = outcome
        if core in self._open_tx:
            del self._open_tx[core]
            self._add(name="tx", ph="E", ts=cycle, tid=tid, args=args)
        else:
            # Commit/abort without a recorded begin (e.g. the attempt died
            # during lock subscription): mark it as an instant.
            self._instant(outcome, cycle, core, **args)

    # ------------------------------------------------------------------
    def finalize(self) -> Dict[str, object]:
        """Close dangling slices and return the trace_event payload."""
        # Per core, later-started slices must close first so B/E pairs
        # stay properly nested (a tx opened inside a fallback section
        # ends before the fallback slice does, and vice versa).
        dangling = [
            (core, start, "tx") for core, start in self._open_tx.items()
        ] + [
            (core, start, "fallback")
            for core, start in self._open_fb.items()
        ]
        for core, _start, name in sorted(
            dangling, key=lambda item: (item[0], -item[1])
        ):
            self._add(
                name=name, ph="E", ts=self._last_cycle,
                tid=self._track(core), args={"outcome": "unfinished"},
            )
        self._open_tx.clear()
        self._open_fb.clear()
        if self._dropped:
            logging.getLogger(__name__).warning(
                "chrome trace export dropped %d event(s) with no "
                "rendering rule: %s",
                sum(self._dropped.values()),
                ", ".join(
                    f"{kind} x{count}"
                    for kind, count in sorted(self._dropped.items())
                ),
            )
        meta: List[Dict[str, object]] = [
            {
                "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
                "args": {"name": "repro simulator"},
            }
        ]
        for core in sorted(self._cores_seen):
            meta.append(
                {
                    "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                    "tid": core, "args": {"name": f"core {core}"},
                }
            )
        if self._directory_seen:
            meta.append(
                {
                    "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                    "tid": DIRECTORY_TRACK, "args": {"name": "directory"},
                }
            )
        return {
            "traceEvents": meta + self._events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "1 trace us = 1 simulated cycle"},
        }

    def write(self, destination: Union[str, IO[str]]) -> None:
        payload = self.finalize()
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, destination)
