"""Observability: the per-simulator instrumentation bus and its subscribers.

``repro.obs`` is the cross-cutting tracing/metrics layer.  The machine
components (:class:`~repro.sim.core.Core`,
:class:`~repro.net.network.Crossbar`, :class:`~repro.mem.directory.Directory`,
the L1/validation controllers, and the fallback/power paths) emit typed,
frozen :mod:`~repro.obs.events` into a per-simulator
:class:`~repro.obs.probe.Probe`; emission is zero-cost while no
subscriber is attached.

Shipped subscribers:

* :class:`~repro.obs.tracer.Tracer` — filtered in-memory event log
  (also re-exported from :mod:`repro.sim.tracing` for compatibility);
* :class:`~repro.obs.interval.IntervalMetrics` — fixed-window time
  series, serialized into :class:`~repro.sim.results.SimulationResult`;
* :class:`~repro.obs.trace_export.JsonlTraceWriter` /
  :class:`~repro.obs.trace_export.ChromeTraceExporter` — on-disk traces
  (JSONL, Perfetto-loadable Chrome ``trace_event``);
* :class:`~repro.obs.chains.ChainInspector` — forwarding-chain
  reconstruction for post-mortem debugging;
* :class:`~repro.obs.ledger.TxLedger` — per-attempt lifecycle ledger,
  the substrate for causal abort attribution
  (:func:`~repro.obs.attribution.attribute_aborts`) and wasted-work
  accounting (:class:`~repro.obs.ledger.WastedWork`) behind
  ``repro inspect``.

One level up, :mod:`~repro.obs.telemetry` watches the *fleet* instead of
one simulator: run-level spans for every ``run_many`` batch, per-run
resource accounting, a :class:`~repro.obs.telemetry.MetricsRegistry`
(JSON / Prometheus snapshots), and the ``--live`` terminal dashboard.
Same contract: zero cost while no session is installed.

See ``docs/OBSERVABILITY.md`` for the workflow.
"""

from .attribution import (
    CAUSE_KINDS,
    AttributedAbort,
    AttributionReport,
    Cascade,
    attribute_aborts,
)
from .chains import Chain, ChainEdge, ChainInspector, link_chains
from .events import (
    EVENT_TYPES,
    Abort,
    Commit,
    DirForward,
    DirInvRound,
    FallbackAcquire,
    FallbackCommit,
    MsgSent,
    PicUpdate,
    PowerElevate,
    ProbeEvent,
    SpecForward,
    TxBegin,
    ValidationMismatch,
    ValidationOk,
    ValidationStart,
    VsbDrain,
    VsbInsert,
)
from .interval import DEFAULT_WINDOW, IntervalMetrics, timeline_rows
from .ledger import (
    WASTED_WORK_BUCKETS,
    FallbackSpan,
    ForwardEdge,
    TxAttempt,
    TxLedger,
    WastedWork,
)
from .probe import Probe
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    LiveDashboard,
    MetricError,
    MetricsRegistry,
    Span,
    TelemetrySession,
    current_session,
    install,
    session_scope,
    uninstall,
)
from .trace_export import ChromeTraceExporter, JsonlTraceWriter
from .tracer import TraceEvent, Tracer

__all__ = [
    "Abort",
    "AttributedAbort",
    "AttributionReport",
    "CAUSE_KINDS",
    "Cascade",
    "Chain",
    "ChainEdge",
    "ChainInspector",
    "ChromeTraceExporter",
    "Commit",
    "Counter",
    "DEFAULT_WINDOW",
    "DirForward",
    "DirInvRound",
    "EVENT_TYPES",
    "FallbackAcquire",
    "FallbackCommit",
    "FallbackSpan",
    "ForwardEdge",
    "Gauge",
    "Histogram",
    "IntervalMetrics",
    "JsonlTraceWriter",
    "LiveDashboard",
    "MetricError",
    "MetricsRegistry",
    "MsgSent",
    "PicUpdate",
    "PowerElevate",
    "Probe",
    "ProbeEvent",
    "Span",
    "SpecForward",
    "TelemetrySession",
    "TraceEvent",
    "Tracer",
    "TxAttempt",
    "TxBegin",
    "TxLedger",
    "ValidationMismatch",
    "ValidationOk",
    "ValidationStart",
    "VsbDrain",
    "VsbInsert",
    "WASTED_WORK_BUCKETS",
    "WastedWork",
    "attribute_aborts",
    "current_session",
    "install",
    "link_chains",
    "session_scope",
    "timeline_rows",
    "uninstall",
]
