"""Typed probe events emitted on the instrumentation bus.

Every event is a small frozen dataclass stamped with the simulated cycle
at which it happened.  The taxonomy mirrors the moments a CHATS debugging
session cares about: coherence traffic, speculative forwards, validation
outcomes, PiC movement, VSB pressure, commits/aborts, and the two escape
hatches (fallback lock, power token).

Events are *data*, not behaviour: each carries primitive fields only, so
subscribers can serialize them (JSONL, Chrome ``trace_event``) without
touching live simulator state.  ``kind`` is a stable string used by
filtering subscribers and the trace writers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional


@dataclass(frozen=True, slots=True)
class ProbeEvent:
    """Base class: one observed moment of a simulation."""

    kind: ClassVar[str] = "event"

    cycle: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; ``None`` fields are omitted."""
        out: Dict[str, object] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = value
        return out


@dataclass(frozen=True, slots=True)
class MsgSent(ProbeEvent):
    """A message was injected into the interconnect."""

    kind: ClassVar[str] = "message"

    src: int = 0  # -1 (DIRECTORY) for directory-sourced messages
    dst: int = 0
    msg_kind: str = ""
    block: int = 0
    pic: Optional[int] = None
    power: bool = False
    is_validation: bool = False
    non_transactional: bool = False
    action: Optional[str] = None


@dataclass(frozen=True, slots=True)
class SpecForward(ProbeEvent):
    """A holder answered a conflicting request with speculative data."""

    kind: ClassVar[str] = "forward"

    producer: int = 0
    consumer: int = 0
    block: int = 0
    pic: Optional[int] = None  # PiC stamped on the SpecResp (None = power)


@dataclass(frozen=True, slots=True)
class TxBegin(ProbeEvent):
    """A hardware transaction attempt started running user code."""

    kind: ClassVar[str] = "tx-begin"

    core: int = 0
    epoch: int = 0
    power: bool = False


@dataclass(frozen=True, slots=True)
class ValidationStart(ProbeEvent):
    """The validation controller re-requested a VSB block exclusively."""

    kind: ClassVar[str] = "validation-start"

    core: int = 0
    block: int = 0
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class ValidationOk(ProbeEvent):
    """A speculated block was validated (genuine data, matching value)."""

    kind: ClassVar[str] = "validation-ok"

    core: int = 0
    block: int = 0
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class ValidationMismatch(ProbeEvent):
    """A validation response carried a different value: consumer aborts."""

    kind: ClassVar[str] = "validation-mismatch"

    core: int = 0
    block: int = 0
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class PicUpdate(ProbeEvent):
    """A core's Position-in-Chain register changed value."""

    kind: ClassVar[str] = "pic"

    core: int = 0
    value: Optional[int] = None
    source: str = ""  # "forward" (holder re-anchor) | "adopt" (SpecResp)


@dataclass(frozen=True, slots=True)
class VsbInsert(ProbeEvent):
    """A speculatively received block entered the VSB."""

    kind: ClassVar[str] = "vsb-insert"

    core: int = 0
    block: int = 0
    occupancy: int = 0  # occupancy *after* the insert


@dataclass(frozen=True, slots=True)
class VsbDrain(ProbeEvent):
    """A VSB entry retired; ``occupancy`` 0 means the buffer drained."""

    kind: ClassVar[str] = "vsb-drain"

    core: int = 0
    block: int = 0
    occupancy: int = 0  # occupancy *after* the retire


@dataclass(frozen=True, slots=True)
class Commit(ProbeEvent):
    """A hardware transaction committed."""

    kind: ClassVar[str] = "commit"

    core: int = 0
    epoch: int = 0
    power: bool = False
    label: str = ""


@dataclass(frozen=True, slots=True)
class Abort(ProbeEvent):
    """A hardware transaction attempt rolled back.

    ``src``/``block`` carry the proximate cause when the abort site knows
    it: the requester whose probe won a conflict, the producer whose
    speculative value failed validation, or the block whose installation
    overflowed the cache.  Both stay ``None`` for aborts with no external
    trigger (explicit aborts, directory races) — the forensics layer tags
    those ``unattributed`` unless the event stream lets it infer more.
    """

    kind: ClassVar[str] = "abort"

    core: int = 0
    epoch: int = 0
    reason: str = ""
    label: str = ""
    src: Optional[int] = None  # core whose action triggered the abort
    block: Optional[int] = None  # block the triggering action touched


@dataclass(frozen=True, slots=True)
class FallbackAcquire(ProbeEvent):
    """A core acquired the global fallback lock (serialized execution)."""

    kind: ClassVar[str] = "fallback"

    core: int = 0


@dataclass(frozen=True, slots=True)
class FallbackCommit(ProbeEvent):
    """A fallback-path execution finished (the serialized section ends).

    Paired with the preceding :class:`FallbackAcquire` of the same core;
    the span between the two is the run's fallback-serialized time."""

    kind: ClassVar[str] = "fallback-commit"

    core: int = 0
    label: str = ""


@dataclass(frozen=True, slots=True)
class PowerElevate(ProbeEvent):
    """A core was granted the power token (elevated priority)."""

    kind: ClassVar[str] = "power"

    core: int = 0


@dataclass(frozen=True, slots=True)
class DirForward(ProbeEvent):
    """The directory forwarded a request to the current owner."""

    kind: ClassVar[str] = "dir-forward"

    block: int = 0
    owner: int = 0
    requester: int = 0
    exclusive: bool = False


@dataclass(frozen=True, slots=True)
class DirInvRound(ProbeEvent):
    """The directory started an invalidation round for a GETX."""

    kind: ClassVar[str] = "dir-inv"

    block: int = 0
    requester: int = 0
    sharers: int = 0


#: Every concrete event type, keyed by its stable kind string.
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        MsgSent,
        SpecForward,
        TxBegin,
        ValidationStart,
        ValidationOk,
        ValidationMismatch,
        PicUpdate,
        VsbInsert,
        VsbDrain,
        Commit,
        Abort,
        FallbackAcquire,
        FallbackCommit,
        PowerElevate,
        DirForward,
        DirInvRound,
    )
}
