"""Fleet telemetry: run-level spans, resource metrics, and a live view.

Where the rest of :mod:`repro.obs` watches *one simulation from the
inside* (probe events at cycle granularity), this module watches *the
fleet from the outside*: every :func:`~repro.experiments.runner.run_many`
batch — the unit the experiment service and the ``repro explore``
Pareto sweep will drive by the thousands — becomes a tree of structured
spans with wall-clock timestamps, per-run resource accounting, and
aggregate metrics.

Three pieces:

* :class:`TelemetrySession` — the span collector.  Spans (``run_many``,
  ``submit``, ``cache-probe``, ``execute``, ``retry``, ``serialize``)
  form a tree; the session serializes them as JSONL
  (``repro-telemetry/1``) and as a Chrome ``trace_event`` file so a
  whole sweep opens on one Perfetto timeline — one track per worker
  process plus a scheduler track — right next to the per-cycle
  simulation traces from :mod:`~repro.obs.trace_export`.

* :class:`MetricsRegistry` — labeled counters/gauges/histograms
  aggregating across runs, exportable as a JSON snapshot or Prometheus
  text exposition.  This is the seam a future ``repro serve`` exposes.

* :class:`LiveDashboard` — a terminal view (throughput, ETA, cache hit
  rate, per-worker lane status) fed by the span stream; behind the
  ``--live`` CLI flag.

The layer follows the :class:`~repro.obs.probe.Probe` precedent: it is
**zero-cost when no session is installed**.  The runner asks
:func:`for_run_many` for a batch recorder; with no session installed it
gets the shared :data:`NULL_BATCH` whose methods are all no-ops, and
nothing in the simulation engine ever sees telemetry at all — the hot
loops are untouched (asserted by ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, Iterator, List, Optional, Tuple

#: JSONL schema tag written on the session header line.
SCHEMA = "repro-telemetry/1"

#: Schema tag of a persisted (enriched) run manifest.
MANIFEST_SCHEMA = "repro-manifest/1"

#: Schema tag of a metrics snapshot.
METRICS_SCHEMA = "repro-metrics/1"

#: The span vocabulary.  ``run_many`` is the root of one batch; every
#: other span nests under it (``execute``/``retry`` under ``submit``).
SPAN_NAMES = (
    "run_many",
    "submit",
    "cache-probe",
    "execute",
    "retry",
    "serialize",
)

#: pid used for every track of the fleet Chrome trace.
TRACE_PID = 2

#: tid of the scheduler track (worker lanes use 1..N).
SCHEDULER_TRACK = 0


# ----------------------------------------------------------------------
# Spans.
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One timed interval of a batch, in unix seconds.

    ``lane`` is ``None`` for scheduler-side spans and a 1-based worker
    lane index (one lane per worker process) for ``execute`` spans.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    lane: Optional[int] = None
    status: str = "open"  # "open" | "ok" | "error"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_unix": round(self.start, 6),
            "end_unix": round(self.end, 6) if self.end is not None else None,
            "seconds": round(self.seconds, 6),
            "status": self.status,
            "attrs": self.attrs,
        }
        if self.lane is not None:
            out["lane"] = self.lane
        return out


class TelemetrySession:
    """Collects the span tree and metrics of one CLI invocation.

    One session can span several ``run_many`` batches (``repro report``
    prefetches a union sweep and then re-enters the runner per figure);
    each batch contributes its own ``run_many`` root span.
    """

    def __init__(self, *, registry: Optional["MetricsRegistry"] = None):
        self.started_unix = time.time()
        self.run_id = f"{int(self.started_unix * 1e6):x}-{os.getpid():x}"
        self.spans: List[Span] = []
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._next_id = 1
        self._lanes: Dict[int, int] = {}  # worker pid -> lane index
        self._listeners: Tuple = ()
        self._manifests = 0

    # -- span lifecycle -------------------------------------------------
    def begin(
        self,
        name: str,
        *,
        parent: Optional[Span] = None,
        lane: Optional[int] = None,
        **attrs,
    ) -> Span:
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            start=time.time(),
            lane=lane,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        self._notify("begin", span)
        return span

    def finish(self, span: Span, *, status: str = "ok", **attrs) -> Span:
        span.end = time.time()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._notify("finish", span)
        return span

    def add(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: Optional[Span] = None,
        lane: Optional[int] = None,
        status: str = "ok",
        **attrs,
    ) -> Span:
        """Record a span retroactively (e.g. a worker-measured execution
        whose timestamps travelled back with the result)."""
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            start=start,
            end=max(start, end),
            lane=lane,
            status=status,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        self._notify("add", span)
        return span

    @contextmanager
    def span(self, name: str, *, parent: Optional[Span] = None, **attrs):
        sp = self.begin(name, parent=parent, **attrs)
        try:
            yield sp
        except BaseException:
            self.finish(sp, status="error")
            raise
        self.finish(sp)

    @property
    def span_count(self) -> int:
        return len(self.spans)

    def lane_for(self, pid: int) -> int:
        """Stable 1-based lane index for a worker process id."""
        lane = self._lanes.get(pid)
        if lane is None:
            lane = len(self._lanes) + 1
            self._lanes[pid] = lane
        return lane

    @property
    def lanes(self) -> Dict[int, int]:
        """Worker pid -> lane index mapping seen so far."""
        return dict(self._lanes)

    # -- listeners (the live dashboard) ---------------------------------
    def add_listener(self, fn) -> None:
        if fn not in self._listeners:
            self._listeners = self._listeners + (fn,)

    def remove_listener(self, fn) -> None:
        self._listeners = tuple(f for f in self._listeners if f != fn)

    def _notify(self, phase: str, span: Span) -> None:
        for fn in self._listeners:
            fn(phase, span)

    # -- manifest persistence -------------------------------------------
    def persist_manifest(
        self, manifest_dict: Dict[str, object], store
    ) -> str:
        """Persist one batch's enriched manifest into the result store.

        The entry name carries a content hash instead of the old
        per-session sequence number, so concurrent sessions (or two
        batches racing inside one session) can never overwrite each
        other's manifest — identical payloads collapse to one entry,
        distinct payloads always get distinct keys.  The sequence
        number still appears *inside* the payload (and therefore in the
        hash), ordering a session's manifests on read-back.  Returns
        the store key."""
        self._manifests += 1
        payload = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "seq": self._manifests,
            "created_unix": int(time.time()),
            **manifest_dict,
        }
        body = json.dumps(payload, sort_keys=True)
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]
        key = f"manifest/MANIFEST_{self.run_id}_{digest}"
        store.put(key, body.encode("utf-8"))
        return key

    # -- export ----------------------------------------------------------
    def jsonl_lines(self) -> Iterator[str]:
        header = {
            "kind": "session",
            "schema": SCHEMA,
            "run_id": self.run_id,
            "started_unix": round(self.started_unix, 6),
            "pid": os.getpid(),
        }
        yield json.dumps(header, sort_keys=True)
        for span in self.spans:
            yield json.dumps(span.to_dict(), sort_keys=True)

    def write_jsonl(self, destination) -> int:
        """Write the span log; returns the number of span lines."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as fh:
                return self.write_jsonl(fh)
        count = 0
        for line in self.jsonl_lines():
            destination.write(line)
            destination.write("\n")
            count += 1
        return count - 1  # header line is not a span

    def to_chrome(self) -> Dict[str, object]:
        """Chrome ``trace_event`` payload: scheduler track 0 + one track
        per worker lane, timestamps in microseconds since session start.

        Scheduler-side spans that legitimately overlap (``submit`` and
        ``retry`` windows of concurrently in-flight configs) are emitted
        as async ``b``/``e`` pairs; everything else is a complete ``X``
        slice.
        """
        t0 = self.started_unix
        now = time.time()

        def us(t: float) -> int:
            return max(0, int(round((t - t0) * 1e6)))

        entries: List[Dict[str, object]] = []
        for span in self.spans:
            args = dict(span.attrs)
            args["status"] = span.status
            start = us(span.start)
            end = us(span.end if span.end is not None else now)
            tid = SCHEDULER_TRACK if span.lane is None else span.lane
            if span.name in ("submit", "retry"):
                common = {
                    "name": span.name,
                    "cat": "sched",
                    "id": span.span_id,
                    "pid": TRACE_PID,
                    "tid": tid,
                }
                entries.append({**common, "ph": "b", "ts": start, "args": args})
                entries.append({**common, "ph": "e", "ts": end})
            else:
                entries.append(
                    {
                        "name": span.name,
                        "cat": "fleet",
                        "ph": "X",
                        "ts": start,
                        "dur": max(0, end - start),
                        "pid": TRACE_PID,
                        "tid": tid,
                        "args": args,
                    }
                )
        # Parents sort before children at equal ts (longer dur first).
        entries.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
        meta: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": 0,
                "args": {"name": "repro fleet"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": SCHEDULER_TRACK,
                "args": {"name": "scheduler"},
            },
        ]
        for pid, lane in sorted(self._lanes.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": lane,
                    "args": {"name": f"worker {pid}"},
                }
            )
        return {
            "traceEvents": meta + entries,
            "displayTimeUnit": "ms",
            "otherData": {
                "run_id": self.run_id,
                "time_unit": "1 trace us = 1 wall-clock us since session start",
            },
        }

    def write_chrome(self, destination) -> None:
        payload = self.to_chrome()
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, destination)

    def summary(self) -> str:
        names: Dict[str, int] = {}
        for span in self.spans:
            names[span.name] = names.get(span.name, 0) + 1
        parts = ", ".join(f"{n}={c}" for n, c in sorted(names.items()))
        return f"{len(self.spans)} spans ({parts}) run_id={self.run_id}"


# ----------------------------------------------------------------------
# Module-level session installation (the Probe-style on/off switch).
# ----------------------------------------------------------------------
_SESSION: Optional[TelemetrySession] = None


def current_session() -> Optional[TelemetrySession]:
    """The installed session, or ``None`` (telemetry off, zero cost)."""
    return _SESSION


def install(session: TelemetrySession) -> TelemetrySession:
    global _SESSION
    if _SESSION is not None:
        raise RuntimeError("a telemetry session is already installed")
    _SESSION = session
    return session


def uninstall(session: Optional[TelemetrySession] = None) -> None:
    """Remove the installed session (idempotent; ``session`` asserts
    which one the caller thinks is active)."""
    global _SESSION
    if session is not None and _SESSION is not session:
        return
    _SESSION = None


@contextmanager
def session_scope(**kwargs) -> Iterator[TelemetrySession]:
    session = install(TelemetrySession(**kwargs))
    try:
        yield session
    finally:
        uninstall(session)


# ----------------------------------------------------------------------
# The runner-facing batch recorder.
# ----------------------------------------------------------------------
class NullBatch:
    """No-op batch recorder handed out while telemetry is off.

    A shared singleton: the runner pays one module-global read and a few
    no-op method calls per *configuration* (never per engine event)."""

    __slots__ = ()

    def open(self, *, configs: int, unique: int, workers: int,
             backend: str = "python") -> None:
        pass

    def probe(self, cfg, key: str, *, outcome: str, layer: str,
              seconds: float, store: Optional[str] = None) -> None:
        pass

    def submitted(self, cfg, key: str) -> None:
        pass

    def finished(self, cfg, key: str, resources, *, retried: bool = False
                 ) -> None:
        pass

    def failed(self, cfg, key: str, error: BaseException) -> None:
        pass

    def stored(self, cfg, key: str, seconds: float) -> None:
        pass

    def close(self, manifest_dict, store=None) -> None:
        pass


NULL_BATCH = NullBatch()


class RunBatch(NullBatch):
    """Span bookkeeping for one live ``run_many`` batch."""

    __slots__ = ("_session", "_root", "_submits", "_retries")

    def __init__(self, session: TelemetrySession):
        self._session = session
        self._root: Optional[Span] = None
        self._submits: Dict[str, Span] = {}
        self._retries: Dict[str, Span] = {}

    def open(self, *, configs: int, unique: int, workers: int,
             backend: str = "python") -> None:
        self._root = self._session.begin(
            "run_many",
            configs=configs,
            unique=unique,
            workers=workers,
            backend=backend,
        )
        m = self._session.metrics
        m.counter(
            "repro_batches_total", "run_many batches started"
        ).inc()
        m.gauge(
            "repro_batch_configs", "configurations in the latest batch"
        ).set(unique)

    def probe(self, cfg, key: str, *, outcome: str, layer: str,
              seconds: float, store: Optional[str] = None) -> None:
        now = time.time()
        attrs: Dict[str, object] = {
            "config": cfg.describe(),
            "key": key[:12],
            "outcome": outcome,
            "layer": layer,
        }
        if store is not None:
            # Which store backend answered the disk layer (legacy |
            # sharded) — attribution for probe-latency regressions.
            attrs["store"] = store
        self._session.add(
            "cache-probe",
            now - seconds,
            now,
            parent=self._root,
            **attrs,
        )
        m = self._session.metrics
        m.counter(
            "repro_cache_probes_total",
            "result-cache probes by layer and outcome",
            labels=("layer", "outcome"),
        ).inc(layer=layer, outcome=outcome)
        if outcome == "hit":
            m.counter(
                "repro_runs_total",
                "configurations resolved, by source",
                labels=("source",),
            ).inc(source="cached")

    def submitted(self, cfg, key: str) -> None:
        self._submits[key] = self._session.begin(
            "submit",
            parent=self._root,
            config=cfg.describe(),
            key=key[:12],
        )

    def finished(self, cfg, key: str, resources, *, retried: bool = False
                 ) -> None:
        submit = self._submits.get(key)
        parent = self._retries.get(key, submit) if retried else submit
        m = self._session.metrics
        if resources:
            lane = self._session.lane_for(int(resources.get("pid", 0)))
            start = float(resources.get("started_unix", time.time()))
            wall = float(resources.get("wall_seconds", 0.0))
            self._session.add(
                "execute",
                start,
                start + wall,
                parent=parent,
                lane=lane,
                config=cfg.describe(),
                **{
                    k: v
                    for k, v in resources.items()
                    if k not in ("started_unix",) and v is not None
                },
            )
            m.histogram(
                "repro_run_wall_seconds", "per-run wall time in the worker"
            ).observe(wall)
            m.histogram(
                "repro_run_cpu_seconds", "per-run CPU (process) time"
            ).observe(float(resources.get("cpu_seconds", 0.0)))
            events = int(resources.get("events", 0))
            m.counter(
                "repro_events_simulated_total", "engine events simulated"
            ).inc(events)
            rss = resources.get("peak_rss_kb")
            if rss is not None:
                m.gauge(
                    "repro_worker_peak_rss_kb",
                    "peak resident set per worker",
                    labels=("pid",),
                ).set(int(rss), pid=str(resources.get("pid", 0)))
        m.counter(
            "repro_runs_total",
            "configurations resolved, by source",
            labels=("source",),
        ).inc(source="run")
        retry = self._retries.pop(key, None)
        if retry is not None:
            self._session.finish(retry)
        if submit is not None:
            self._session.finish(submit)

    def failed(self, cfg, key: str, error: BaseException) -> None:
        submit = self._submits.get(key)
        parent = self._retries.get(key, submit)
        now = time.time()
        self._session.add(
            "execute",
            now,
            now,
            parent=parent,
            status="error",
            config=cfg.describe(),
            error=f"{type(error).__name__}: {error}",
        )
        if key in self._retries:
            # Second failure: the batch is about to raise.
            self._session.finish(self._retries.pop(key), status="error")
            if submit is not None:
                self._session.finish(submit, status="error")
            return
        self._retries[key] = self._session.begin(
            "retry", parent=submit, config=cfg.describe(), key=key[:12]
        )
        self._session.metrics.counter(
            "repro_retries_total", "configs retried after a failed attempt"
        ).inc()

    def stored(self, cfg, key: str, seconds: float) -> None:
        now = time.time()
        self._session.add(
            "serialize",
            now - seconds,
            now,
            parent=self._submits.get(key, self._root),
            key=key[:12],
        )

    def close(self, manifest_dict, store=None) -> None:
        if self._root is not None:
            self._session.finish(
                self._root,
                cached=manifest_dict.get("cached"),
                run=manifest_dict.get("run"),
            )
        if store is not None:
            try:
                self._session.persist_manifest(manifest_dict, store)
            except OSError:
                pass  # read-only cache dir: telemetry stays in memory


def for_run_many() -> NullBatch:
    """Batch recorder for the installed session — or the shared no-op."""
    session = _SESSION
    if session is None:
        return NULL_BATCH
    return RunBatch(session)


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------
class MetricError(ValueError):
    """Metric re-registered with a different kind or label set."""


#: Default histogram buckets (seconds): spans micro-runs to long sweeps.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, labels: Tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)

    def _key(self, label_values: Dict[str, object]) -> Tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise MetricError(
                f"{self.name}: expected labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[label]) for label in self.labels)

    def _series(self):  # -> Iterable[Tuple[Tuple[str, ...], object]]
        raise NotImplementedError


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name, help_text="", labels=()):
        super().__init__(name, help_text, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0)

    def _series(self):
        return self._values.items()


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name, help_text="", labels=()):
        super().__init__(name, help_text, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[self._key(labels)] = value

    def set_max(self, value: float, **labels) -> None:
        key = self._key(labels)
        if key not in self._values or value > self._values[key]:
            self._values[key] = value

    def value(self, **labels) -> Optional[float]:
        return self._values.get(self._key(labels))

    def _series(self):
        return self._values.items()


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name, help_text="", labels=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labels)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricError(f"{name}: a histogram needs buckets")
        # key -> [per-bucket counts..., +Inf count, sum, count]
        self._values: Dict[Tuple[str, ...], List[float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        cells = self._values.get(key)
        if cells is None:
            cells = self._values[key] = [0] * (len(self.buckets) + 3)
        idx = bisect.bisect_left(self.buckets, value)
        cells[idx] += 1  # idx == len(buckets) is the +Inf bucket
        cells[-2] += value
        cells[-1] += 1

    def count(self, **labels) -> int:
        cells = self._values.get(self._key(labels))
        return int(cells[-1]) if cells else 0

    def sum(self, **labels) -> float:
        cells = self._values.get(self._key(labels))
        return cells[-2] if cells else 0.0

    def _series(self):
        for key, cells in self._values.items():
            cumulative = []
            running = 0
            for i in range(len(self.buckets) + 1):
                running += cells[i]
                cumulative.append(running)
            yield key, {
                "buckets": cumulative,
                "sum": cells[-2],
                "count": int(cells[-1]),
            }


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Re-requesting a name with the same kind and labels returns the
    existing metric (so call sites need no shared setup); a conflicting
    re-registration raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help_text, labels, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help_text, tuple(labels), **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls) or metric.labels != tuple(labels):
            raise MetricError(
                f"metric {name!r} already registered as {metric.kind} "
                f"with labels {metric.labels}"
            )
        return metric

    def counter(self, name, help_text="", labels=()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name, help_text="", labels=()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self, name, help_text="", labels=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump of every metric and series."""
        metrics: Dict[str, object] = {}
        for metric in sorted(self._metrics.values(), key=lambda m: m.name):
            series = []
            for key, value in metric._series():
                series.append(
                    {
                        "labels": dict(zip(metric.labels, key)),
                        "value": value,
                    }
                )
            entry: Dict[str, object] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.labels),
                "series": series,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            metrics[metric.name] = entry
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""

        def fmt_labels(keys: Tuple[str, ...], names: Tuple[str, ...],
                       extra: str = "") -> str:
            pairs = [f'{n}="{_escape(v)}"' for n, v in zip(names, keys)]
            if extra:
                pairs.append(extra)
            return "{" + ",".join(pairs) + "}" if pairs else ""

        def _escape(value: str) -> str:
            return (
                value.replace("\\", r"\\").replace('"', r"\"")
                .replace("\n", r"\n")
            )

        def fmt_value(v: float) -> str:
            if isinstance(v, float) and math.isinf(v):
                return "+Inf" if v > 0 else "-Inf"
            if float(v) == int(v):
                return str(int(v))
            return repr(float(v))

        lines: List[str] = []
        for metric in sorted(self._metrics.values(), key=lambda m: m.name):
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                bounds = [fmt_value(b) for b in metric.buckets] + ["+Inf"]
                for key, cells in metric._series():
                    for bound, cum in zip(bounds, cells["buckets"]):
                        le = 'le="%s"' % bound
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{fmt_labels(key, metric.labels, le)}"
                            f" {fmt_value(cum)}"
                        )
                    lines.append(
                        f"{metric.name}_sum{fmt_labels(key, metric.labels)} "
                        f"{fmt_value(cells['sum'])}"
                    )
                    lines.append(
                        f"{metric.name}_count{fmt_labels(key, metric.labels)} "
                        f"{fmt_value(cells['count'])}"
                    )
            else:
                for key, value in metric._series():
                    lines.append(
                        f"{metric.name}{fmt_labels(key, metric.labels)} "
                        f"{fmt_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_snapshot(self, path) -> None:
        """Write the registry to ``path``: Prometheus text for ``.prom``
        (and ``.txt``) suffixes, a JSON snapshot otherwise."""
        path = Path(path)
        if path.suffix in (".prom", ".txt"):
            path.write_text(self.to_prometheus(), "utf-8")
        else:
            path.write_text(
                json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
                "utf-8",
            )


# ----------------------------------------------------------------------
# Live terminal dashboard.
# ----------------------------------------------------------------------
class LiveDashboard:
    """Terminal sweep view fed by the telemetry span stream.

    Shows batch progress, throughput, ETA, the cache hit rate, and one
    status line per worker lane.  Repaints in place on a TTY (ANSI
    cursor movement); on a non-TTY stream only the final summary frame
    is written, so piped/CI output stays readable.
    """

    def __init__(
        self,
        session: TelemetrySession,
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.1,
    ):
        self._session = session
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._t0 = time.perf_counter()
        self._last_draw = 0.0
        self._lines_drawn = 0
        self._done = 0
        self._total = 0
        self._cached = 0
        self._run = 0
        self._retries = 0
        self._events = 0
        self._inflight = 0
        # lane -> {"pid", "runs", "busy", "last"}
        self._lane_state: Dict[int, Dict[str, object]] = {}
        session.add_listener(self._on_span)

    # ``ProgressFn``-compatible: plugs straight into the runner.
    def progress(self, done: int, total: int, cfg, source: str) -> None:
        self._done = done
        self._total = max(self._total, total)
        if source == "cached":
            self._cached += 1
        else:
            self._run += 1
        self._draw()

    def _on_span(self, phase: str, span: Span) -> None:
        if span.name == "submit":
            if phase == "begin":
                self._inflight += 1
            elif phase == "finish":
                self._inflight = max(0, self._inflight - 1)
        elif span.name == "retry" and phase == "begin":
            self._retries += 1
        elif span.name == "execute" and phase == "add" and span.status == "ok":
            lane = span.lane or 0
            state = self._lane_state.setdefault(
                lane, {"pid": span.attrs.get("pid"), "runs": 0,
                       "busy": 0.0, "last": ""}
            )
            state["runs"] = int(state["runs"]) + 1
            state["busy"] = float(state["busy"]) + span.seconds
            state["last"] = str(span.attrs.get("config", ""))
            self._events += int(span.attrs.get("events", 0) or 0)
        self._draw()

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        elapsed = time.perf_counter() - self._t0
        total = max(self._total, self._done, 1)
        frac = self._done / total
        width = 28
        filled = int(frac * width)
        bar = "#" * filled + "-" * (width - filled)
        rate = self._done / elapsed if elapsed > 0 else 0.0
        remaining = total - self._done
        eta = f"{remaining / rate:4.0f}s" if rate > 0 and remaining else "   -"
        hit = self._cached / self._done if self._done else 0.0
        evps = self._events / elapsed if elapsed > 0 else 0.0
        lines = [
            f"sweep [{bar}] {self._done}/{total} ({frac:4.0%})  "
            f"elapsed {elapsed:5.1f}s  eta {eta}",
            f"cache {self._cached} hit ({hit:4.0%})  run {self._run}  "
            f"retries {self._retries}  in-flight {self._inflight}  "
            f"{rate:5.2f} cfg/s  {evps:,.0f} ev/s",
        ]
        for lane in sorted(self._lane_state):
            state = self._lane_state[lane]
            lines.append(
                f"  lane {lane} [pid {state['pid']}]: "
                f"{state['runs']} runs  busy {float(state['busy']):6.2f}s  "
                f"last {state['last']}"
            )
        return "\n".join(lines)

    def _draw(self, final: bool = False) -> None:
        interactive = getattr(self._stream, "isatty", lambda: False)()
        if not interactive and not final:
            return
        now = time.perf_counter()
        if not final and now - self._last_draw < self._min_interval:
            return
        self._last_draw = now
        text = self.render()
        if interactive and self._lines_drawn:
            # Repaint in place: up N lines, then clear to end of screen.
            self._stream.write(f"\x1b[{self._lines_drawn}F\x1b[J")
        self._stream.write(text + "\n")
        self._stream.flush()
        self._lines_drawn = text.count("\n") + 1

    def close(self) -> None:
        """Final frame (written even on non-TTY streams)."""
        self._draw(final=True)
        self._session.remove_listener(self._on_span)
