"""Causal abort attribution: *why* did each attempt roll back, and who
started it.

The abort counters (Fig. 5) say how many attempts died per
:class:`~repro.htm.stats.AbortReason`; they do not say which core's
action killed them, or that a single producer abort knocked down a whole
forwarding chain.  This module answers those questions from a
:class:`~repro.obs.ledger.TxLedger`:

* every aborted attempt is classified into a *cause kind* (see
  :data:`CAUSE_KINDS`) and, where the event stream allows, linked to the
  source core — and to the specific upstream *attempt* when the cause
  was another transaction's abort cascading through a forwarded value;
* ``producer-abort`` links are folded into **abort cascades**: trees
  rooted at a first-cause abort whose descendants all died validating
  (or re-validating) data the root had forwarded;
* the forwarding edges are linked into chains (shared
  :func:`~repro.obs.chains.link_chains` logic) for depth/length
  distributions.

Aborts whose trigger the events cannot name (directory races, and
conflict aborts predating the source-stamped events) are tagged
``unattributed`` rather than guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .chains import ChainEdge, link_chains
from .ledger import ForwardEdge, TxAttempt, TxLedger

#: Every cause kind :func:`attribute_aborts` can assign, in display order.
#: ``unattributed`` is the only kind that does not name a concrete cause.
CAUSE_KINDS = (
    "conflict",  # another core's request won the conflict
    "producer-abort",  # upstream producer aborted; its value was stale
    "validation-mismatch",  # value changed under us (producer committed new)
    "pic-cycle",  # PiC rule fired on a validation response
    "naive-budget",  # naive R-S escape budget exhausted
    "power-token",  # lost against a power transaction
    "fallback-lock",  # global-lock subscription invalidated
    "hybrid-slowpath",  # conflicted with a software slow-path transaction
    "capacity",  # own footprint overflowed a capacity bound
    "explicit",  # workload requested the abort
    "unattributed",  # event stream cannot name the trigger
)

#: AbortReason.value → base cause kind (before upstream refinement).
_REASON_TO_KIND = {
    "conflict": "conflict",
    "validation": "validation-mismatch",
    "cycle": "pic-cycle",
    "naive-limit": "naive-budget",
    "power": "power-token",
    "lock": "fallback-lock",
    "hybrid-slowpath": "hybrid-slowpath",
    "capacity": "capacity",
    "explicit": "explicit",
}

#: Cause kinds refined through the forwarding edges to a producer attempt.
_VALIDATION_FAMILY = frozenset(
    {"validation-mismatch", "pic-cycle", "naive-budget"}
)


@dataclass(frozen=True, slots=True)
class AttributedAbort:
    """One aborted attempt with its resolved cause."""

    attempt: TxAttempt
    kind: str  # one of CAUSE_KINDS
    source_core: Optional[int] = None  # core whose action triggered it
    source_attempt: Optional[Tuple[int, int]] = None  # (core, epoch) upstream

    @property
    def attributed(self) -> bool:
        return self.kind != "unattributed"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "core": self.attempt.core,
            "epoch": self.attempt.epoch,
            "cycle": self.attempt.end,
            "reason": self.attempt.reason,
            "kind": self.kind,
        }
        if self.source_core is not None:
            out["source_core"] = self.source_core
        if self.source_attempt is not None:
            out["source_attempt"] = list(self.source_attempt)
        return out


@dataclass(frozen=True, slots=True)
class Cascade:
    """An abort-cascade tree: a root abort and everything it took down."""

    root: Tuple[int, int]  # (core, epoch) of the first-cause abort
    members: Tuple[Tuple[int, int], ...]  # every attempt in the tree (incl. root)
    depth: int  # longest root→leaf path, in producer-abort hops

    @property
    def size(self) -> int:
        return len(self.members)

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": list(self.root),
            "members": [list(m) for m in self.members],
            "size": self.size,
            "depth": self.depth,
        }


@dataclass(frozen=True, slots=True)
class AttributionReport:
    """Full attribution output for one run's ledger."""

    records: Tuple[AttributedAbort, ...]
    cascades: Tuple[Cascade, ...]
    chain_depths: Dict[int, int]  # chain depth (edges) -> count

    # ------------------------------------------------------------------
    def breakdown(self) -> Dict[str, int]:
        out = {kind: 0 for kind in CAUSE_KINDS}
        for rec in self.records:
            out[rec.kind] += 1
        return out

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def attributed(self) -> int:
        return sum(1 for rec in self.records if rec.attributed)

    @property
    def attributed_fraction(self) -> float:
        return self.attributed / self.total if self.total else 1.0

    def chain_stats(self) -> Dict[str, object]:
        total = sum(self.chain_depths.values())
        edges = sum(d * n for d, n in self.chain_depths.items())
        return {
            "chains": total,
            "forwards": edges,
            "max_depth": max(self.chain_depths) if self.chain_depths else 0,
            "mean_depth": edges / total if total else 0.0,
            "depth_histogram": {
                str(d): n for d, n in sorted(self.chain_depths.items())
            },
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_aborts": self.total,
            "attributed": self.attributed,
            "attributed_fraction": self.attributed_fraction,
            "breakdown": self.breakdown(),
            "cascades": [c.to_dict() for c in self.cascades],
            "chains": self.chain_stats(),
            "aborts": [rec.to_dict() for rec in self.records],
        }


# ----------------------------------------------------------------------
def _edge_into(ledger: TxLedger, attempt: TxAttempt) -> Optional[ForwardEdge]:
    """Last forwarding edge into ``attempt`` touching its abort block
    (any block when the abort did not name one)."""
    best: Optional[ForwardEdge] = None
    for edge in ledger.edges:
        if edge.consumer != attempt.core or edge.consumer_epoch != attempt.epoch:
            continue
        if attempt.block is not None and edge.block != attempt.block:
            continue
        if best is None or edge.cycle >= best.cycle:
            best = edge
    return best


def _covering_attempt(
    ledger: TxLedger, core: int, cycle: int
) -> Optional[TxAttempt]:
    """The attempt of ``core`` whose span covers ``cycle``, if any."""
    for a in ledger.attempts:
        if a.core == core and a.begin <= cycle <= a.end:
            return a
    return None


def attribute_aborts(ledger: TxLedger) -> AttributionReport:
    """Classify every aborted attempt in ``ledger`` (see module doc)."""
    records: List[AttributedAbort] = []
    for attempt in ledger.aborts:
        records.append(_attribute_one(ledger, attempt))
    cascades = _build_cascades(records)
    depths: Dict[int, int] = {}
    chain_edges = [
        ChainEdge(cycle=e.cycle, producer=e.producer, consumer=e.consumer,
                  block=e.block, pic=e.pic)
        for e in ledger.edges
    ]
    for chain in link_chains(chain_edges):
        depths[chain.depth] = depths.get(chain.depth, 0) + 1
    return AttributionReport(
        records=tuple(records), cascades=tuple(cascades), chain_depths=depths
    )


def _attribute_one(ledger: TxLedger, attempt: TxAttempt) -> AttributedAbort:
    kind = _REASON_TO_KIND.get(attempt.reason or "", "unattributed")
    source_core = attempt.src
    source_attempt: Optional[Tuple[int, int]] = None

    if kind in _VALIDATION_FAMILY:
        # Resolve the producer whose forwarded value we were holding:
        # prefer the responder stamped on the abort; fall back to the
        # forwarding edge (directory-healed data has no core source).
        producer: Optional[Tuple[int, int]] = None
        if source_core is not None:
            covering = _covering_attempt(ledger, source_core, attempt.end)
            if covering is not None:
                producer = covering.key
        if producer is None:
            edge = _edge_into(ledger, attempt)
            if edge is not None and edge.producer_epoch >= 0:
                producer = (edge.producer, edge.producer_epoch)
                source_core = edge.producer
        if producer is not None:
            upstream = ledger.attempt(*producer)
            if (
                upstream is not None
                and upstream.outcome == "aborted"
                and upstream.end <= attempt.end
            ):
                # The value died because its producer died: a cascade.
                kind = "producer-abort"
            source_attempt = producer
        elif source_core is None and kind == "validation-mismatch":
            kind = "unattributed"
    elif kind == "conflict":
        if source_core is None:
            # Directory race (stale exclusive data): no core to blame.
            kind = "unattributed"
        else:
            covering = _covering_attempt(ledger, source_core, attempt.end)
            if covering is not None:
                source_attempt = covering.key
    elif kind == "power-token":
        if source_core is not None:
            covering = _covering_attempt(ledger, source_core, attempt.end)
            if covering is not None:
                source_attempt = covering.key
    elif kind == "fallback-lock":
        # Name the lock holder whose serialized span covers the abort.
        if source_core is None:
            for span in ledger.fallbacks:
                if span.begin <= attempt.end <= span.end:
                    source_core = span.core
                    break
    # "capacity" and "explicit" are self-caused: concrete, no source.
    # "hybrid-slowpath" keeps the slow-path core stamped on the event as
    # its source; software transactions have no hardware attempt to link.
    return AttributedAbort(
        attempt=attempt, kind=kind,
        source_core=source_core, source_attempt=source_attempt,
    )


def _build_cascades(records: List[AttributedAbort]) -> List[Cascade]:
    """Fold producer-abort links into trees, largest first."""
    parent: Dict[Tuple[int, int], Tuple[int, int]] = {}
    aborted = {rec.attempt.key for rec in records}
    for rec in records:
        if rec.kind == "producer-abort" and rec.source_attempt in aborted:
            parent[rec.attempt.key] = rec.source_attempt
    if not parent:
        return []
    children: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for child, par in parent.items():
        children.setdefault(par, []).append(child)
    roots = sorted(
        {par for par in parent.values() if par not in parent}
    )
    cascades: List[Cascade] = []
    for root in roots:
        members: List[Tuple[int, int]] = []
        depth = 0
        stack: List[Tuple[Tuple[int, int], int]] = [(root, 0)]
        while stack:
            node, d = stack.pop()
            members.append(node)
            depth = max(depth, d)
            for child in sorted(children.get(node, ())):
                stack.append((child, d + 1))
        cascades.append(
            Cascade(root=root, members=tuple(sorted(members)), depth=depth)
        )
    cascades.sort(key=lambda c: (-c.size, c.root))
    return cascades
