"""Transaction lifecycle ledger: every attempt, reconstructed.

:class:`TxLedger` is a probe subscriber that turns the flat event stream
into *per-attempt* records: for each hardware transaction attempt it
captures the begin/end cycles, how it finished (commit or abort, with the
proximate cause the abort site stamped on the event), every speculative
forward it produced or consumed, and its validation activity.  Fallback
(serialized) executions are captured as :class:`FallbackSpan` brackets.

The ledger is the substrate for the forensics layer:

* :mod:`repro.obs.attribution` links aborts to their upstream cause and
  builds abort-cascade trees out of the forwarding edges recorded here;
* :class:`WastedWork` folds the attempt spans into per-core cycle
  buckets (committed / aborted-speculative / fallback / stalled) — the
  "where did the time go" view behind ``repro inspect``.

Like every subscriber, attaching a ledger must not perturb the run: it
only *reads* events (``TestLedgerObserverEffect`` pins this).

Example::

    ledger = TxLedger(sim)
    with ledger:
        sim.run()
    for a in ledger.attempts_of(0):
        print(a.epoch, a.outcome, a.reason)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .events import (
    Abort,
    Commit,
    FallbackAcquire,
    FallbackCommit,
    ProbeEvent,
    SpecForward,
    TxBegin,
    ValidationMismatch,
    ValidationOk,
    ValidationStart,
    VsbInsert,
)


@dataclass(frozen=True, slots=True)
class ForwardEdge:
    """One producer→consumer speculative forward, with attempt identity.

    :class:`~repro.obs.events.SpecForward` only names cores; the ledger
    stamps the *epochs* of the attempts open on both sides when the
    forward happened, so attribution can follow the edge to a specific
    producer attempt even after both cores have moved on.
    """

    cycle: int
    producer: int
    producer_epoch: int
    consumer: int
    consumer_epoch: int
    block: int
    pic: Optional[int]


@dataclass(frozen=True, slots=True)
class TxAttempt:
    """One finished hardware transaction attempt (frozen post-mortem)."""

    core: int
    epoch: int
    label: str
    power: bool
    begin: int
    end: int
    outcome: str  # "committed" | "aborted"
    reason: Optional[str] = None  # AbortReason.value when aborted
    src: Optional[int] = None  # proximate-cause core from the Abort event
    block: Optional[int] = None  # proximate-cause block from the Abort event
    forwards_sent: int = 0
    forwards_received: int = 0
    vsb_peak: int = 0
    validations_started: int = 0
    validations_ok: int = 0
    validation_mismatches: int = 0
    blocks_consumed: Tuple[int, ...] = ()

    @property
    def key(self) -> Tuple[int, int]:
        return (self.core, self.epoch)

    @property
    def span(self) -> int:
        return self.end - self.begin

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "core": self.core,
            "epoch": self.epoch,
            "label": self.label,
            "power": self.power,
            "begin": self.begin,
            "end": self.end,
            "outcome": self.outcome,
            "forwards_sent": self.forwards_sent,
            "forwards_received": self.forwards_received,
            "vsb_peak": self.vsb_peak,
            "validations_started": self.validations_started,
            "validations_ok": self.validations_ok,
            "validation_mismatches": self.validation_mismatches,
        }
        if self.reason is not None:
            out["reason"] = self.reason
        if self.src is not None:
            out["src"] = self.src
        if self.block is not None:
            out["block"] = self.block
        if self.blocks_consumed:
            out["blocks_consumed"] = list(self.blocks_consumed)
        return out


@dataclass(frozen=True, slots=True)
class FallbackSpan:
    """One serialized (fallback-lock) execution of a core."""

    core: int
    begin: int
    end: int
    label: str = ""

    @property
    def span(self) -> int:
        return self.end - self.begin


@dataclass
class _OpenAttempt:
    """Mutable builder for an attempt still running."""

    core: int
    epoch: int
    power: bool
    begin: int
    forwards_sent: int = 0
    forwards_received: int = 0
    vsb_peak: int = 0
    validations_started: int = 0
    validations_ok: int = 0
    validation_mismatches: int = 0
    blocks_consumed: List[int] = field(default_factory=list)

    def close(self, *, cycle: int, outcome: str, label: str,
              reason: Optional[str] = None, src: Optional[int] = None,
              block: Optional[int] = None) -> TxAttempt:
        return TxAttempt(
            core=self.core,
            epoch=self.epoch,
            label=label,
            power=self.power,
            begin=self.begin,
            end=cycle,
            outcome=outcome,
            reason=reason,
            src=src,
            block=block,
            forwards_sent=self.forwards_sent,
            forwards_received=self.forwards_received,
            vsb_peak=self.vsb_peak,
            validations_started=self.validations_started,
            validations_ok=self.validations_ok,
            validation_mismatches=self.validation_mismatches,
            blocks_consumed=tuple(self.blocks_consumed),
        )


class TxLedger:
    """Probe subscriber reconstructing every transaction attempt.

    The ledger keys attempts by ``(core, epoch)`` — the simulator's
    attempt identity — and keeps the event stream's ordering guarantees:
    a core has at most one open attempt, forwards land while both sides'
    attempts are open, and validation events carry the epoch they belong
    to (stale-epoch events are dropped, mirroring the controller).
    """

    def __init__(self, sim=None):
        self.sim = sim
        self.attempts: List[TxAttempt] = []
        self.edges: List[ForwardEdge] = []
        self.fallbacks: List[FallbackSpan] = []
        self._open: Dict[int, _OpenAttempt] = {}  # core -> running attempt
        self._fallback_open: Dict[int, int] = {}  # core -> acquire cycle
        self._index: Dict[Tuple[int, int], TxAttempt] = {}

    # ------------------------------------------------------------------
    def __call__(self, ev: ProbeEvent) -> None:
        if isinstance(ev, TxBegin):
            self._open[ev.core] = _OpenAttempt(
                core=ev.core, epoch=ev.epoch, power=ev.power, begin=ev.cycle
            )
        elif isinstance(ev, SpecForward):
            producer = self._open.get(ev.producer)
            consumer = self._open.get(ev.consumer)
            if producer is not None:
                producer.forwards_sent += 1
            if consumer is not None:
                consumer.forwards_received += 1
                consumer.blocks_consumed.append(ev.block)
            self.edges.append(
                ForwardEdge(
                    cycle=ev.cycle,
                    producer=ev.producer,
                    producer_epoch=producer.epoch if producer else -1,
                    consumer=ev.consumer,
                    consumer_epoch=consumer.epoch if consumer else -1,
                    block=ev.block,
                    pic=ev.pic,
                )
            )
        elif isinstance(ev, VsbInsert):
            open_ = self._open.get(ev.core)
            if open_ is not None and ev.occupancy > open_.vsb_peak:
                open_.vsb_peak = ev.occupancy
        elif isinstance(ev, ValidationStart):
            open_ = self._open.get(ev.core)
            if open_ is not None and open_.epoch == ev.epoch:
                open_.validations_started += 1
        elif isinstance(ev, ValidationOk):
            open_ = self._open.get(ev.core)
            if open_ is not None and open_.epoch == ev.epoch:
                open_.validations_ok += 1
        elif isinstance(ev, ValidationMismatch):
            open_ = self._open.get(ev.core)
            if open_ is not None and open_.epoch == ev.epoch:
                open_.validation_mismatches += 1
        elif isinstance(ev, Commit):
            self._close(ev.core, ev.epoch, cycle=ev.cycle,
                        outcome="committed", label=ev.label)
        elif isinstance(ev, Abort):
            self._close(ev.core, ev.epoch, cycle=ev.cycle,
                        outcome="aborted", label=ev.label,
                        reason=ev.reason, src=ev.src, block=ev.block)
        elif isinstance(ev, FallbackAcquire):
            self._fallback_open[ev.core] = ev.cycle
        elif isinstance(ev, FallbackCommit):
            begin = self._fallback_open.pop(ev.core, None)
            if begin is not None:
                self.fallbacks.append(
                    FallbackSpan(core=ev.core, begin=begin,
                                 end=ev.cycle, label=ev.label)
                )

    def _close(self, core: int, epoch: int, **kw) -> None:
        open_ = self._open.get(core)
        if open_ is None or open_.epoch != epoch:
            return
        del self._open[core]
        attempt = open_.close(**kw)
        self.attempts.append(attempt)
        self._index[attempt.key] = attempt

    # ------------------------------------------------------------------
    def attach(self) -> "TxLedger":
        if self.sim is None:
            raise RuntimeError("no simulator bound; subscribe manually")
        self.sim.probe.subscribe(self)
        return self

    def detach(self) -> None:
        if self.sim is not None:
            self.sim.probe.unsubscribe(self)

    def __enter__(self) -> "TxLedger":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def attempt(self, core: int, epoch: int) -> Optional[TxAttempt]:
        """The finished attempt ``(core, epoch)``, if it closed."""
        return self._index.get((core, epoch))

    def attempts_of(self, core: int) -> List[TxAttempt]:
        return [a for a in self.attempts if a.core == core]

    @property
    def commits(self) -> List[TxAttempt]:
        return [a for a in self.attempts if a.outcome == "committed"]

    @property
    def aborts(self) -> List[TxAttempt]:
        return [a for a in self.attempts if a.outcome == "aborted"]

    def cores(self) -> List[int]:
        """Cores that showed any transactional or fallback activity."""
        seen = {a.core for a in self.attempts}
        seen.update(s.core for s in self.fallbacks)
        return sorted(seen)

    def to_dict(self) -> Dict[str, object]:
        return {
            "attempts": [a.to_dict() for a in self.attempts],
            "forwards": [
                {
                    "cycle": e.cycle,
                    "producer": e.producer,
                    "producer_epoch": e.producer_epoch,
                    "consumer": e.consumer,
                    "consumer_epoch": e.consumer_epoch,
                    "block": e.block,
                    "pic": e.pic,
                }
                for e in self.edges
            ],
            "fallbacks": [
                {"core": s.core, "begin": s.begin, "end": s.end,
                 "label": s.label}
                for s in self.fallbacks
            ],
        }


#: Bucket names of the wasted-work accounting, in display order.
WASTED_WORK_BUCKETS = ("committed", "aborted_speculative", "fallback", "stalled")


@dataclass(frozen=True, slots=True)
class WastedWork:
    """Per-core cycle buckets: where each core's wall-clock time went.

    ``committed`` is time inside attempts that went on to commit,
    ``aborted_speculative`` is time inside attempts that rolled back (the
    paper's wasted speculative work), ``fallback`` is time holding the
    global lock, and ``stalled`` is the remainder — waiting for retries,
    coherence, or the lock (clamped at zero: overlapping accounting can
    otherwise push it negative for power transactions).
    """

    total_cycles: int
    per_core: Dict[int, Dict[str, int]]

    @classmethod
    def from_ledger(cls, ledger: TxLedger, total_cycles: int) -> "WastedWork":
        per_core: Dict[int, Dict[str, int]] = {}
        for core in ledger.cores():
            committed = sum(
                a.span for a in ledger.attempts
                if a.core == core and a.outcome == "committed"
            )
            aborted = sum(
                a.span for a in ledger.attempts
                if a.core == core and a.outcome == "aborted"
            )
            fallback = sum(
                s.span for s in ledger.fallbacks if s.core == core
            )
            stalled = max(0, total_cycles - committed - aborted - fallback)
            per_core[core] = {
                "committed": committed,
                "aborted_speculative": aborted,
                "fallback": fallback,
                "stalled": stalled,
            }
        return cls(total_cycles=total_cycles, per_core=per_core)

    def totals(self) -> Dict[str, int]:
        out = {bucket: 0 for bucket in WASTED_WORK_BUCKETS}
        for buckets in self.per_core.values():
            for bucket, cycles in buckets.items():
                out[bucket] += cycles
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_cycles": self.total_cycles,
            "per_core": {str(c): dict(b) for c, b in sorted(self.per_core.items())},
            "totals": self.totals(),
        }
