"""Time-series metrics: probe events binned into fixed cycle windows.

An :class:`IntervalMetrics` subscriber turns the event stream into a
compact per-window time series — commits, aborts by reason, speculative
forwards, peak VSB occupancy, fallback-lock acquisitions, and power-token
grants — the dynamic view that end-of-run :class:`~repro.htm.stats.HTMStats`
aggregates cannot provide.

The collector serializes to plain JSON (:meth:`to_dict` /
:meth:`from_dict`) and rides inside
:class:`~repro.sim.results.SimulationResult`, so disk-cached runs keep
their time series.  Bins are exhaustive: summing any counter over all
bins reproduces the corresponding aggregate (asserted by the test
suite).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .events import (
    Abort,
    Commit,
    FallbackAcquire,
    PowerElevate,
    ProbeEvent,
    SpecForward,
    VsbInsert,
)

#: Default window width, in cycles.
DEFAULT_WINDOW = 10_000


class IntervalMetrics:
    """Probe subscriber binning events into fixed cycle windows."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError("window must be at least one cycle")
        self.window = window
        #: bin index -> mutable bin dict (created lazily; empty windows
        #: between active ones are materialized at serialization time).
        self._bins: Dict[int, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def _bin(self, cycle: int) -> Dict[str, object]:
        idx = cycle // self.window
        b = self._bins.get(idx)
        if b is None:
            b = {
                "start": idx * self.window,
                "commits": 0,
                "aborts": {},
                "forwards": 0,
                "vsb_peak": 0,
                "fallback_acquires": 0,
                "power_elevations": 0,
            }
            self._bins[idx] = b
        return b

    def __call__(self, ev: ProbeEvent) -> None:
        """Probe subscriber entry point."""
        if isinstance(ev, Commit):
            b = self._bin(ev.cycle)
            b["commits"] += 1
        elif isinstance(ev, Abort):
            b = self._bin(ev.cycle)
            aborts: Dict[str, int] = b["aborts"]  # type: ignore[assignment]
            aborts[ev.reason] = aborts.get(ev.reason, 0) + 1
        elif isinstance(ev, SpecForward):
            b = self._bin(ev.cycle)
            b["forwards"] += 1
        elif isinstance(ev, VsbInsert):
            b = self._bin(ev.cycle)
            if ev.occupancy > b["vsb_peak"]:  # type: ignore[operator]
                b["vsb_peak"] = ev.occupancy
        elif isinstance(ev, FallbackAcquire):
            b = self._bin(ev.cycle)
            b["fallback_acquires"] += 1
        elif isinstance(ev, PowerElevate):
            b = self._bin(ev.cycle)
            b["power_elevations"] += 1

    # ------------------------------------------------------------------
    def bins(self) -> List[Dict[str, object]]:
        """Materialized bins in time order, including empty interior
        windows (so plots see a dense axis)."""
        if not self._bins:
            return []
        lo, hi = min(self._bins), max(self._bins)
        out = []
        for idx in range(lo, hi + 1):
            b = self._bins.get(idx)
            if b is None:
                b = {
                    "start": idx * self.window,
                    "commits": 0,
                    "aborts": {},
                    "forwards": 0,
                    "vsb_peak": 0,
                    "fallback_acquires": 0,
                    "power_elevations": 0,
                }
            out.append(dict(b, aborts=dict(b["aborts"])))
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable time series (the cache payload)."""
        return {"window": self.window, "bins": self.bins()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "IntervalMetrics":
        """Rebuild a collector from :meth:`to_dict` output."""
        self = cls(window=int(data["window"]))
        for b in data["bins"]:  # type: ignore[union-attr]
            idx = int(b["start"]) // self.window
            self._bins[idx] = {
                "start": int(b["start"]),
                "commits": int(b["commits"]),
                "aborts": {str(k): int(v) for k, v in b["aborts"].items()},
                "forwards": int(b["forwards"]),
                "vsb_peak": int(b["vsb_peak"]),
                "fallback_acquires": int(b["fallback_acquires"]),
                "power_elevations": int(b["power_elevations"]),
            }
        return self

    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Sums over every bin (used to cross-check the aggregates)."""
        commits = forwards = fallback = power = aborts = 0
        for b in self._bins.values():
            commits += b["commits"]  # type: ignore[operator]
            forwards += b["forwards"]  # type: ignore[operator]
            fallback += b["fallback_acquires"]  # type: ignore[operator]
            power += b["power_elevations"]  # type: ignore[operator]
            aborts += sum(b["aborts"].values())  # type: ignore[union-attr]
        return {
            "commits": commits,
            "aborts": aborts,
            "forwards": forwards,
            "fallback_acquires": fallback,
            "power_elevations": power,
        }


def timeline_rows(intervals: Mapping[str, object]) -> List[Dict[str, object]]:
    """Flatten a serialized time series into renderer-friendly rows."""
    rows = []
    for b in intervals.get("bins", []):  # type: ignore[union-attr]
        rows.append(
            {
                "start": b["start"],
                "commits": b["commits"],
                "aborts": sum(b["aborts"].values()),
                "forwards": b["forwards"],
                "vsb_peak": b["vsb_peak"],
                "fallback": b["fallback_acquires"],
                "power": b["power_elevations"],
            }
        )
    return rows
