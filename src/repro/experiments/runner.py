"""Cached experiment runner.

Several figures are computed from the same simulations (Figs. 1, 4, 5, 6,
7, and 11 all derive from the main six-system sweep), so results are cached
in-process keyed by the full run configuration.  The cache makes the bench
suite cost one simulation per distinct configuration no matter how many
figures consume it.

Environment knobs:

* ``REPRO_SCALE`` — global input-scale factor for benches (default 0.4).
  Larger values approach the paper's input sizes at a linear cost in host
  time; every figure's *shape* is stable across scales.
* ``REPRO_THREADS`` — simulated core/thread count (default 16, Table I).
* ``REPRO_SEED`` — workload RNG seed (default 1).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from ..sim.config import HTMConfig, SystemKind, table2_config
from ..sim.results import SimulationResult
from ..sim.simulator import run_simulation
from ..workloads.base import make_workload


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.4"))


def bench_threads() -> int:
    return int(os.environ.get("REPRO_THREADS", "16"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "1"))


_CACHE: Dict[Tuple, SimulationResult] = {}


def run_cached(
    workload: str,
    system: SystemKind,
    *,
    htm: Optional[HTMConfig] = None,
    threads: Optional[int] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    max_events: int = 40_000_000,
) -> SimulationResult:
    """Run (or fetch) one simulation with bench defaults."""
    threads = threads if threads is not None else bench_threads()
    seed = seed if seed is not None else bench_seed()
    scale = scale if scale is not None else bench_scale()
    htm = htm if htm is not None else table2_config(system)
    key = (workload, htm, threads, seed, scale)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    wl = make_workload(workload, threads=threads, seed=seed, scale=scale)
    result = run_simulation(wl, system, htm=htm, max_events=max_events)
    _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
