"""Cached, parallel experiment runner.

Several figures are computed from the same simulations (Figs. 1, 4, 5, 6,
7, and 11 all derive from the main six-system sweep), so results are
cached at two levels:

* an in-process dictionary keyed by the *complete* run configuration
  (:class:`RunConfig`), and
* a persistent on-disk **result store** (:mod:`repro.store`) under
  ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``), so a figure
  sweep re-run in a new process costs zero simulations.  The backend is
  selected by ``REPRO_STORE``/``--store``: the sharded segment store by
  default, the legacy one-JSON-per-result layout for pre-store caches.
  Concurrent ``run_many`` processes sharing one cache directory
  deduplicate *across processes* through store claims: each miss is
  claimed before execution, and a key some live peer already claimed is
  awaited instead of recomputed.

Cache keys are content-addressed: a SHA-256 over every field that can
change a simulation's outcome — workload, system, the full
:class:`~repro.sim.config.HTMConfig`, threads, seed, scale, and
``max_events`` — plus :data:`SCHEMA_VERSION` (bump on serialization
changes) and a fingerprint of the package's source code, so stale results
can never survive a code change.

:func:`run_many` fans a batch of configurations out over a
``ProcessPoolExecutor`` (``REPRO_WORKERS`` processes, default 1 = serial),
deduplicating identical configs before dispatch; a crashed worker is
retried once and then surfaced with the offending configuration.

Environment knobs:

* ``REPRO_SCALE`` — global input-scale factor for benches (default 0.4).
  Larger values approach the paper's input sizes at a linear cost in host
  time; every figure's *shape* is stable across scales.
* ``REPRO_THREADS`` — simulated core/thread count (default 16, Table I).
* ``REPRO_SEED`` — workload RNG seed (default 1).
* ``REPRO_WORKERS`` — worker processes for :func:`run_many` (default 1).
* ``REPRO_CACHE_DIR`` — disk cache location (default ``.repro_cache``).
* ``REPRO_NO_CACHE`` — set to ``1`` to disable the disk cache.
* ``REPRO_STORE`` — result-store backend: ``sharded``, ``legacy``, or
  ``auto`` (the default; see :mod:`repro.store`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .. import accel
from .. import store as store_pkg
from ..obs import telemetry as fleet
from ..sim.config import HTMConfig, table2_config
from ..systems.spec import SystemSpec, get_spec
from ..sim.results import SimulationResult
from ..sim.simulator import run_simulation
from ..workloads.base import make_workload

#: Bump when the meaning of cached payloads changes (serialization layout,
#: result semantics); old disk entries then miss and re-run.
SCHEMA_VERSION = 1

#: Event bound used by the bench sweeps (tighter than the library default:
#: a figure cell that livelocks should fail fast).
DEFAULT_MAX_EVENTS = 40_000_000

ProgressFn = Callable[[int, int, "RunConfig", str], None]


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.4"))


def bench_threads() -> int:
    return int(os.environ.get("REPRO_THREADS", "16"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "1"))


def default_workers() -> int:
    return max(1, int(os.environ.get("REPRO_WORKERS", "1")))


# ----------------------------------------------------------------------
# Run configuration and content-addressed keys.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunConfig:
    """Everything that determines one simulation's outcome."""

    workload: str
    system: SystemSpec
    htm: HTMConfig
    threads: int
    seed: int
    scale: float
    max_events: int = DEFAULT_MAX_EVENTS
    #: Cycle width for the run's IntervalMetrics time series (``None``
    #: keeps the instrumentation bus silent).  Part of the cache key: an
    #: intervals-bearing result is a different payload.
    metrics_window: Optional[int] = None

    @classmethod
    def make(
        cls,
        workload: str,
        system: "SystemSpec | str",
        *,
        htm: Optional[HTMConfig] = None,
        threads: Optional[int] = None,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        metrics_window: Optional[int] = None,
    ) -> "RunConfig":
        """Build a config, filling unset fields from the bench defaults.

        ``system`` accepts a registered name or a :class:`SystemSpec`.
        """
        system = get_spec(system)
        return cls(
            workload=workload,
            system=system,
            htm=htm if htm is not None else table2_config(system),
            threads=threads if threads is not None else bench_threads(),
            seed=seed if seed is not None else bench_seed(),
            scale=scale if scale is not None else bench_scale(),
            max_events=max_events,
            metrics_window=metrics_window,
        )

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-stable representation (used for hashing)."""
        htm = dataclasses.asdict(self.htm)
        htm["system"] = self.htm.system.value
        if self.htm.forward_class is not None:
            htm["forward_class"] = self.htm.forward_class.value
        return {
            "workload": self.workload,
            "system": self.system.value,
            "htm": htm,
            "threads": self.threads,
            "seed": self.seed,
            "scale": self.scale,
            "max_events": self.max_events,
            "metrics_window": self.metrics_window,
        }

    def key(self) -> str:
        """Content-addressed cache key covering every field plus the
        schema version and the package source fingerprint."""
        payload = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "code": _code_fingerprint(),
                **self.to_dict(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        text = (
            f"{self.workload}/{self.system.value} "
            f"threads={self.threads} seed={self.seed} scale={self.scale} "
            f"max_events={self.max_events}"
        )
        if self.metrics_window is not None:
            text += f" metrics_window={self.metrics_window}"
        return text


_CODE_FINGERPRINT: Optional[str] = None


def _code_fingerprint() -> str:
    """SHA-256 over the package's source files.

    Any edit to the simulator invalidates every disk-cache entry, so a
    cached result can never silently disagree with the current code.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


# ----------------------------------------------------------------------
# Cache configuration and counters.
# ----------------------------------------------------------------------
_CACHE: Dict[str, SimulationResult] = {}
_cache_dir_override: Optional[str] = None
_disk_cache_override: Optional[bool] = None
_default_progress: Optional["ProgressFn"] = None


def configure(
    *,
    cache_dir: Optional[str] = None,
    disk_cache: Optional[bool] = None,
    progress: Optional["ProgressFn"] = None,
) -> None:
    """Override the env-derived cache settings (CLI flags, conftest).

    ``progress`` installs a default callback used by every ``run_many``
    call that does not pass its own — this is how the CLI gets progress
    out of figure prefetches that it does not invoke directly.
    """
    global _cache_dir_override, _disk_cache_override, _default_progress
    if cache_dir is not None:
        _cache_dir_override = cache_dir
    if disk_cache is not None:
        _disk_cache_override = disk_cache
    if progress is not None:
        _default_progress = progress


def cache_dir() -> Path:
    if _cache_dir_override is not None:
        return Path(_cache_dir_override)
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def disk_cache_enabled() -> bool:
    if _disk_cache_override is not None:
        return _disk_cache_override
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


@dataclass
class RunnerCounters:
    """Observability for the cache layers (asserted by tests/benches)."""

    simulations: int = 0  # actual simulator executions
    memory_hits: int = 0
    disk_hits: int = 0

    def reset(self) -> None:
        self.simulations = 0
        self.memory_hits = 0
        self.disk_hits = 0


COUNTERS = RunnerCounters()


@dataclass
class ManifestEntry:
    """One configuration's fate in a :func:`run_many` batch."""

    config: RunConfig
    source: str  # "cached" | "run"
    seconds: float  # wall-time: simulation for "run", lookup for "cached"
    #: Forensic digest (``ForensicReport.digest()``) when the batch ran
    #: with ``forensics=True`` and this config actually executed; cache
    #: hits stay ``None`` — the cache stores results, not event streams.
    forensics: Optional[Dict[str, object]] = None
    #: Worker-measured resource accounting for configs that executed
    #: (``None`` for cache hits): pid, started_unix, wall/CPU seconds,
    #: peak RSS, events simulated, and events/sec.  Measured inside the
    #: worker process by :func:`_worker_resources`.
    resources: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "config": self.config.describe(),
            "source": self.source,
            "seconds": round(self.seconds, 6),
        }
        if self.forensics is not None:
            out["forensics"] = self.forensics
        if self.resources is not None:
            out["resources"] = dict(self.resources)
        return out


@dataclass
class RunManifest:
    """Per-config wall-times and cache accounting for one batch.

    Populated by :func:`run_many`; the CLI reads it back through
    :func:`last_manifest` to print elapsed times next to progress lines
    and a closing ``N cached / M run`` summary.
    """

    entries: List[ManifestEntry] = field(default_factory=list)
    #: The execution backend resolved when the batch started — recorded
    #: so ``repro trend`` and the manifest archive can attribute
    #: throughput jumps to backend changes rather than code changes.
    backend: str = field(default_factory=accel.resolved_backend)

    @property
    def cached(self) -> int:
        return sum(1 for e in self.entries if e.source == "cached")

    @property
    def executed(self) -> int:
        return sum(1 for e in self.entries if e.source == "run")

    @property
    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.entries)

    @property
    def events_simulated(self) -> int:
        return sum(
            int(e.resources.get("events", 0))
            for e in self.entries
            if e.resources
        )

    @property
    def cpu_seconds(self) -> float:
        return sum(
            float(e.resources.get("cpu_seconds", 0.0))
            for e in self.entries
            if e.resources
        )

    @property
    def max_peak_rss_kb(self) -> Optional[int]:
        peaks = [
            int(e.resources["peak_rss_kb"])
            for e in self.entries
            if e.resources and e.resources.get("peak_rss_kb") is not None
        ]
        return max(peaks) if peaks else None

    def record(
        self,
        config: RunConfig,
        source: str,
        seconds: float,
        forensics: Optional[Dict[str, object]] = None,
        resources: Optional[Dict[str, object]] = None,
    ) -> None:
        self.entries.append(
            ManifestEntry(config, source, seconds, forensics, resources)
        )

    def entry_for(self, cfg: RunConfig) -> Optional[ManifestEntry]:
        """Most recent entry for ``cfg`` (identity, then equality)."""
        for entry in reversed(self.entries):
            if entry.config is cfg or entry.config == cfg:
                return entry
        return None

    def summary(self) -> str:
        return (
            f"{self.cached} cached / {self.executed} run "
            f"in {self.total_seconds:.2f}s simulation wall-time"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "cached": self.cached,
            "run": self.executed,
            "backend": self.backend,
            "total_seconds": round(self.total_seconds, 6),
            "events_simulated": self.events_simulated,
            "cpu_seconds": round(self.cpu_seconds, 6),
            "max_peak_rss_kb": self.max_peak_rss_kb,
            "entries": [e.to_dict() for e in self.entries],
        }


_LAST_MANIFEST: Optional[RunManifest] = None


def last_manifest() -> Optional[RunManifest]:
    """Manifest of the most recent :func:`run_many` call (live object:
    it fills in while the batch is still running)."""
    return _LAST_MANIFEST


def counters() -> RunnerCounters:
    return COUNTERS


def simulations_executed() -> int:
    return COUNTERS.simulations


def clear_cache() -> None:
    """Drop the in-process cache (the disk cache is left untouched)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


# ----------------------------------------------------------------------
# Disk cache: everything persistent goes through the result store
# (``repro.store``) — legacy flat-JSON or sharded segments, selected by
# ``REPRO_STORE``/``--store`` with ``auto`` keeping old caches hitting.
# ----------------------------------------------------------------------
def result_key(key: str) -> str:
    """Store key for one simulation result (``result/<sha256>``)."""
    return f"result/{key}"


def result_store() -> "store_pkg.ResultStore":
    """The shared store instance over the current cache directory."""
    return store_pkg.store_for(cache_dir())


def _disk_load(
    cfg: RunConfig, key: Optional[str] = None
) -> Optional[SimulationResult]:
    key = key if key is not None else cfg.key()
    store = result_store()
    payload = store.get_json(result_key(key))
    if payload is None:
        return None  # missing or byte-corrupt (store already counted it)
    try:
        return SimulationResult.from_dict(payload["result"])
    except (KeyError, TypeError, ValueError) as exc:
        # Valid JSON that no longer matches the result schema: same
        # warn-once miss policy as byte-level corruption.
        store.note_corrupt(result_key(key), f"result schema mismatch: {exc}")
        return None


def _result_payload(cfg: RunConfig, result: SimulationResult) -> bytes:
    return json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "config": cfg.to_dict(),
            "result": result.to_dict(),
        },
        sort_keys=True,
    ).encode("utf-8")


def _disk_store(cfg: RunConfig, result: SimulationResult) -> None:
    try:
        result_store().put(result_key(cfg.key()), _result_payload(cfg, result))
    except OSError:
        pass  # a read-only cache dir degrades to compute-only


# ----------------------------------------------------------------------
# Execution.
# ----------------------------------------------------------------------
def _execute(cfg: RunConfig) -> SimulationResult:
    """Run one simulation (also the worker-process entry point)."""
    wl = make_workload(
        cfg.workload, threads=cfg.threads, seed=cfg.seed, scale=cfg.scale
    )
    return run_simulation(
        wl,
        cfg.system,
        htm=cfg.htm,
        max_events=cfg.max_events,
        metrics_window=cfg.metrics_window,
    )


#: What one executed config returns from its worker: the result, the
#: successful attempt's wall-time, the optional forensic digest, and the
#: worker-side resource sample.
ExecOutcome = Tuple[
    SimulationResult, float, Optional[Dict[str, object]], Dict[str, object]
]


def _worker_resources(
    result: SimulationResult,
    *,
    started_unix: float,
    wall_seconds: float,
    cpu_seconds: float,
) -> Dict[str, object]:
    """Resource sample measured inside the worker process.

    Plain dict of primitives so it travels through worker-pool pickling;
    folded into the batch's :class:`ManifestEntry` and, when a telemetry
    session is installed, into the per-lane ``execute`` spans.
    """
    try:
        import resource

        rss: Optional[int] = int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
        if sys.platform == "darwin":  # pragma: no cover - linux CI
            rss //= 1024  # macOS reports bytes, Linux KiB
    except ImportError:  # pragma: no cover - non-POSIX
        rss = None
    return {
        "pid": os.getpid(),
        "started_unix": round(started_unix, 6),
        "wall_seconds": round(wall_seconds, 6),
        "cpu_seconds": round(cpu_seconds, 6),
        "peak_rss_kb": rss,
        "events": result.events,
        "events_per_sec": (
            round(result.events / wall_seconds, 3) if wall_seconds > 0 else 0.0
        ),
        # Resolved in the process that actually simulated, so a pool
        # worker reports what really executed (workers inherit the
        # selection through REPRO_BACKEND).
        "backend": accel.resolved_backend(),
    }


def _execute_timed(cfg: RunConfig) -> ExecOutcome:
    """``_execute`` plus wall-time and resource accounting, measured
    inside the worker process."""
    started = time.time()
    cpu0 = time.process_time()
    t0 = time.perf_counter()
    result = _execute(cfg)
    wall = time.perf_counter() - t0
    resources = _worker_resources(
        result,
        started_unix=started,
        wall_seconds=wall,
        cpu_seconds=time.process_time() - cpu0,
    )
    return result, wall, None, resources


def _execute_forensic_timed(cfg: RunConfig) -> ExecOutcome:
    """Like :func:`_execute_timed`, but with a transaction ledger attached
    and the run's forensic digest returned alongside (``forensics=True``
    batches).  The digest is a plain dict, so it travels through the
    worker-pool pickling unchanged."""
    from ..analysis.forensics import report_for_config

    started = time.time()
    cpu0 = time.process_time()
    t0 = time.perf_counter()
    result, report = report_for_config(cfg)
    wall = time.perf_counter() - t0
    resources = _worker_resources(
        result,
        started_unix=started,
        wall_seconds=wall,
        cpu_seconds=time.process_time() - cpu0,
    )
    return result, wall, report.digest(), resources


def _lookup(cfg: RunConfig, key: str) -> Optional[SimulationResult]:
    hit = _CACHE.get(key)
    if hit is not None:
        COUNTERS.memory_hits += 1
        return hit
    if disk_cache_enabled():
        result = _disk_load(cfg)
        if result is not None:
            COUNTERS.disk_hits += 1
            _CACHE[key] = result
            return result
    return None


def _store(cfg: RunConfig, key: str, result: SimulationResult) -> None:
    _CACHE[key] = result
    if disk_cache_enabled():
        _disk_store(cfg, result)


def run_config(cfg: RunConfig, *, use_cache: bool = True) -> SimulationResult:
    """Run (or fetch) the simulation described by ``cfg``."""
    key = cfg.key()
    if use_cache:
        hit = _lookup(cfg, key)
        if hit is not None:
            return hit
    result = _execute(cfg)
    COUNTERS.simulations += 1
    if use_cache:
        _store(cfg, key, result)
    return result


def run_cached(
    workload: str,
    system: "SystemSpec | str",
    *,
    htm: Optional[HTMConfig] = None,
    threads: Optional[int] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> SimulationResult:
    """Run (or fetch) one simulation with bench defaults."""
    return run_config(
        RunConfig.make(
            workload,
            system,
            htm=htm,
            threads=threads,
            seed=seed,
            scale=scale,
            max_events=max_events,
        )
    )


# ----------------------------------------------------------------------
# Parallel fan-out.
# ----------------------------------------------------------------------
def _notify(
    progress: Optional[ProgressFn],
    done: int,
    total: int,
    cfg: RunConfig,
    source: str,
) -> None:
    if progress is not None:
        progress(done, total, cfg, source)


def _retry_serial(
    cfg: RunConfig,
    cause: BaseException,
    exec_timed: Callable[[RunConfig], ExecOutcome],
) -> ExecOutcome:
    """Second (and last) attempt for a config whose first run failed.

    Runs through the same ``exec_timed`` callable as the first attempt so
    a forensics-mode retry keeps its ledger (and therefore its manifest
    digest), and so the returned wall-time covers only the successful
    attempt — not the failed one."""
    try:
        return exec_timed(cfg)
    except Exception as exc:
        raise RuntimeError(
            f"simulation failed twice for config [{cfg.describe()}]: {exc}"
        ) from cause


def run_many(
    configs: Iterable[RunConfig],
    *,
    workers: Optional[int] = None,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = None,
    forensics: bool = False,
) -> List[SimulationResult]:
    """Run a batch of configurations, in parallel when ``workers > 1``.

    Identical configs are deduplicated before dispatch and each distinct
    simulation runs exactly once; results come back in input order.  With
    ``workers=1`` (the ``REPRO_WORKERS`` default) everything runs serially
    in-process.  A worker that dies is retried once; a second failure
    raises with the offending configuration.

    ``forensics=True`` attaches a transaction ledger to every simulation
    that actually executes and records each run's forensic digest on its
    :class:`ManifestEntry` (cache hits have no event stream, so their
    entries carry no digest; pass ``use_cache=False`` for full coverage).
    """
    global _LAST_MANIFEST
    configs = list(configs)
    if progress is None:
        progress = _default_progress
    if workers is None:
        workers = default_workers()
    workers = max(1, min(workers, os.cpu_count() or 1))
    exec_timed = _execute_forensic_timed if forensics else _execute_timed
    manifest = RunManifest()
    _LAST_MANIFEST = manifest
    # Batch telemetry: the shared no-op recorder when no session is
    # installed (the fleet-level analogue of an unsubscribed Probe).
    batch = fleet.for_run_many()

    # Deduplicate, preserving first-occurrence order.
    unique: Dict[str, RunConfig] = {}
    for cfg in configs:
        unique.setdefault(cfg.key(), cfg)
    batch.open(
        configs=len(configs),
        unique=len(unique),
        workers=workers,
        backend=manifest.backend,
    )

    store = result_store() if disk_cache_enabled() else None

    results: Dict[str, SimulationResult] = {}
    misses: List[RunConfig] = []
    total = len(unique)
    done = 0
    for key, cfg in unique.items():
        start = time.perf_counter()
        mem_before, disk_before = COUNTERS.memory_hits, COUNTERS.disk_hits
        hit = _lookup(cfg, key) if use_cache else None
        probe_seconds = time.perf_counter() - start
        if use_cache:
            batch.probe(
                cfg,
                key,
                outcome="hit" if hit is not None else "miss",
                layer=(
                    "memory"
                    if COUNTERS.memory_hits > mem_before
                    else "disk"
                    if COUNTERS.disk_hits > disk_before
                    else "none"
                ),
                seconds=probe_seconds,
                store=store.kind if store is not None else None,
            )
        if hit is not None:
            results[key] = hit
            done += 1
            manifest.record(cfg, "cached", probe_seconds)
            _notify(progress, done, total, cfg, "cached")
        else:
            misses.append(cfg)

    # Cross-process dedup: claim each miss so N ``run_many`` processes
    # sharing one cache directory never simulate the same key twice.  A
    # key a *live* peer already claimed goes to ``foreign`` — we wait
    # for the peer's entry after our own work, overlapping the wait.
    claims: Dict[str, store_pkg.Claim] = {}
    foreign: List[RunConfig] = []
    if use_cache and store is not None:
        mine: List[RunConfig] = []
        for cfg in misses:
            key = cfg.key()
            claim = store.claim(result_key(key))
            if claim is None:
                foreign.append(cfg)
                continue
            # Won the claim — but the previous holder may have stored
            # the result between our probe and now.
            hit = _disk_load(cfg, key)
            if hit is not None:
                COUNTERS.disk_hits += 1
                _CACHE[key] = hit
                results[key] = hit
                done += 1
                manifest.record(cfg, "cached", 0.0)
                _notify(progress, done, total, cfg, "cached")
                claim.release()
                continue
            claims[key] = claim
            mine.append(cfg)
        misses = mine

    def _commit(cfg, key, result):
        """Completion site for every execution path: persist the result
        and release the key's claim so cross-process waiters unblock."""
        if use_cache:
            t0 = time.perf_counter()
            _store(cfg, key, result)
            batch.stored(cfg, key, time.perf_counter() - t0)
        claim = claims.pop(key, None)
        if claim is not None:
            claim.release()

    def _record_lane(lane, outcomes, retried_lane):
        nonlocal done
        for cfg, outcome in zip(lane, outcomes):
            result, seconds, digest, resources = outcome
            COUNTERS.simulations += 1
            results[cfg.key()] = result
            done += 1
            manifest.record(
                cfg, "run", seconds, forensics=digest, resources=resources
            )
            batch.finished(cfg, cfg.key(), resources, retried=retried_lane)
            _commit(cfg, cfg.key(), result)
            _notify(progress, done, total, cfg, "run")

    try:
        if manifest.backend == "lanes" and len(misses) > 1:
            # Lane executor: seed-sibling configs share one task each,
            # amortizing dispatch/pickling overhead across the lane.  A lane
            # failure retries its members serially (retry-once per config).
            # With one worker (or a single lane) the lanes run in-process —
            # batching semantics and lane statistics stay identical either
            # way, only the dispatch differs.
            from ..accel import lanes as lanes_mod

            lanes = lanes_mod.group_into_lanes(misses)
            if workers <= 1 or len(lanes) <= 1:
                for lane in lanes:
                    for cfg in lane:
                        batch.submitted(cfg, cfg.key())
                    try:
                        outcomes = lanes_mod.execute_lane(lane, forensics)
                    except Exception as exc:
                        outcomes = []
                        for cfg in lane:
                            batch.failed(cfg, cfg.key(), exc)
                            outcomes.append(_retry_serial(cfg, exc, exec_timed))
                        retried_lane = True
                    else:
                        retried_lane = False
                    _record_lane(lane, outcomes, retried_lane)
            else:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(lanes))
                ) as pool:
                    lane_futures = {}
                    for lane in lanes:
                        for cfg in lane:
                            batch.submitted(cfg, cfg.key())
                        lane_futures[
                            pool.submit(lanes_mod.execute_lane, lane, forensics)
                        ] = lane
                    pending = set(lane_futures)
                    while pending:
                        finished, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        for fut in finished:
                            lane = lane_futures.pop(fut)
                            try:
                                outcomes = fut.result()
                            except Exception as exc:
                                # Includes a BrokenProcessPool: every
                                # remaining lane future then fails the same
                                # way and its members finish serially here.
                                outcomes = []
                                for cfg in lane:
                                    batch.failed(cfg, cfg.key(), exc)
                                    outcomes.append(
                                        _retry_serial(cfg, exc, exec_timed)
                                    )
                                retried_lane = True
                            else:
                                retried_lane = False
                            _record_lane(lane, outcomes, retried_lane)
        elif workers <= 1 or len(misses) <= 1:
            for cfg in misses:
                key = cfg.key()
                batch.submitted(cfg, key)
                retried_once = False
                try:
                    result, seconds, digest, resources = exec_timed(cfg)
                except Exception as exc:
                    batch.failed(cfg, key, exc)
                    retried_once = True
                    result, seconds, digest, resources = _retry_serial(
                        cfg, exc, exec_timed
                    )
                COUNTERS.simulations += 1
                results[key] = result
                done += 1
                manifest.record(
                    cfg, "run", seconds, forensics=digest, resources=resources
                )
                batch.finished(cfg, key, resources, retried=retried_once)
                _commit(cfg, key, result)
                _notify(progress, done, total, cfg, "run")
        elif misses:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(misses))
                ) as pool:
                    futures = {}
                    for cfg in misses:
                        batch.submitted(cfg, cfg.key())
                        futures[pool.submit(exec_timed, cfg)] = cfg
                    retried: set = set()
                    pending = set(futures)
                    while pending:
                        finished, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        for fut in finished:
                            cfg = futures.pop(fut)
                            try:
                                result, seconds, digest, resources = fut.result()
                            except BrokenProcessPool:
                                raise  # pool is gone: fall back to serial below
                            except Exception as exc:
                                batch.failed(cfg, cfg.key(), exc)
                                if cfg.key() in retried:
                                    pool.shutdown(wait=False, cancel_futures=True)
                                    raise RuntimeError(
                                        "simulation failed twice for config "
                                        f"[{cfg.describe()}]: {exc}"
                                    ) from exc
                                retried.add(cfg.key())
                                retry = pool.submit(exec_timed, cfg)
                                futures[retry] = cfg
                                pending.add(retry)
                                continue
                            COUNTERS.simulations += 1
                            results[cfg.key()] = result
                            done += 1
                            manifest.record(
                                cfg,
                                "run",
                                seconds,
                                forensics=digest,
                                resources=resources,
                            )
                            batch.finished(
                                cfg,
                                cfg.key(),
                                resources,
                                retried=cfg.key() in retried,
                            )
                            _commit(cfg, cfg.key(), result)
                            _notify(progress, done, total, cfg, "run")
            except BrokenProcessPool as crash:
                # A worker died hard (signal/OOM): finish the remainder
                # serially, retrying each config at most once in total.
                for cfg in misses:
                    if cfg.key() in results:
                        continue
                    batch.failed(cfg, cfg.key(), crash)
                    result, seconds, digest, resources = _retry_serial(
                        cfg, crash, exec_timed
                    )
                    COUNTERS.simulations += 1
                    results[cfg.key()] = result
                    done += 1
                    manifest.record(
                        cfg, "run", seconds, forensics=digest, resources=resources
                    )
                    batch.finished(cfg, cfg.key(), resources, retried=True)
                    _commit(cfg, cfg.key(), result)
                    _notify(progress, done, total, cfg, "run")

        # Configs a live peer process claimed: wait for its entry instead
        # of recomputing (our own misses above overlapped the wait).  A
        # peer that died — or released — without storing falls back to
        # executing here.
        for cfg in foreign:
            key = cfg.key()
            t0 = time.perf_counter()
            raw = store.wait_for(result_key(key))
            hit = _disk_load(cfg, key) if raw is not None else None
            if hit is not None:
                COUNTERS.disk_hits += 1
                _CACHE[key] = hit
                results[key] = hit
                done += 1
                seconds = time.perf_counter() - t0
                manifest.record(cfg, "cached", seconds)
                batch.probe(
                    cfg,
                    key,
                    outcome="hit",
                    layer="disk",
                    seconds=seconds,
                    store=store.kind,
                )
                _notify(progress, done, total, cfg, "cached")
                continue
            claim = store.claim(result_key(key))
            if claim is not None:
                claims[key] = claim
            batch.submitted(cfg, key)
            retried_once = False
            try:
                result, seconds, digest, resources = exec_timed(cfg)
            except Exception as exc:
                batch.failed(cfg, key, exc)
                retried_once = True
                result, seconds, digest, resources = _retry_serial(
                    cfg, exc, exec_timed
                )
            COUNTERS.simulations += 1
            results[key] = result
            done += 1
            manifest.record(
                cfg, "run", seconds, forensics=digest, resources=resources
            )
            batch.finished(cfg, key, resources, retried=retried_once)
            _commit(cfg, key, result)
            _notify(progress, done, total, cfg, "run")
    finally:
        # A batch that raises (simulation failed twice) must not leave
        # its claims behind: peers would block on them until the claim
        # TTL or our process exit.
        for claim in claims.values():
            claim.release()
        claims.clear()

    batch.close(manifest.to_dict(), store)
    return [results[cfg.key()] for cfg in configs]
