"""Experiment registry: every table and figure of the paper's evaluation.

Each entry records what the paper shows, the workloads and systems
involved, and which bench target regenerates it — the per-experiment index
required by DESIGN.md.  The figure functions themselves live in
:mod:`repro.experiments.figures`.

Every figure also declares its *configuration set* up front
(:func:`experiment_configs`): the exact list of
:class:`~repro.experiments.runner.RunConfig` cells the figure consumes.
The parallel runner batches these — per figure, or the union across
figures for a full report — so a multi-seed/multi-system sweep is
wall-clock-bounded by cores instead of configs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.metrics import EVALUATION_ORDER
from ..sim.config import ForwardClass, table2_config
from ..systems import paper
from ..systems.capacity import CAPACITY_SWEEP
from ..systems import capacity as _capacity
from ..systems.spec import SystemSpec
from .runner import RunConfig


@dataclass(frozen=True)
class Experiment:
    """One table or figure of the evaluation section."""

    id: str
    title: str
    workloads: Tuple[str, ...]
    systems: Tuple[SystemSpec, ...]
    bench: str
    parameters: str = ""
    expected_shape: str = ""


ALL_SYSTEMS = (
    paper.BASELINE,
    paper.NAIVE_RS,
    paper.CHATS,
    paper.POWER,
    paper.PCHATS,
    paper.LEVC,
)

#: Contention-sensitive subset used by the sensitivity figures (running the
#: flat workloads through parameter sweeps adds cost without information).
SENSITIVE_WORKLOADS = ("genome", "kmeans-h", "kmeans-l", "yada", "llb-h")

EXPERIMENTS: Dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            id="table1",
            title="System parameters (machine model)",
            workloads=(),
            systems=(),
            bench="benchmarks/bench_table1_config.py",
            expected_shape="16 cores, 48KiB/12-way L1D, MESI directory, "
            "crossbar with 16B flits (5 data / 1 control)",
        ),
        Experiment(
            id="table2",
            title="HTM system configurations",
            workloads=(),
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_table2_config.py",
            expected_shape="retries 6/2/32/2/1/64; VSB=4; validation 50 "
            "cycles (0 for LEVC); Rrestrict/W forwarding",
        ),
        Experiment(
            id="fig1",
            title="Naive requester-speculates vs best-effort baseline",
            workloads=EVALUATION_ORDER,
            systems=(paper.BASELINE, paper.NAIVE_RS),
            bench="benchmarks/bench_fig01_naive_rs.py",
            expected_shape="naive R-S brings no benefit: >=1.0 on most "
            "workloads (cyclic dependencies are not managed)",
        ),
        Experiment(
            id="fig4",
            title="Execution time normalised to baseline",
            workloads=EVALUATION_ORDER,
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_fig04_exec_time.py",
            expected_shape="CHATS wins on genome/kmeans/yada/llb/cadd, "
            "flat on ssca2/vacation/labyrinth, loses on intruder; PCHATS "
            "best overall; means exclude the microbenchmarks",
        ),
        Experiment(
            id="fig5",
            title="Aborted transactions split by cause",
            workloads=EVALUATION_ORDER,
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_fig05_abort_reasons.py",
            expected_shape="CHATS cuts total aborts vs baseline on the "
            "forwarding-friendly workloads (~34% overall in the paper); "
            "new validation/cycle categories appear",
        ),
        Experiment(
            id="fig6",
            title="Conflicting and forwarding transactions by outcome",
            workloads=EVALUATION_ORDER,
            systems=(
                paper.NAIVE_RS,
                paper.CHATS,
                paper.PCHATS,
                paper.LEVC,
            ),
            bench="benchmarks/bench_fig06_forwarding.py",
            expected_shape="under CHATS most *forwarder* transactions "
            "commit (producers survive conflicts)",
        ),
        Experiment(
            id="fig7",
            title="Normalised interconnect flits",
            workloads=EVALUATION_ORDER,
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_fig07_network.py",
            expected_shape="CHATS/PCHATS send fewer flits than baseline "
            "despite validation traffic (less wasted work); naive R-S "
            "sends more",
        ),
        Experiment(
            id="fig8",
            title="Forwardable-block classes: R/W vs W vs Rrestrict/W",
            workloads=SENSITIVE_WORKLOADS,
            systems=(paper.CHATS, paper.PCHATS),
            bench="benchmarks/bench_fig08_forward_blocks.py",
            parameters="forward_class in {RW, W, R_RESTRICT_W}",
            expected_shape="Rrestrict/W (the in-flight-GETX heuristic) "
            "is the best configuration on average",
        ),
        Experiment(
            id="fig9",
            title="Retry threshold before the fallback path",
            workloads=SENSITIVE_WORKLOADS,
            systems=(
                paper.BASELINE,
                paper.CHATS,
                paper.POWER,
                paper.PCHATS,
            ),
            bench="benchmarks/bench_fig09_retries.py",
            parameters="retries in {1, 2, 6, 16, 32, 64}",
            expected_shape="best-effort baseline prefers ~6 retries; "
            "CHATS prefers large thresholds (32); Power ~2; PCHATS ~1",
        ),
        Experiment(
            id="fig10",
            title="VSB size x validation interval sensitivity",
            workloads=("kmeans-h", "genome", "llb-h"),
            systems=(paper.CHATS, paper.PCHATS),
            bench="benchmarks/bench_fig10_vsb_sweep.py",
            parameters="vsb_size in {1, 2, 4, 8}; interval in {25, 50, "
            "100, 200}",
            expected_shape="4 VSB entries are within a whisker of 8+ "
            "(the paper: 0.005% off 32 entries) — the sweet spot",
        ),
        Experiment(
            id="figcap",
            title="Read-set capacity sensitivity (beyond-paper extension)",
            workloads=("genome", "vacation", "llb-l"),
            systems=(_capacity.CAP_BE, _capacity.CAP_CHATS),
            bench="benchmarks/bench_figcap_capacity.py",
            parameters=f"read_set_limit in {CAPACITY_SWEEP}",
            expected_shape="capacity aborts fall monotonically as the "
            "read-set budget grows; the largest budget behaves like the "
            "paper's unbounded signatures",
        ),
        Experiment(
            id="fig11",
            title="CHATS and PCHATS vs LEVC-BE-Idealized",
            workloads=EVALUATION_ORDER,
            systems=(paper.CHATS, paper.PCHATS, paper.LEVC),
            bench="benchmarks/bench_fig11_levc.py",
            expected_shape="CHATS beats LEVC on kmeans-h; LEVC beats "
            "CHATS on yada (stalling helps its long transactions); "
            "PCHATS beats LEVC on yada too",
        ),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


# ----------------------------------------------------------------------
# Per-figure configuration sets (consumed by the parallel runner).
# ----------------------------------------------------------------------
#: Parameter sweeps of the sensitivity figures (Figs. 8-10).
FORWARD_CLASS_SWEEP = (
    ForwardClass.RW,
    ForwardClass.W,
    ForwardClass.R_RESTRICT_W,
)
RETRY_SWEEP = (1, 2, 6, 16, 32, 64)
VSB_SIZES = (1, 2, 4, 8)
VALIDATION_INTERVALS = (25, 50, 100, 200)


def _sweep_configs(workloads, systems) -> List[RunConfig]:
    return [
        RunConfig.make(w, system) for system in systems for w in workloads
    ]


def _fig1_configs(exp, workloads) -> List[RunConfig]:
    return _sweep_configs(workloads, exp.systems)


def _main_sweep_configs(exp, workloads) -> List[RunConfig]:
    return _sweep_configs(workloads, ALL_SYSTEMS)


def _fig6_configs(exp, workloads) -> List[RunConfig]:
    return _sweep_configs(workloads, exp.systems)


def _fig8_configs(
    exp, workloads, classes: Tuple[ForwardClass, ...] = FORWARD_CLASS_SWEEP
) -> List[RunConfig]:
    return [
        RunConfig.make(
            w, system, htm=table2_config(system).replace(forward_class=fc)
        )
        for system in exp.systems
        for fc in classes
        for w in workloads
    ]


def _fig9_configs(
    exp, workloads, retries: Tuple[int, ...] = RETRY_SWEEP
) -> List[RunConfig]:
    return [
        RunConfig.make(
            w, system, htm=table2_config(system).replace(retries=n)
        )
        for system in exp.systems
        for n in retries
        for w in workloads
    ]


def _fig10_configs(
    exp,
    workloads,
    sizes: Tuple[int, ...] = VSB_SIZES,
    intervals: Tuple[int, ...] = VALIDATION_INTERVALS,
) -> List[RunConfig]:
    return [
        RunConfig.make(
            w,
            system,
            htm=table2_config(system).replace(
                vsb_size=size, validation_interval=interval
            ),
        )
        for system in exp.systems
        for size in sizes
        for interval in intervals
        for w in workloads
    ]


def _figcap_configs(
    exp, workloads, limits: Tuple[int, ...] = CAPACITY_SWEEP
) -> List[RunConfig]:
    return [
        RunConfig.make(
            w, system, htm=table2_config(system).replace(read_set_limit=n)
        )
        for system in exp.systems
        for n in limits
        for w in workloads
    ]


def _fig11_configs(exp, workloads) -> List[RunConfig]:
    return _sweep_configs(
        workloads, (paper.BASELINE,) + tuple(exp.systems)
    )


_CONFIG_BUILDERS: Dict[str, Callable[..., List[RunConfig]]] = {
    "fig1": _fig1_configs,
    "fig4": _main_sweep_configs,
    "fig5": _main_sweep_configs,
    "fig6": _fig6_configs,
    "fig7": _main_sweep_configs,
    "fig8": _fig8_configs,
    "fig9": _fig9_configs,
    "fig10": _fig10_configs,
    "fig11": _fig11_configs,
    "figcap": _figcap_configs,
}


def experiment_configs(
    exp_id: str,
    workloads: Optional[Tuple[str, ...]] = None,
    **params,
) -> List[RunConfig]:
    """The exact simulation cells ``exp_id`` consumes (empty for tables).

    ``params`` forwards sweep overrides to the sensitivity figures
    (``classes`` for fig8, ``retries`` for fig9, ``sizes``/``intervals``
    for fig10, ``limits`` for figcap).  Configurations honour the ``REPRO_*`` bench defaults at
    call time, exactly like :func:`~repro.experiments.runner.run_cached`.
    """
    exp = get_experiment(exp_id)
    builder = _CONFIG_BUILDERS.get(exp_id)
    if builder is None:
        return []
    return builder(exp, tuple(workloads or exp.workloads), **params)
