"""Experiment registry: every table and figure of the paper's evaluation.

Each entry records what the paper shows, the workloads and systems
involved, and which bench target regenerates it — the per-experiment index
required by DESIGN.md.  The figure functions themselves live in
:mod:`repro.experiments.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..analysis.metrics import EVALUATION_ORDER
from ..sim.config import SystemKind


@dataclass(frozen=True)
class Experiment:
    """One table or figure of the evaluation section."""

    id: str
    title: str
    workloads: Tuple[str, ...]
    systems: Tuple[SystemKind, ...]
    bench: str
    parameters: str = ""
    expected_shape: str = ""


ALL_SYSTEMS = (
    SystemKind.BASELINE,
    SystemKind.NAIVE_RS,
    SystemKind.CHATS,
    SystemKind.POWER,
    SystemKind.PCHATS,
    SystemKind.LEVC,
)

#: Contention-sensitive subset used by the sensitivity figures (running the
#: flat workloads through parameter sweeps adds cost without information).
SENSITIVE_WORKLOADS = ("genome", "kmeans-h", "kmeans-l", "yada", "llb-h")

EXPERIMENTS: Dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            id="table1",
            title="System parameters (machine model)",
            workloads=(),
            systems=(),
            bench="benchmarks/bench_table1_config.py",
            expected_shape="16 cores, 48KiB/12-way L1D, MESI directory, "
            "crossbar with 16B flits (5 data / 1 control)",
        ),
        Experiment(
            id="table2",
            title="HTM system configurations",
            workloads=(),
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_table2_config.py",
            expected_shape="retries 6/2/32/2/1/64; VSB=4; validation 50 "
            "cycles (0 for LEVC); Rrestrict/W forwarding",
        ),
        Experiment(
            id="fig1",
            title="Naive requester-speculates vs best-effort baseline",
            workloads=EVALUATION_ORDER,
            systems=(SystemKind.BASELINE, SystemKind.NAIVE_RS),
            bench="benchmarks/bench_fig01_naive_rs.py",
            expected_shape="naive R-S brings no benefit: >=1.0 on most "
            "workloads (cyclic dependencies are not managed)",
        ),
        Experiment(
            id="fig4",
            title="Execution time normalised to baseline",
            workloads=EVALUATION_ORDER,
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_fig04_exec_time.py",
            expected_shape="CHATS wins on genome/kmeans/yada/llb/cadd, "
            "flat on ssca2/vacation/labyrinth, loses on intruder; PCHATS "
            "best overall; means exclude the microbenchmarks",
        ),
        Experiment(
            id="fig5",
            title="Aborted transactions split by cause",
            workloads=EVALUATION_ORDER,
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_fig05_abort_reasons.py",
            expected_shape="CHATS cuts total aborts vs baseline on the "
            "forwarding-friendly workloads (~34% overall in the paper); "
            "new validation/cycle categories appear",
        ),
        Experiment(
            id="fig6",
            title="Conflicting and forwarding transactions by outcome",
            workloads=EVALUATION_ORDER,
            systems=(
                SystemKind.NAIVE_RS,
                SystemKind.CHATS,
                SystemKind.PCHATS,
                SystemKind.LEVC,
            ),
            bench="benchmarks/bench_fig06_forwarding.py",
            expected_shape="under CHATS most *forwarder* transactions "
            "commit (producers survive conflicts)",
        ),
        Experiment(
            id="fig7",
            title="Normalised interconnect flits",
            workloads=EVALUATION_ORDER,
            systems=ALL_SYSTEMS,
            bench="benchmarks/bench_fig07_network.py",
            expected_shape="CHATS/PCHATS send fewer flits than baseline "
            "despite validation traffic (less wasted work); naive R-S "
            "sends more",
        ),
        Experiment(
            id="fig8",
            title="Forwardable-block classes: R/W vs W vs Rrestrict/W",
            workloads=SENSITIVE_WORKLOADS,
            systems=(SystemKind.CHATS, SystemKind.PCHATS),
            bench="benchmarks/bench_fig08_forward_blocks.py",
            parameters="forward_class in {RW, W, R_RESTRICT_W}",
            expected_shape="Rrestrict/W (the in-flight-GETX heuristic) "
            "is the best configuration on average",
        ),
        Experiment(
            id="fig9",
            title="Retry threshold before the fallback path",
            workloads=SENSITIVE_WORKLOADS,
            systems=(
                SystemKind.BASELINE,
                SystemKind.CHATS,
                SystemKind.POWER,
                SystemKind.PCHATS,
            ),
            bench="benchmarks/bench_fig09_retries.py",
            parameters="retries in {1, 2, 6, 16, 32, 64}",
            expected_shape="best-effort baseline prefers ~6 retries; "
            "CHATS prefers large thresholds (32); Power ~2; PCHATS ~1",
        ),
        Experiment(
            id="fig10",
            title="VSB size x validation interval sensitivity",
            workloads=("kmeans-h", "genome", "llb-h"),
            systems=(SystemKind.CHATS, SystemKind.PCHATS),
            bench="benchmarks/bench_fig10_vsb_sweep.py",
            parameters="vsb_size in {1, 2, 4, 8}; interval in {25, 50, "
            "100, 200}",
            expected_shape="4 VSB entries are within a whisker of 8+ "
            "(the paper: 0.005% off 32 entries) — the sweet spot",
        ),
        Experiment(
            id="fig11",
            title="CHATS and PCHATS vs LEVC-BE-Idealized",
            workloads=EVALUATION_ORDER,
            systems=(SystemKind.CHATS, SystemKind.PCHATS, SystemKind.LEVC),
            bench="benchmarks/bench_fig11_levc.py",
            expected_shape="CHATS beats LEVC on kmeans-h; LEVC beats "
            "CHATS on yada (stalling helps its long transactions); "
            "PCHATS beats LEVC on yada too",
        ),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
