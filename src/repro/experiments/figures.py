"""One entry point per figure of the paper's evaluation.

Each ``figN()`` function runs (or fetches from the cache) the simulations
the figure needs and returns a :class:`FigureResult`: the structured data
series plus a rendered text table.  The benches under ``benchmarks/`` are
thin wrappers that time these functions and print the rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import metrics
from ..analysis.tables import format_heatmap, format_stacked, format_table
from ..sim.config import ForwardClass, table2_config
from ..systems import paper
from ..systems.capacity import CAPACITY_SWEEP
from ..systems.spec import SystemSpec
from ..sim.results import SimulationResult
from .registry import (
    ALL_SYSTEMS,
    RETRY_SWEEP,
    VALIDATION_INTERVALS,
    VSB_SIZES,
    experiment_configs,
    get_experiment,
)
from .runner import run_cached, run_many


@dataclass
class FigureResult:
    """Structured output of one reproduced figure."""

    experiment_id: str
    title: str
    #: series name -> row label -> value (normalised unless stated).
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: free-form extra payloads (stacks, heat maps, raw results).
    extra: Dict[str, object] = field(default_factory=dict)
    rendering: str = ""

    def mean(self, series: str, *, geometric: bool = False) -> float:
        """STAMP-only mean of a series (micros excluded, paper convention)."""
        return metrics.mean_normalized_time(
            self.series[series], geometric=geometric
        )


def _sweep(
    workloads,
    systems,
    *,
    htm_for=None,
) -> Dict[SystemSpec, Dict[str, SimulationResult]]:
    out: Dict[SystemSpec, Dict[str, SimulationResult]] = {}
    for system in systems:
        htm = htm_for(system) if htm_for is not None else None
        out[system] = {
            w: run_cached(w, system, htm=htm) for w in workloads
        }
    return out


def _baselines(workloads) -> Dict[str, SimulationResult]:
    return {w: run_cached(w, paper.BASELINE) for w in workloads}


def _prefetch(figure_id: str, workloads, **params) -> None:
    """Batch-run a figure's declared config set before assembly.

    Every figure declares its cells up front (see
    :func:`repro.experiments.registry.experiment_configs`), so the
    parallel runner can execute them ``REPRO_WORKERS``-wide; the
    ``run_cached`` calls that build the series then hit the warm cache.
    """
    run_many(experiment_configs(figure_id, workloads, **params))


# ----------------------------------------------------------------------
# Fig. 1 — naive requester-speculates vs baseline.
# ----------------------------------------------------------------------
def fig1(workloads: Optional[Tuple[str, ...]] = None) -> FigureResult:
    exp = get_experiment("fig1")
    workloads = workloads or exp.workloads
    _prefetch("fig1", workloads)
    base = _baselines(workloads)
    naive = {w: run_cached(w, paper.NAIVE_RS) for w in workloads}
    series = {
        "Baseline": {w: 1.0 for w in workloads},
        "Naive R-S": metrics.normalized_times(naive, base),
    }
    result = FigureResult("fig1", exp.title, series)
    mean = result.mean("Naive R-S")
    result.rendering = format_table(
        "Fig. 1 — Normalized execution time, naive requester-speculates",
        metrics.order_workloads(workloads),
        series,
        footer={
            "STAMP mean (Naive R-S)": f"{mean:.3f} "
            f"({'no benefit' if mean >= 0.97 else 'unexpected gain'})"
        },
    )
    return result


# ----------------------------------------------------------------------
# Fig. 4 — execution time, all systems.
# ----------------------------------------------------------------------
#: Display labels come straight from each spec (paper systems carry the
#: Table II names the analysis layer expects).
_SYSTEM_LABELS = {spec: spec.label for spec in ALL_SYSTEMS}


def fig4(workloads: Optional[Tuple[str, ...]] = None) -> FigureResult:
    exp = get_experiment("fig4")
    workloads = workloads or exp.workloads
    _prefetch("fig4", workloads)
    runs = _sweep(workloads, ALL_SYSTEMS)
    base = runs[paper.BASELINE]
    series = {
        _SYSTEM_LABELS[s]: metrics.normalized_times(runs[s], base)
        for s in ALL_SYSTEMS
    }
    result = FigureResult("fig4", exp.title, series, extra={"runs": runs})
    footer = {}
    for s in (paper.CHATS, paper.PCHATS):
        label = _SYSTEM_LABELS[s]
        footer[f"STAMP mean ({label})"] = (
            f"arith {result.mean(label):.3f} / "
            f"geo {result.mean(label, geometric=True):.3f}"
        )
    result.rendering = format_table(
        "Fig. 4 — Execution time normalized to baseline (lower is better)",
        metrics.order_workloads(workloads),
        series,
        footer=footer,
    )
    return result


# ----------------------------------------------------------------------
# Fig. 5 — aborts split by cause.
# ----------------------------------------------------------------------
def fig5(workloads: Optional[Tuple[str, ...]] = None) -> FigureResult:
    exp = get_experiment("fig5")
    workloads = workloads or exp.workloads
    _prefetch("fig5", workloads)
    runs = _sweep(workloads, ALL_SYSTEMS)
    base = runs[paper.BASELINE]
    series = {
        _SYSTEM_LABELS[s]: metrics.normalized_aborts(runs[s], base)
        for s in ALL_SYSTEMS
    }
    stacks: Dict[str, Dict[str, Dict[str, float]]] = {}
    for s in ALL_SYSTEMS:
        stacks[_SYSTEM_LABELS[s]] = {
            w: {
                reason: count
                for reason, count in r.stats.abort_breakdown().items()
                if count
            }
            for w, r in runs[s].items()
        }
    result = FigureResult(
        "fig5", exp.title, series, extra={"stacks": stacks, "runs": runs}
    )
    chats_mean = result.mean(_SYSTEM_LABELS[paper.CHATS])
    rendering = [
        format_table(
            "Fig. 5 — Aborted transactions normalized to baseline",
            metrics.order_workloads(workloads),
            series,
            footer={
                "STAMP mean (CHATS)": f"{chats_mean:.3f} "
                f"(paper: ~0.66, a 34% reduction)"
            },
        ),
        "",
        format_stacked(
            "Fig. 5 (detail) — abort counts split by cause",
            metrics.order_workloads(workloads),
            stacks,
        ),
    ]
    result.rendering = "\n".join(rendering)
    return result


# ----------------------------------------------------------------------
# Fig. 6 — conflicted/forwarding transactions by outcome.
# ----------------------------------------------------------------------
def fig6(workloads: Optional[Tuple[str, ...]] = None) -> FigureResult:
    exp = get_experiment("fig6")
    workloads = workloads or exp.workloads
    _prefetch("fig6", workloads)
    runs = _sweep(workloads, exp.systems)
    stacks: Dict[str, Dict[str, Dict[str, float]]] = {}
    survival: Dict[str, Dict[str, float]] = {}
    for s in exp.systems:
        label = _SYSTEM_LABELS[s]
        stacks[label] = {}
        survival[label] = {}
        for w, r in runs[s].items():
            st = r.stats
            stacks[label][w] = {
                "conflicted-committed": st.conflicted_committed,
                "conflicted-aborted": st.conflicted_aborted,
                "forwarder-committed": st.forwarder_committed,
                "forwarder-aborted": st.forwarder_aborted,
                "consumer-committed": st.consumer_committed,
                "consumer-aborted": st.consumer_aborted,
            }
            fwd_total = st.forwarder_committed + st.forwarder_aborted
            survival[label][w] = (
                st.forwarder_committed / fwd_total if fwd_total else 1.0
            )
    result = FigureResult(
        "fig6",
        exp.title,
        survival,
        extra={"stacks": stacks, "runs": runs},
    )
    result.rendering = "\n".join(
        [
            format_table(
                "Fig. 6 (summary) — fraction of forwarder transactions that "
                "commit",
                metrics.order_workloads(workloads),
                survival,
            ),
            "",
            format_stacked(
                "Fig. 6 (detail) — conflicted/forwarding transactions by "
                "outcome",
                metrics.order_workloads(workloads),
                stacks,
            ),
        ]
    )
    return result


# ----------------------------------------------------------------------
# Fig. 7 — normalized network flits.
# ----------------------------------------------------------------------
def fig7(workloads: Optional[Tuple[str, ...]] = None) -> FigureResult:
    exp = get_experiment("fig7")
    workloads = workloads or exp.workloads
    _prefetch("fig7", workloads)
    runs = _sweep(workloads, ALL_SYSTEMS)
    base = runs[paper.BASELINE]
    series = {
        _SYSTEM_LABELS[s]: metrics.normalized_flits(runs[s], base)
        for s in ALL_SYSTEMS
    }
    result = FigureResult("fig7", exp.title, series, extra={"runs": runs})
    result.rendering = format_table(
        "Fig. 7 — Interconnect flits normalized to baseline",
        metrics.order_workloads(workloads),
        series,
        footer={
            "STAMP mean (CHATS)": f"{result.mean('CHATS'):.3f}",
            "STAMP mean (Naive R-S)": f"{result.mean('Naive R-S'):.3f}",
        },
    )
    return result


# ----------------------------------------------------------------------
# Fig. 8 — forwardable block classes.
# ----------------------------------------------------------------------
def fig8(workloads: Optional[Tuple[str, ...]] = None) -> FigureResult:
    exp = get_experiment("fig8")
    workloads = workloads or exp.workloads
    _prefetch("fig8", workloads)
    classes = (ForwardClass.RW, ForwardClass.W, ForwardClass.R_RESTRICT_W)
    series: Dict[str, Dict[str, float]] = {}
    raw: Dict[str, Dict[str, SimulationResult]] = {}
    for system in exp.systems:
        # Reference: R/W (Fig. 8 normalizes to CHATS with R/W).
        table = table2_config(system)
        reference = {
            w: run_cached(w, system, htm=table.replace(forward_class=ForwardClass.RW))
            for w in workloads
        }
        for fc in classes:
            htm = table.replace(forward_class=fc)
            runs = {w: run_cached(w, system, htm=htm) for w in workloads}
            label = f"{_SYSTEM_LABELS[system]} {fc.value}"
            series[label] = metrics.normalized_times(runs, reference)
            raw[label] = runs
    result = FigureResult("fig8", exp.title, series, extra={"runs": raw})
    chats_best = min(
        (sum(series[f"CHATS {fc.value}"].values()), fc.value) for fc in classes
    )[1]
    result.rendering = format_table(
        "Fig. 8 — Forwardable-block classes (normalized to R/W)",
        metrics.order_workloads(workloads),
        series,
        footer={"best CHATS class": chats_best},
    )
    return result


# ----------------------------------------------------------------------
# Fig. 9 — retry threshold sweep.
# ----------------------------------------------------------------------
RETRY_SWEEP = (1, 2, 6, 16, 32, 64)


def fig9(
    workloads: Optional[Tuple[str, ...]] = None,
    retries: Tuple[int, ...] = RETRY_SWEEP,
) -> FigureResult:
    exp = get_experiment("fig9")
    workloads = workloads or exp.workloads
    _prefetch("fig9", workloads, retries=retries)
    series: Dict[str, Dict[str, float]] = {}
    best: Dict[str, int] = {}
    for system in exp.systems:
        table = table2_config(system)
        per_retry_mean: Dict[int, float] = {}
        for n in retries:
            htm = table.replace(retries=n)
            runs = {w: run_cached(w, system, htm=htm) for w in workloads}
            label = f"{_SYSTEM_LABELS[system]} r={n}"
            cycles = {w: float(r.cycles) for w, r in runs.items()}
            series[label] = cycles
            per_retry_mean[n] = sum(cycles.values()) / len(cycles)
        best[_SYSTEM_LABELS[system]] = min(per_retry_mean, key=per_retry_mean.get)
    # Normalise each workload row to its own minimum across the sweep so
    # sweet spots are visible regardless of absolute magnitudes.
    normalized: Dict[str, Dict[str, float]] = {}
    for label, cycles in series.items():
        normalized[label] = cycles
    mins: Dict[str, float] = {}
    for w in workloads:
        mins[w] = min(series[label][w] for label in series)
    for label in series:
        normalized[label] = {w: series[label][w] / mins[w] for w in workloads}
    result = FigureResult(
        "fig9", exp.title, normalized, extra={"best_retries": best}
    )
    result.rendering = format_table(
        "Fig. 9 — Retry-threshold sweep (per-workload, normalized to the "
        "best cell)",
        metrics.order_workloads(workloads),
        normalized,
        footer={f"best retries ({k})": str(v) for k, v in best.items()},
    )
    return result


# ----------------------------------------------------------------------
# Fig. 10 — VSB size × validation interval.
# ----------------------------------------------------------------------
VSB_SIZES = (1, 2, 4, 8)
VALIDATION_INTERVALS = (25, 50, 100, 200)


def fig10(
    workloads: Optional[Tuple[str, ...]] = None,
    *,
    sizes: Tuple[int, ...] = VSB_SIZES,
    intervals: Tuple[int, ...] = VALIDATION_INTERVALS,
) -> FigureResult:
    exp = get_experiment("fig10")
    workloads = workloads or exp.workloads
    _prefetch("fig10", workloads, sizes=sizes, intervals=intervals)
    heat_time: Dict[tuple, float] = {}
    heat_aborts: Dict[tuple, float] = {}
    renderings: List[str] = []
    raw = {}
    for system in exp.systems:
        table = table2_config(system)
        # Reference cell: smallest VSB, shortest interval (the paper
        # normalizes to the bottom-left square: 50 cycles / 1 entry).
        for size in sizes:
            for interval in intervals:
                htm = table.replace(vsb_size=size, validation_interval=interval)
                runs = {w: run_cached(w, system, htm=htm) for w in workloads}
                cycles = sum(r.cycles for r in runs.values())
                aborts = sum(r.total_aborts for r in runs.values())
                raw[(system, size, interval)] = runs
                heat_time[(f"{_SYSTEM_LABELS[system]} vsb={size}", interval)] = cycles
                heat_aborts[(f"{_SYSTEM_LABELS[system]} vsb={size}", interval)] = aborts
        ref_time = heat_time[(f"{_SYSTEM_LABELS[system]} vsb={sizes[0]}", 50 if 50 in intervals else intervals[0])]
        ref_aborts = max(
            1.0,
            heat_aborts[(f"{_SYSTEM_LABELS[system]} vsb={sizes[0]}", 50 if 50 in intervals else intervals[0])],
        )
        rows = [f"{_SYSTEM_LABELS[system]} vsb={s}" for s in sizes]
        renderings.append(
            format_heatmap(
                f"Fig. 10 — {_SYSTEM_LABELS[system]}: execution time "
                "(normalized to vsb=1 @ 50 cycles); columns = validation "
                "interval",
                rows,
                list(intervals),
                {k: v / ref_time for k, v in heat_time.items() if k[0] in rows},
            )
        )
        renderings.append(
            format_heatmap(
                f"Fig. 10 — {_SYSTEM_LABELS[system]}: aborts (normalized)",
                rows,
                list(intervals),
                {k: v / ref_aborts for k, v in heat_aborts.items() if k[0] in rows},
            )
        )
    result = FigureResult(
        "fig10",
        exp.title,
        {},
        extra={"time": heat_time, "aborts": heat_aborts, "runs": raw},
    )
    result.rendering = "\n\n".join(renderings)
    return result


# ----------------------------------------------------------------------
# figcap — read-set capacity sensitivity (beyond-paper extension).
# ----------------------------------------------------------------------
def figcap(
    workloads: Optional[Tuple[str, ...]] = None,
    limits: Tuple[int, ...] = CAPACITY_SWEEP,
) -> FigureResult:
    """Sweep ``read_set_limit`` on the capacity-limited systems.

    Two renderings: capacity-abort counts per budget (the headline —
    expected to fall monotonically as the budget grows) and execution
    time normalized to each system's largest budget.
    """
    exp = get_experiment("figcap")
    workloads = workloads or exp.workloads
    _prefetch("figcap", workloads, limits=limits)
    cap_series: Dict[str, Dict[str, float]] = {}
    time_series: Dict[str, Dict[str, float]] = {}
    raw: Dict[str, Dict[str, SimulationResult]] = {}
    capacity_by_limit: Dict[str, Dict[int, int]] = {}
    for system in exp.systems:
        table = table2_config(system)
        reference: Dict[str, SimulationResult] = {}
        capacity_by_limit[system.label] = {}
        for n in limits:
            htm = table.replace(read_set_limit=n)
            runs = {w: run_cached(w, system, htm=htm) for w in workloads}
            label = f"{system.label} rs={n}"
            raw[label] = runs
            cap_series[label] = {
                w: float(r.stats.abort_breakdown().get("capacity", 0))
                for w, r in runs.items()
            }
            capacity_by_limit[system.label][n] = int(
                sum(cap_series[label].values())
            )
            if n == limits[-1]:
                reference = runs
        for n in limits:
            time_series[f"{system.label} rs={n}"] = metrics.normalized_times(
                raw[f"{system.label} rs={n}"], reference
            )
    result = FigureResult(
        "figcap",
        exp.title,
        cap_series,
        extra={
            "time": time_series,
            "capacity_by_limit": capacity_by_limit,
            "runs": raw,
        },
    )
    result.rendering = "\n".join(
        [
            format_table(
                "figcap — capacity aborts per read-set budget",
                metrics.order_workloads(workloads),
                cap_series,
                footer={
                    f"total capacity aborts ({label})": ", ".join(
                        f"rs={n}: {c}" for n, c in by_limit.items()
                    )
                    for label, by_limit in capacity_by_limit.items()
                },
            ),
            "",
            format_table(
                "figcap — execution time normalized to the largest budget",
                metrics.order_workloads(workloads),
                time_series,
            ),
        ]
    )
    return result


# ----------------------------------------------------------------------
# Fig. 11 — comparison with LEVC-BE-Idealized.
# ----------------------------------------------------------------------
def fig11(workloads: Optional[Tuple[str, ...]] = None) -> FigureResult:
    exp = get_experiment("fig11")
    workloads = workloads or exp.workloads
    _prefetch("fig11", workloads)
    base = _baselines(workloads)
    systems = (paper.CHATS, paper.PCHATS, paper.LEVC)
    runs = _sweep(workloads, systems)
    series = {
        _SYSTEM_LABELS[s]: metrics.normalized_times(runs[s], base)
        for s in systems
    }
    result = FigureResult("fig11", exp.title, series, extra={"runs": runs})
    chats = result.mean("CHATS")
    pchats = result.mean("PCHATS")
    levc = result.mean("LEVC-BE-Id")
    result.rendering = format_table(
        "Fig. 11 — Execution time over the baseline: CHATS/PCHATS vs "
        "LEVC-BE-Idealized",
        metrics.order_workloads(workloads),
        series,
        footer={
            "STAMP means": f"CHATS {chats:.3f}, PCHATS {pchats:.3f}, "
            f"LEVC {levc:.3f}",
            "CHATS vs LEVC": f"{(levc - chats) / levc * 100:+.1f}% "
            "(paper: CHATS ~4.6% ahead on average)",
        },
    )
    return result


FIGURES = {
    "fig1": fig1,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "figcap": figcap,
}


#: Schema tag of figure documents persisted through the result store.
FIGURE_DOC_SCHEMA = "repro-figure/1"


def _figure_doc_key(figure_id: str, kwargs: Dict[str, object]) -> str:
    """Store key for a cached figure document.

    Covers the code fingerprint plus every runner knob that shapes the
    sweep (threads/seed/scale) and the call kwargs, so any change that
    would alter the figure invalidates the document.
    """
    import hashlib
    import json

    from . import runner

    blob = json.dumps(
        {
            "schema": FIGURE_DOC_SCHEMA,
            "fingerprint": runner._code_fingerprint(),
            "figure": figure_id,
            "threads": runner.bench_threads(),
            "seed": runner.bench_seed(),
            "scale": runner.bench_scale(),
            "kwargs": {k: kwargs[k] for k in sorted(kwargs)},
        },
        sort_keys=True,
        default=list,
    )
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return f"figure/{figure_id}/{digest}"


def run_figure(
    figure_id: str, *, use_store: bool = True, **kwargs
) -> FigureResult:
    """Run one figure by id (``fig1`` ... ``fig11``).

    When the disk cache is enabled the assembled figure document
    (series + rendering, not the raw runs) is persisted through the
    result store under ``figure/<id>/<sha256>``; a later call with the
    same code fingerprint and parameters is served from the store
    without touching the simulator.  Store hits return an empty
    ``extra`` dict — raw :class:`SimulationResult` objects are not
    serialised.  Pass ``use_store=False`` to force assembly.
    """
    try:
        fn = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        ) from None

    from . import runner

    cache = use_store and runner.disk_cache_enabled()
    key = _figure_doc_key(figure_id, kwargs) if cache else None
    if cache:
        doc = runner.result_store().get_json(key)
        if doc is not None:
            try:
                return FigureResult(
                    experiment_id=doc["experiment_id"],
                    title=doc["title"],
                    series=doc["series"],
                    extra={},
                    rendering=doc["rendering"],
                )
            except (KeyError, TypeError):
                runner.result_store().note_corrupt(
                    key, "figure document schema mismatch"
                )

    result = fn(**kwargs)
    if cache:
        try:
            runner.result_store().put_json(
                key,
                {
                    "schema": FIGURE_DOC_SCHEMA,
                    "experiment_id": result.experiment_id,
                    "title": result.title,
                    "series": result.series,
                    "rendering": result.rendering,
                },
            )
        except OSError:
            pass
    return result
