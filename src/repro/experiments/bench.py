"""``repro bench`` — the performance regression harness.

Runs a pinned set of simulations (fixed workload, system, threads, seed,
and scale — so the amount of simulated work is bit-for-bit identical
across revisions) and reports host-side throughput:

* ``events_per_sec`` — processed engine events per second of CPU time
  (``time.process_time``), the primary regression metric.  CPU time is
  used instead of wall time because shared CI runners are noisy; each
  case also takes the best of ``repeat`` runs to shed warm-up and
  scheduling jitter.
* ``peak_rss_kb`` — the process's peak resident set after the sweep
  (``getrusage``), the memory regression metric.

Results are written to ``BENCH_<rev>.json`` (git short revision) under
``benchmarks/perf/history/`` — the working tree's accumulating audit
trail of measurements (cwd outside a source checkout);
``scripts/check_bench.py`` validates the schema and gates a run against
the committed baseline in ``benchmarks/perf/baseline.json``.

The pinned cases deliberately span the simulator's behaviour space:

* ``synth`` — the shared-counter microbenchmark: short transactions,
  high commit rate, dominated by engine + message hot paths.
* ``intruder`` — STAMP's packet-inspection workload: mixed read/write
  sets, frequent conflicts and retries.
* ``vacation`` — STAMP's reservation system: larger read sets, long
  transactions, heavy speculative forwarding under CHATS.

Every case checks the workload's own oracle (``verify`` runs inside the
simulation) — a bench run that computes wrong results fails loudly
rather than reporting a fast wrong number.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA_VERSION = 1

#: Best-of repeats per case (CLI ``--repeat`` overrides).
DEFAULT_REPEAT = 3


@dataclass(frozen=True, slots=True)
class BenchCase:
    """One pinned measurement: the workload/config tuple never changes
    across revisions, only the host-side seconds do."""

    workload: str
    system: str = "chats"
    threads: int = 8
    seed: int = 1
    scale: float = 1.0
    #: Reduced scale used by ``--quick`` (CI smoke); still pinned.
    quick_scale: float = 0.25
    #: Measured and reported but never gated: the case carries no entry
    #: in ``benchmarks/perf/baseline.json`` (check_bench prints SKIP).
    informational: bool = False

    def key(self, *, quick: bool = False) -> str:
        scale = self.quick_scale if quick else self.scale
        return (
            f"{self.workload}/{self.system}/t{self.threads}"
            f"/s{self.seed}/x{scale:g}"
        )


#: The pinned suite.  Scales are chosen so the full suite stays under a
#: minute on a laptop and ``--quick`` under ~10 s on a busy CI runner.
BENCH_CASES = (
    BenchCase("synth", scale=4.0, quick_scale=1.0),
    BenchCase("intruder", scale=0.5, quick_scale=0.2),
    BenchCase("vacation", scale=0.5, quick_scale=0.2),
    # Informational coverage of the registry-defined systems.
    BenchCase(
        "synth", system="stall", scale=2.0, quick_scale=0.5,
        informational=True,
    ),
    BenchCase(
        "synth", system="chats-ts", scale=2.0, quick_scale=0.5,
        informational=True,
    ),
    BenchCase(
        "vacation", system="cap-be", scale=0.5, quick_scale=0.2,
        informational=True,
    ),
    BenchCase(
        "intruder", system="hybrid-be", scale=0.5, quick_scale=0.2,
        informational=True,
    ),
)


def git_revision() -> str:
    """Short revision of the working tree, or ``unknown`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size in KiB (None where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        rss //= 1024
    return int(rss)


def run_case(case: BenchCase, *, quick: bool = False, repeat: int = DEFAULT_REPEAT) -> Dict:
    """Measure one pinned case; returns its result record."""
    from ..sim.config import table2_config
    from ..sim.simulator import run_simulation
    from ..systems.spec import get_spec
    from ..workloads.base import make_workload

    kind = get_spec(case.system)
    scale = case.quick_scale if quick else case.scale
    runs: List[float] = []
    events = cycles = None
    for _ in range(max(1, repeat)):
        # Fresh workload per run: the simulation mutates its memory image.
        workload = make_workload(
            case.workload, threads=case.threads, seed=case.seed, scale=scale
        )
        start = time.process_time()
        result = run_simulation(workload, kind, htm=table2_config(kind))
        seconds = time.process_time() - start
        runs.append(seconds)
        if events is None:
            events, cycles = result.events, result.cycles
        elif (events, cycles) != (result.events, result.cycles):
            raise RuntimeError(
                f"non-deterministic bench case {case.key(quick=quick)}: "
                f"({events}, {cycles}) vs ({result.events}, {result.cycles})"
            )
    best = min(runs)
    return {
        "workload": case.workload,
        "system": case.system,
        "threads": case.threads,
        "seed": case.seed,
        "scale": scale,
        "events": events,
        "cycles": cycles,
        "seconds_best": best,
        "seconds_all": runs,
        "events_per_sec": events / best if best > 0 else float("inf"),
    }


def run_suite(
    *,
    workloads: Optional[List[str]] = None,
    quick: bool = False,
    repeat: int = DEFAULT_REPEAT,
    progress=None,
) -> Dict:
    """Run the pinned suite (optionally a named subset) and return the
    full report dict (the ``BENCH_<rev>.json`` payload)."""
    cases = [
        case
        for case in BENCH_CASES
        if workloads is None or case.workload in workloads
    ]
    if not cases:
        known = [c.workload for c in BENCH_CASES]
        raise ValueError(f"no bench cases selected; choose from {known}")
    results: Dict[str, Dict] = {}
    for case in cases:
        if progress is not None:
            progress(case.key(quick=quick))
        results[case.key(quick=quick)] = run_case(
            case, quick=quick, repeat=repeat
        )
    from .. import accel

    return {
        "schema": SCHEMA_VERSION,
        "rev": git_revision(),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "backend": accel.resolved_backend(),
        "quick": quick,
        "repeat": repeat,
        "peak_rss_kb": peak_rss_kb(),
        "cases": results,
    }


def history_dir() -> Optional[Path]:
    """The working tree's measurement archive (``benchmarks/perf/history``),
    or None when running outside a source checkout."""
    root = Path(__file__).resolve().parents[3]
    candidate = root / "benchmarks" / "perf" / "history"
    return candidate if candidate.is_dir() else None


def default_output_path(report: Dict, directory: Optional[Path] = None) -> Path:
    """Where ``repro bench`` writes its report.

    Reports land in ``benchmarks/perf/history/`` when run from a source
    checkout, so the audit trail of measurements accumulates in one
    git-visible place; outside a checkout they fall back to the cwd.
    Non-default backends are stamped into the filename
    (``BENCH_<rev>+<backend>.json``) so a pure-Python report is never
    silently overwritten by an accelerated one.
    """
    base = directory if directory is not None else history_dir() or Path.cwd()
    backend = report.get("backend", "python")
    stamp = "" if backend == "python" else f"+{backend}"
    return base / f"BENCH_{report['rev']}{stamp}.json"


def write_report(report: Dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def format_report(report: Dict) -> str:
    """Human-readable summary table."""
    lines = [
        f"bench @ {report['rev']}  python {report['python']}  "
        f"backend={report.get('backend', 'python')}  "
        f"repeat={report['repeat']}{'  (quick)' if report['quick'] else ''}",
        f"{'case':<34s} {'events':>9s} {'best s':>8s} {'events/s':>12s}",
    ]
    for key in sorted(report["cases"]):
        case = report["cases"][key]
        lines.append(
            f"{key:<34s} {case['events']:>9,d} {case['seconds_best']:>8.3f} "
            f"{case['events_per_sec']:>12,.0f}"
        )
    if report.get("peak_rss_kb"):
        lines.append(f"peak RSS: {report['peak_rss_kb'] / 1024:.1f} MiB")
    return "\n".join(lines)
