"""Crossbar interconnect model.

The paper's machine uses a single-cycle crossbar (Table I).  We model it as
a fixed per-hop latency and count flits per message class for Fig. 7.  The
network never reorders messages between the same (src, dst) pair: ties in
delivery time are broken by send order via the engine's FIFO tie-break.

``send`` is one of the two hottest functions in the simulator (with
``Engine.run``), so the per-message work is precomputed: flit counts are
bound at construction, per-kind accounting indexes a dense list via
``kind.idx`` instead of hashing enum members, and the deliver callback is
scheduled directly (no wrapper frame).  The *deliver callback* owns
recycling: the simulator's router ``release()``s each message back to the
:class:`~repro.net.messages.Message` free list after the handler returns,
unless the handler retained it.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from .. import accel
from ..obs.events import MsgSent, SpecForward
from ..obs.probe import Probe
from ..sim.config import SystemConfig
from ..sim.engine import Engine
from .messages import Message, MessageKind


class Crossbar:
    """Delivers messages after ``link_latency`` cycles and accounts flits.

    ``send`` is an *instance* slot, bound at construction to either the
    pure-Python implementation or — when the compiled backend is active
    and the engine is the compiled one — to the C ``SendCore``'s send,
    which keeps the flit accounting, probe gate, and delivery schedule
    entirely in C.  Counter reads (``stats``/``flits_by_kind``) are
    transparent to the choice.
    """

    __slots__ = (
        "_engine",
        "_config",
        "_deliver",
        "_probe",
        "_schedule",
        "_data_flits",
        "_control_flits",
        "_link_latency",
        "flits_sent",
        "messages_sent",
        "_flits_by_idx",
        "send",
        "_sendcore",
    )

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        deliver: Callable[[Message], None],
        *,
        probe: Optional[Probe] = None,
    ):
        self._engine = engine
        self._config = config
        self._deliver = deliver
        self._probe = probe if probe is not None else Probe()
        self._schedule = engine.schedule
        self._data_flits = config.data_message_flits
        self._control_flits = config.control_message_flits
        self._link_latency = config.link_latency
        self.flits_sent: int = 0
        self.messages_sent: int = 0
        self._flits_by_idx = [0] * len(MessageKind)
        core = accel.hotcore()
        if core is not None and isinstance(engine, core.Engine):
            self._sendcore = core.SendCore(
                engine=engine,
                deliver=deliver,
                probe=self._probe,
                emit_hook=self._emit_traced,
                link_latency=self._link_latency,
                data_flits=self._data_flits,
                control_flits=self._control_flits,
            )
            self.send = self._sendcore.send
        else:
            self._sendcore = None
            self.send = self._send_python

    def finalize_deliver(self, deliver: Callable[[Message], None]) -> None:
        """Rebind the delivery callback once the handler tables exist.

        The crossbar is constructed before the L1s and directory, so the
        simulator wires the real router (the compiled dense router, or
        its own ``_route``) here.
        """
        self._deliver = deliver
        if self._sendcore is not None:
            self._sendcore.set_deliver(deliver)

    def _counters(self):
        """(flits_sent, messages_sent, per-kind flit list) — whichever
        side of the backend actually counted."""
        core = self._sendcore
        if core is None:
            return self.flits_sent, self.messages_sent, self._flits_by_idx
        return core.flits_sent, core.messages_sent, core.flits_list()

    @property
    def flits_by_kind(self) -> Counter:
        """Per-kind flit totals (Counter keyed by :class:`MessageKind`)."""
        _, _, by_idx = self._counters()
        return Counter(
            {
                kind: by_idx[kind.idx]
                for kind in MessageKind
                if by_idx[kind.idx]
            }
        )

    def _emit_traced(self, msg: Message) -> None:
        """Probe emission for a traced send (the compiled send calls
        this only when subscribers exist, mirroring the Python gate)."""
        kind = msg.kind
        now = self._engine.now
        probe = self._probe
        probe.emit(
            MsgSent(
                cycle=now,
                src=msg.src,
                dst=msg.dst,
                msg_kind=kind.value,
                block=msg.block,
                pic=msg.pic,
                power=msg.power,
                is_validation=msg.is_validation,
                non_transactional=msg.non_transactional,
                action=msg.action,
            )
        )
        if kind is MessageKind.SPEC_RESP:
            probe.emit(
                SpecForward(
                    cycle=now,
                    producer=msg.src,
                    consumer=msg.dst,
                    block=msg.block,
                    pic=msg.pic,
                )
            )

    def _send_python(self, msg: Message, *, extra_delay: int = 0) -> None:
        """Inject ``msg``; it is delivered after the link latency."""
        kind = msg.kind
        flits = self._data_flits if kind.carries_data else self._control_flits
        self.flits_sent += flits
        self.messages_sent += 1
        self._flits_by_idx[kind.idx] += flits
        probe = self._probe
        if probe._subscribers:
            now = self._engine.now
            probe.emit(
                MsgSent(
                    cycle=now,
                    src=msg.src,
                    dst=msg.dst,
                    msg_kind=kind.value,
                    block=msg.block,
                    pic=msg.pic,
                    power=msg.power,
                    is_validation=msg.is_validation,
                    non_transactional=msg.non_transactional,
                    action=msg.action,
                )
            )
            if kind is MessageKind.SPEC_RESP:
                probe.emit(
                    SpecForward(
                        cycle=now,
                        producer=msg.src,
                        consumer=msg.dst,
                        block=msg.block,
                        pic=msg.pic,
                    )
                )
        if extra_delay:
            self._schedule(self._link_latency + extra_delay, self._deliver, msg)
        else:
            self._schedule(self._link_latency, self._deliver, msg)

    def stats(self) -> Dict[str, int]:
        validation_kinds = (MessageKind.GETX, MessageKind.SPEC_RESP)
        flits_sent, messages_sent, by_idx = self._counters()
        return {
            "flits": flits_sent,
            "messages": messages_sent,
            "data_flits": sum(
                by_idx[kind.idx] for kind in MessageKind if kind.carries_data
            ),
            "control_flits": sum(
                by_idx[kind.idx] for kind in MessageKind if not kind.carries_data
            ),
            "spec_resp_flits": by_idx[MessageKind.SPEC_RESP.idx],
            "_validation_kinds": sum(
                by_idx[kind.idx] for kind in validation_kinds
            ),
        }
