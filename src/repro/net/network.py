"""Crossbar interconnect model.

The paper's machine uses a single-cycle crossbar (Table I).  We model it as
a fixed per-hop latency and count flits per message class for Fig. 7.  The
network never reorders messages between the same (src, dst) pair: ties in
delivery time are broken by send order via the engine's FIFO tie-break.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from ..obs.events import MsgSent, SpecForward
from ..obs.probe import Probe
from ..sim.config import SystemConfig
from ..sim.engine import Engine
from .messages import Message, MessageKind


class Crossbar:
    """Delivers messages after ``link_latency`` cycles and accounts flits."""

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        deliver: Callable[[Message], None],
        *,
        probe: Optional[Probe] = None,
    ):
        self._engine = engine
        self._config = config
        self._deliver = deliver
        self._probe = probe if probe is not None else Probe()
        self.flits_sent: int = 0
        self.messages_sent: int = 0
        self.flits_by_kind: Counter = Counter()

    def send(self, msg: Message, *, extra_delay: int = 0) -> None:
        """Inject ``msg``; it is delivered after the link latency."""
        flits = (
            self._config.data_message_flits
            if msg.kind.carries_data
            else self._config.control_message_flits
        )
        self.flits_sent += flits
        self.messages_sent += 1
        self.flits_by_kind[msg.kind] += flits
        probe = self._probe
        if probe:
            now = self._engine.now
            probe.emit(
                MsgSent(
                    cycle=now,
                    src=msg.src,
                    dst=msg.dst,
                    msg_kind=msg.kind.value,
                    block=msg.block,
                    pic=msg.pic,
                    power=msg.power,
                    is_validation=msg.is_validation,
                    non_transactional=msg.non_transactional,
                    action=msg.action,
                )
            )
            if msg.kind is MessageKind.SPEC_RESP:
                probe.emit(
                    SpecForward(
                        cycle=now,
                        producer=msg.src,
                        consumer=msg.dst,
                        block=msg.block,
                        pic=msg.pic,
                    )
                )
        delay = self._config.link_latency + extra_delay
        self._engine.schedule(delay, self._deliver, msg)

    def stats(self) -> Dict[str, int]:
        validation_kinds = (MessageKind.GETX, MessageKind.SPEC_RESP)
        return {
            "flits": self.flits_sent,
            "messages": self.messages_sent,
            "data_flits": sum(
                n for kind, n in self.flits_by_kind.items() if kind.carries_data
            ),
            "control_flits": sum(
                n for kind, n in self.flits_by_kind.items() if not kind.carries_data
            ),
            "spec_resp_flits": self.flits_by_kind.get(MessageKind.SPEC_RESP, 0),
            "_validation_kinds": sum(
                self.flits_by_kind.get(kind, 0) for kind in validation_kinds
            ),
        }
