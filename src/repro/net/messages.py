"""Coherence message taxonomy and flit accounting.

The simplified MESI protocol exchanges the message kinds below.  For
Fig. 7 the only property that matters is whether a message carries a data
payload (5 flits at 16-byte flits for a 64-byte line plus header) or is
control-only (1 flit), mirroring Table I.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class MessageKind(Enum):
    # Requests (core → directory).
    GETS = "GETS"  # read permission
    GETX = "GETX"  # exclusive / write permission
    UPGRADE = "UPGRADE"  # S → M without data
    # Directory → owner/sharers.
    FWD_GETS = "FwdGETS"
    FWD_GETX = "FwdGETX"
    INV = "Inv"
    # Responses.
    DATA = "Data"  # data, shared permission
    DATA_E = "DataE"  # data, exclusive permission
    SPEC_RESP = "SpecResp"  # speculative data hint, no permission (CHATS)
    NACK = "Nack"  # negative response, no data (PowerTM holder)
    ACK = "Ack"  # invalidation acknowledgement
    # Core → directory notifications.
    CANCEL = "Cancel"  # request cancelled after SpecResp (unblock)
    UNBLOCK = "Unblock"  # request completed
    WRITEBACK = "Writeback"  # eviction of an owned block

    @property
    def carries_data(self) -> bool:
        return self in (
            MessageKind.DATA,
            MessageKind.DATA_E,
            MessageKind.SPEC_RESP,
            MessageKind.WRITEBACK,
        )


#: Node id of the directory in message src/dst fields.
DIRECTORY = -1

_message_ids = itertools.count()


@dataclass
class Message:
    """One message on the interconnect.

    ``pic`` carries the sender's Position-in-Chain at *send* time (stale by
    delivery time if the sender changed it meanwhile — deliberately so, per
    Section IV-C).  ``power`` marks messages from an elevated-priority
    transaction.  ``epoch`` tags the requester's transaction attempt so that
    responses to a dead attempt can be recognised and dropped.  ``req_id``
    threads a response back to the request that caused it.
    """

    kind: MessageKind
    src: int
    dst: int
    block: int
    data: Optional[Tuple[int, ...]] = None
    requester: Optional[int] = None
    exclusive: bool = False
    pic: Optional[int] = None
    power: bool = False
    timestamp: Optional[int] = None
    epoch: int = 0
    req_id: int = 0
    can_consume: bool = True
    is_validation: bool = False
    non_transactional: bool = False
    # LEVC-BE-Idealized: requester chain-endpoint flags (idealized — carried
    # on every request at no cost, like its ideal timestamps).
    req_produced: bool = False
    req_consumed: bool = False
    # UNBLOCK sub-action from a probed cache back to the directory:
    # 'xfer' (ownership moved to requester), 'downgrade' (owner became
    # sharer), 'aborted' (holder aborted; supply memory data),
    # 'not_present' (stale owner; supply memory data).
    action: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_message_ids))

    @property
    def flits(self) -> int:
        # Resolved by the network against its configured flit counts; this
        # property only distinguishes the payload class.
        return 5 if self.kind.carries_data else 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.kind.value} {self.src}->{self.dst} blk={self.block:#x}"
            f"{' V' if self.is_validation else ''}"
            f"{' P' if self.power else ''} e{self.epoch}>"
        )
