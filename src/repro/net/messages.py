"""Coherence message taxonomy and flit accounting.

The simplified MESI protocol exchanges the message kinds below.  For
Fig. 7 the only property that matters is whether a message carries a data
payload (5 flits at 16-byte flits for a 64-byte line plus header) or is
control-only (1 flit), mirroring Table I.

Hot-path design: a :class:`Message` is created for every hop of every
coherence exchange, so it is a ``__slots__`` class (no per-instance
``__dict__``) backed by a bounded free-list pool — the interconnect
recycles delivered messages unless a handler retained one (directory
queueing, invalidation rounds).  The per-kind hot attributes
(``carries_data``, ``idx``) are precomputed once on the enum members, so
the send path pays plain C-speed attribute loads instead of property
calls and enum hashing.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import List, Optional, Tuple


class MessageKind(Enum):
    # Requests (core → directory).
    GETS = "GETS"  # read permission
    GETX = "GETX"  # exclusive / write permission
    UPGRADE = "UPGRADE"  # S → M without data
    # Directory → owner/sharers.
    FWD_GETS = "FwdGETS"
    FWD_GETX = "FwdGETX"
    INV = "Inv"
    # Responses.
    DATA = "Data"  # data, shared permission
    DATA_E = "DataE"  # data, exclusive permission
    SPEC_RESP = "SpecResp"  # speculative data hint, no permission (CHATS)
    NACK = "Nack"  # negative response, no data (PowerTM holder)
    ACK = "Ack"  # invalidation acknowledgement
    # Core → directory notifications.
    CANCEL = "Cancel"  # request cancelled after SpecResp (unblock)
    UNBLOCK = "Unblock"  # request completed
    WRITEBACK = "Writeback"  # eviction of an owned block


# Precompute the hot per-kind attributes once.  ``carries_data`` used to
# be a property doing tuple membership per call; it is now a plain bool
# on each member (read-only by convention).  ``idx`` gives each kind a
# dense index for table-driven dispatch and flit accounting.
_DATA_KINDS = frozenset(
    (
        MessageKind.DATA,
        MessageKind.DATA_E,
        MessageKind.SPEC_RESP,
        MessageKind.WRITEBACK,
    )
)
for _i, _kind in enumerate(MessageKind):
    _kind.idx = _i
    _kind.carries_data = _kind in _DATA_KINDS


#: Node id of the directory in message src/dst fields.
DIRECTORY = -1

_message_ids = itertools.count()

#: Recycled message instances; bounded so a pathological burst cannot
#: pin memory forever.
_POOL_LIMIT = 512


class Message:
    """One message on the interconnect.

    ``pic`` carries the sender's Position-in-Chain at *send* time (stale by
    delivery time if the sender changed it meanwhile — deliberately so, per
    Section IV-C).  ``power`` marks messages from an elevated-priority
    transaction.  ``epoch`` tags the requester's transaction attempt so that
    responses to a dead attempt can be recognised and dropped.  ``req_id``
    threads a response back to the request that caused it.
    """

    __slots__ = (
        "kind",
        "src",
        "dst",
        "block",
        "data",
        "requester",
        "exclusive",
        "pic",
        "power",
        "timestamp",
        "epoch",
        "req_id",
        "can_consume",
        "is_validation",
        "non_transactional",
        "req_produced",
        "req_consumed",
        "action",
        "uid",
        "_retained",
        "_pooled",
    )

    _pool: List["Message"] = []

    def __new__(cls, *args, **kwargs):
        pool = cls._pool
        if pool:
            return pool.pop()
        return super().__new__(cls)

    def __init__(
        self,
        kind: MessageKind,
        src: int = 0,
        dst: int = 0,
        block: int = 0,
        data: Optional[Tuple[int, ...]] = None,
        requester: Optional[int] = None,
        exclusive: bool = False,
        pic: Optional[int] = None,
        power: bool = False,
        timestamp: Optional[int] = None,
        epoch: int = 0,
        req_id: int = 0,
        can_consume: bool = True,
        is_validation: bool = False,
        non_transactional: bool = False,
        # LEVC-BE-Idealized: requester chain-endpoint flags (idealized —
        # carried on every request at no cost, like its ideal timestamps).
        req_produced: bool = False,
        req_consumed: bool = False,
        # UNBLOCK sub-action from a probed cache back to the directory:
        # 'xfer' (ownership moved to requester), 'downgrade' (owner became
        # sharer), 'aborted' (holder aborted; supply memory data),
        # 'not_present' (stale owner; supply memory data), 'recv'
        # (grantee acknowledges a directory-sourced response).
        action: Optional[str] = None,
    ):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.block = block
        self.data = data
        self.requester = requester
        self.exclusive = exclusive
        self.pic = pic
        self.power = power
        self.timestamp = timestamp
        self.epoch = epoch
        self.req_id = req_id
        self.can_consume = can_consume
        self.is_validation = is_validation
        self.non_transactional = non_transactional
        self.req_produced = req_produced
        self.req_consumed = req_consumed
        self.action = action
        self.uid = next(_message_ids)
        self._retained = False
        self._pooled = False

    # ------------------------------------------------------------------
    def retain(self) -> "Message":
        """Opt this message out of post-delivery recycling (a handler
        stored it past the delivery callback)."""
        self._retained = True
        return self

    def release(self) -> None:
        """Return the message to the free list.

        No-op for retained instances (their lifetime is managed by
        whoever stored them) and idempotent for already-released ones.
        References are cleared so a use-after-release fails loudly on
        ``kind`` instead of silently reading stale fields.
        """
        if self._retained or self._pooled:
            return
        self._pooled = True
        self.kind = None  # type: ignore[assignment]
        self.data = None
        self.action = None
        pool = Message._pool
        if len(pool) < _POOL_LIMIT:
            pool.append(self)

    @property
    def flits(self) -> int:
        # Resolved by the network against its configured flit counts; this
        # property only distinguishes the payload class.
        return 5 if self.kind.carries_data else 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is None:
            return "<released Message>"
        return (
            f"<{self.kind.value} {self.src}->{self.dst} blk={self.block:#x}"
            f"{' V' if self.is_validation else ''}"
            f"{' P' if self.power else ''} e{self.epoch}>"
        )
