"""Pluggable result-store subsystem: selection mirroring ``repro.accel``.

Two backends sit behind one :class:`~repro.store.base.ResultStore`
interface:

``legacy``
    Today's one-JSON-file-per-entry layout
    (:class:`~repro.store.legacy.LegacyJsonStore`) — kept readable and
    writable so pre-store caches keep hitting unmigrated.
``sharded``
    The default (:class:`~repro.store.sharded.ShardedStore`):
    key-prefix shards of append-only segment files holding
    zlib-compressed payloads behind a per-shard index, with advisory
    file locks, cross-process execution claims, ``compact``/``gc``
    maintenance and an LRU-by-atime eviction policy.

Selection order follows the accel precedent exactly: an explicit
:func:`select_store` call (the CLI's ``--store``) wins, else the
``REPRO_STORE`` environment variable, else ``auto``.  ``auto`` resolves
per cache directory: a directory already holding a legacy-layout cache
(and no sharded store) stays ``legacy`` so existing entries keep
resolving; anything else gets ``sharded``.  A sharded store that cannot
initialise on its directory (foreign layout version, ``store`` path
squatted by a file) degrades to ``legacy`` with a single
:class:`RuntimeWarning` per process — same warn-once-fallback semantics
as an unavailable accel backend.  Selection also writes ``REPRO_STORE``
so ``ProcessPoolExecutor`` workers inherit the choice.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from .base import (  # noqa: F401  (re-exported API surface)
    CLAIM_TTL_SECONDS,
    Claim,
    FileLock,
    MigrationError,
    ResultStore,
    STORE_SCHEMA,
    StoreCounters,
    StoreError,
    StoreInitError,
)
from .legacy import LegacyJsonStore, looks_like_legacy_cache
from .migrate import migrate_cache  # noqa: F401
from .sharded import ShardedStore

#: Names accepted by ``select_store`` / ``--store`` / REPRO_STORE.
STORES = ("legacy", "sharded", "auto")

_ENV_VAR = "REPRO_STORE"
_selected: Optional[str] = None  # None -> read from the environment
_warned_fallback = False


class UnknownStoreError(ValueError):
    """Raised for a store name outside :data:`STORES`."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown store {name!r}; choose from {', '.join(STORES)}"
        )


def select_store(name: str) -> str:
    """Select ``name`` for this process (and, via the environment, for
    pool workers).  Returns the requested name."""
    if name not in STORES:
        raise UnknownStoreError(name)
    global _selected
    _selected = name
    os.environ[_ENV_VAR] = name
    return name


def current_store() -> str:
    """The *requested* store kind (may be ``auto``)."""
    if _selected is not None:
        return _selected
    env = os.environ.get(_ENV_VAR, "").strip()
    if env:
        if env not in STORES:
            raise UnknownStoreError(env)
        return env
    return "auto"


def resolve_kind(root: Path) -> str:
    """The concrete backend ``auto`` picks for ``root``: a directory
    already holding a legacy cache (and no sharded store) stays legacy;
    everything else is sharded."""
    requested = current_store()
    if requested != "auto":
        return requested
    if looks_like_legacy_cache(Path(root)):
        return "legacy"
    return "sharded"


def _warn_sharded_fallback(reason: str) -> None:
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        f"sharded result store unavailable ({reason}); "
        "falling back to the legacy flat-JSON store",
        RuntimeWarning,
        stacklevel=3,
    )


def open_store(root, kind: Optional[str] = None) -> ResultStore:
    """Open the result store for cache directory ``root``.

    ``kind`` overrides the selection (used by migrate, which needs both
    backends on one directory at once).  A sharded store that cannot
    initialise degrades to legacy with one warning per process.
    """
    root = Path(root)
    kind = kind if kind is not None else resolve_kind(root)
    if kind == "legacy":
        return LegacyJsonStore(root)
    if kind != "sharded":
        raise UnknownStoreError(kind)
    try:
        return ShardedStore(root)
    except StoreInitError as exc:
        _warn_sharded_fallback(str(exc))
        return LegacyJsonStore(root)


@contextlib.contextmanager
def use(name: str) -> Iterator[str]:
    """Temporarily select ``name`` (tests); restores the prior state."""
    global _selected
    prior_selected = _selected
    prior_env = os.environ.get(_ENV_VAR)
    try:
        yield select_store(name)
    finally:
        _selected = prior_selected
        if prior_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = prior_env


# ----------------------------------------------------------------------
# Per-directory instance cache (one store object per root+kind, so the
# runner, telemetry, forensics, and figures all share counters, index
# caches, and pending-atime state within a process).
# ----------------------------------------------------------------------
_instances: Dict[Tuple[str, str], ResultStore] = {}


def store_for(root) -> ResultStore:
    """The shared store instance for ``root`` under the current
    selection (resolution is re-checked per call, so flipping
    ``REPRO_STORE`` or migrating a directory takes effect immediately)."""
    root = Path(root)
    kind = resolve_kind(root)
    cache_key = (str(root), kind)
    store = _instances.get(cache_key)
    if store is None:
        store = open_store(root, kind)
        # open_store may have degraded sharded -> legacy; cache under
        # the *resolved* kind so the fallback is also shared.
        _instances[(str(root), store.kind)] = store
        if store.kind != kind:
            _instances[cache_key] = store
    return store


def drop_cached_instances() -> None:
    """Flush and forget every cached store instance (tests; migrate)."""
    for store in list(_instances.values()):
        try:
            store.flush()
        except (OSError, StoreError):
            pass
    _instances.clear()
