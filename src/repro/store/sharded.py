"""``ShardedStore``: the default compacting, concurrent-writer backend.

Layout under the cache directory:

.. code-block:: text

    <cache_dir>/store/
      META.json                      layout schema + shard count
      claims/                        cross-process execution claims
      shards/<0..f>/                 16 shards by sha256(key) nibble
        LOCK                         advisory flock guarding mutations
        index.json                   key -> (segment, offset, lengths,
                                     crc32, atime, put_unix)
        seg-<nnnnnn>.seg             append-only segment files

Segment record format (little-endian)::

    magic "RST1" | u32 key_len | u32 stored_len | u32 raw_len | u32 crc
    | key utf-8 | zlib(payload)

``crc`` is the crc32 of the *compressed* bytes, checked on every read;
the key travels in the record so segments are self-describing (a lost
index is rebuildable by scanning).  Writers append under the shard's
``LOCK`` and commit by atomically replacing ``index.json`` — the index
replace is the linearisation point, so readers (which take no lock)
either see the old entry set or the new one, never a torn state.  A
record whose writer died before the index commit is unreferenced
garbage, reclaimed by the next :meth:`ShardedStore.compact`.

Reads stat-check the index before reuse, so cross-process writes become
visible immediately; a read that loses a race against ``compact``
(segment replaced underfoot) reloads the index once and retries.

Eviction (:meth:`gc`) is LRU by *entry* atime with a byte budget:
read atimes accumulate write-behind per process and are folded into the
index on the next locked mutation (put/flush/gc/compact), keeping the
hot read path free of index rewrites.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .base import (
    FileLock,
    ResultStore,
    StoreInitError,
    atomic_write_bytes,
    namespace_histogram,
    stats_document,
)

#: Layout version of META.json / index.json (not the stats document).
LAYOUT_SCHEMA = "repro-store-layout/1"

#: Shard count (sha256 hex nibble).  Fixed at store creation and
#: recorded in META.json; changing it requires a migrate.
SHARD_COUNT = 16

#: Roll to a fresh segment file once the active one exceeds this.
SEGMENT_ROLL_BYTES = 4 * 1024 * 1024

_MAGIC = b"RST1"
_HEADER = struct.Struct("<4sIIII")  # magic, key_len, stored_len, raw_len, crc


def _shard_of(key: str) -> str:
    import hashlib

    return hashlib.sha256(key.encode("utf-8")).hexdigest()[0]


class ShardedStore(ResultStore):
    """Key-prefix-sharded append-only segment store."""

    kind = "sharded"

    def __init__(self, root: Path):
        super().__init__(root)
        self.base = self.root / "store"
        meta_path = self.base / "META.json"
        if self.base.exists() and not self.base.is_dir():
            raise StoreInitError(
                f"{self.base} exists and is not a directory"
            )
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text("utf-8"))
            except (OSError, ValueError) as exc:
                raise StoreInitError(
                    f"unreadable store meta {meta_path}: {exc}"
                ) from exc
            if meta.get("schema") != LAYOUT_SCHEMA:
                raise StoreInitError(
                    f"incompatible store layout {meta.get('schema')!r} "
                    f"(this build speaks {LAYOUT_SCHEMA})"
                )
            self.shard_count = int(meta.get("shards", SHARD_COUNT))
        else:
            self.shard_count = SHARD_COUNT
            try:
                atomic_write_bytes(
                    meta_path,
                    json.dumps(
                        {
                            "schema": LAYOUT_SCHEMA,
                            "shards": self.shard_count,
                            "segment_roll_bytes": SEGMENT_ROLL_BYTES,
                            "created_unix": int(time.time()),
                        },
                        sort_keys=True,
                    ).encode("utf-8")
                    + b"\n",
                )
            except OSError as exc:
                raise StoreInitError(
                    f"cannot initialise sharded store under {self.root}: "
                    f"{exc}"
                ) from exc
        # Per-shard in-process cache: (index dict, index stat signature).
        self._index_cache: Dict[str, Tuple[Dict, Tuple[int, int]]] = {}
        # Write-behind read atimes, folded in on the next locked mutation.
        self._pending_atimes: Dict[str, float] = {}

    # -- paths -----------------------------------------------------------
    def _shard_dir(self, shard: str) -> Path:
        return self.base / "shards" / shard

    def _index_path(self, shard: str) -> Path:
        return self._shard_dir(shard) / "index.json"

    def _lock(self, shard: str) -> FileLock:
        return FileLock(self._shard_dir(shard) / "LOCK")

    def _claims_dir(self) -> Path:
        return self.base / "claims"

    # -- index -----------------------------------------------------------
    @staticmethod
    def _empty_index() -> Dict:
        return {"schema": LAYOUT_SCHEMA, "entries": {}, "next_seg": 1}

    def _load_index(self, shard: str, *, fresh: bool = False) -> Dict:
        """Read a shard's index, reusing the in-process copy while the
        file's (mtime_ns, size) signature is unchanged."""
        path = self._index_path(shard)
        try:
            st = path.stat()
            sig = (st.st_mtime_ns, st.st_size)
        except OSError:
            self._index_cache.pop(shard, None)
            return self._empty_index()
        if not fresh:
            cached = self._index_cache.get(shard)
            if cached is not None and cached[1] == sig:
                return cached[0]
        try:
            index = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            # Mid-replace race or torn index: one retry, then empty.
            try:
                index = json.loads(path.read_text("utf-8"))
            except (OSError, ValueError):
                return self._empty_index()
        if not isinstance(index, dict) or "entries" not in index:
            return self._empty_index()
        self._index_cache[shard] = (index, sig)
        return index

    def _write_index(self, shard: str, index: Dict) -> None:
        atomic_write_bytes(
            self._index_path(shard),
            json.dumps(index, sort_keys=True).encode("utf-8"),
        )
        self._index_cache.pop(shard, None)

    def _fold_atimes(self, shard: str, index: Dict) -> None:
        """Merge this process's pending read atimes for ``shard`` into a
        locked, about-to-be-written index."""
        entries = index["entries"]
        for key in [k for k in self._pending_atimes if _shard_of(k) == shard]:
            atime = self._pending_atimes.pop(key)
            entry = entries.get(key)
            if entry is not None and atime > float(entry.get("atime", 0.0)):
                entry["atime"] = round(atime, 3)

    # -- segments --------------------------------------------------------
    def _segment_path(self, shard: str, name: str) -> Path:
        return self._shard_dir(shard) / name

    def _append_record(
        self, shard: str, index: Dict, key: str, payload: bytes
    ) -> Dict[str, object]:
        """Append one record to the shard's active segment (caller holds
        the shard lock); returns the new index entry."""
        stored = zlib.compress(payload)
        crc = zlib.crc32(stored) & 0xFFFFFFFF
        key_bytes = key.encode("utf-8")
        seg_no = int(index.get("next_seg", 1))
        name = f"seg-{seg_no:06d}.seg"
        path = self._segment_path(shard, name)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "ab") as fh:
            offset = fh.tell()
            fh.write(
                _HEADER.pack(
                    _MAGIC, len(key_bytes), len(stored), len(payload), crc
                )
            )
            fh.write(key_bytes)
            fh.write(stored)
            fh.flush()
            end = fh.tell()
        if end >= SEGMENT_ROLL_BYTES:
            index["next_seg"] = seg_no + 1
        now = round(time.time(), 3)
        return {
            "seg": name,
            "off": offset,
            "len": len(stored),
            "raw_len": len(payload),
            "crc": crc,
            "atime": now,
            "put_unix": now,
        }

    def _read_record(
        self, shard: str, key: str, entry: Dict
    ) -> Optional[bytes]:
        """Read + verify one record; ``None`` means corrupt/vanished."""
        path = self._segment_path(shard, str(entry["seg"]))
        header_len = _HEADER.size + len(key.encode("utf-8"))
        try:
            with open(path, "rb") as fh:
                fh.seek(int(entry["off"]))
                blob = fh.read(header_len + int(entry["len"]))
        except OSError:
            return None
        if len(blob) < header_len:
            return None
        magic, key_len, stored_len, raw_len, crc = _HEADER.unpack_from(blob)
        if magic != _MAGIC or stored_len != int(entry["len"]):
            return None
        stored = blob[header_len:]
        if (
            len(stored) != stored_len
            or zlib.crc32(stored) & 0xFFFFFFFF != int(entry["crc"])
        ):
            return None
        try:
            payload = zlib.decompress(stored)
        except zlib.error:
            return None
        if len(payload) != raw_len:
            return None
        return payload

    # -- byte plane ------------------------------------------------------
    def _read(self, key: str, *, count: bool) -> Optional[bytes]:
        shard = _shard_of(key)
        index = self._load_index(shard)
        entry = index["entries"].get(key)
        if entry is None:
            # Another process may have just committed: re-stat the index
            # (cheap when unchanged) before declaring a miss.
            index = self._load_index(shard, fresh=True)
            entry = index["entries"].get(key)
            if entry is None:
                if count:
                    self._note("misses")
                return None
        payload = self._read_record(shard, key, entry)
        if payload is None:
            # Lost a race against compact (segment replaced underfoot)?
            # Reload the index once and retry before calling it corrupt.
            index = self._load_index(shard, fresh=True)
            entry = index["entries"].get(key)
            if entry is None:
                if count:
                    self._note("misses")
                return None
            payload = self._read_record(shard, key, entry)
            if payload is None:
                if count:
                    self.note_corrupt(
                        key, "segment record failed crc/length"
                    )
                return None
        if count:
            self._pending_atimes[key] = time.time()
            self._note("hits")
        return payload

    def get(self, key: str) -> Optional[bytes]:
        return self._read(key, count=True)

    def peek(self, key: str) -> Optional[bytes]:
        return self._read(key, count=False)

    def put(self, key: str, payload: bytes) -> None:
        shard = _shard_of(key)
        with self._lock(shard):
            index = self._load_index(shard, fresh=True)
            index["entries"][key] = self._append_record(
                shard, index, key, payload
            )
            self._fold_atimes(shard, index)
            self._write_index(shard, index)
        self._note("puts")

    def delete(self, key: str, *, _count: bool = True) -> bool:
        shard = _shard_of(key)
        with self._lock(shard):
            index = self._load_index(shard, fresh=True)
            if key not in index["entries"]:
                return False
            del index["entries"][key]
            self._fold_atimes(shard, index)
            self._write_index(shard, index)
        if _count:
            self._note("deletes")
        return True

    def keys(self, prefix: str = "") -> List[str]:
        out: List[str] = []
        for shard in self._shard_names():
            out.extend(
                k
                for k in self._load_index(shard)["entries"]
                if k.startswith(prefix)
            )
        return sorted(out)

    def _shard_names(self) -> List[str]:
        base = self.base / "shards"
        if not base.is_dir():
            return []
        return sorted(p.name for p in base.iterdir() if p.is_dir())

    # -- maintenance -----------------------------------------------------
    def flush(self) -> None:
        """Fold pending read atimes into their shard indexes."""
        shards = {_shard_of(k) for k in self._pending_atimes}
        for shard in shards:
            with self._lock(shard):
                index = self._load_index(shard, fresh=True)
                self._fold_atimes(shard, index)
                self._write_index(shard, index)

    def stats(self) -> Dict[str, object]:
        entries = 0
        logical = 0
        stored = 0
        segments = 0
        physical = 0
        keys: List[str] = []
        for shard in self._shard_names():
            index = self._load_index(shard)
            for key, entry in index["entries"].items():
                entries += 1
                keys.append(key)
                logical += int(entry.get("raw_len", 0))
                stored += int(entry.get("len", 0))
            for seg in self._shard_dir(shard).glob("seg-*.seg"):
                segments += 1
                try:
                    physical += seg.stat().st_size
                except OSError:
                    pass
        live = len(self._shard_names())
        dead = max(0, physical - stored - entries * _HEADER.size
                   - sum(len(k.encode()) for k in keys))
        return stats_document(
            self,
            entries=entries,
            shards=live,
            segments=segments,
            logical_bytes=logical,
            physical_bytes=physical,
            namespaces=namespace_histogram(keys),
            extra={
                "stored_bytes": stored,
                "dead_bytes": dead,
                "shard_count": self.shard_count,
            },
        )

    def verify(self) -> List[str]:
        problems: List[str] = []
        for shard in self._shard_names():
            index = self._load_index(shard, fresh=True)
            for key, entry in sorted(index["entries"].items()):
                payload = self._read_record(shard, key, entry)
                if payload is None:
                    problems.append(
                        f"{key}: segment record unreadable "
                        f"({entry['seg']} @ {entry['off']})"
                    )
                    continue
                try:
                    json.loads(payload.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    problems.append(f"{key}: payload is not JSON ({exc})")
        return problems

    def compact(self) -> Dict[str, object]:
        """Rewrite every shard's live records into fresh segments,
        dropping dead bytes (overwritten/deleted/unreferenced records).
        Runs shard-at-a-time under the shard lock; readers racing a
        compact retry through the reloaded index."""
        reclaimed = 0
        segments_before = 0
        segments_after = 0
        for shard in self._shard_names():
            with self._lock(shard):
                index = self._load_index(shard, fresh=True)
                old_segs = sorted(
                    self._shard_dir(shard).glob("seg-*.seg")
                )
                segments_before += len(old_segs)
                before = sum(s.stat().st_size for s in old_segs)
                live: List[Tuple[str, bytes]] = []
                for key, entry in sorted(index["entries"].items()):
                    payload = self._read_record(shard, key, entry)
                    if payload is not None:
                        live.append((key, payload))
                seg_no = int(index.get("next_seg", 1)) + 1
                fresh_index = self._empty_index()
                fresh_index["next_seg"] = seg_no
                for key, payload in live:
                    fresh_index["entries"][key] = self._append_record(
                        shard, fresh_index, key, payload
                    )
                    # Preserve LRU state across the rewrite.
                    old = index["entries"][key]
                    fresh_index["entries"][key]["atime"] = old.get(
                        "atime", fresh_index["entries"][key]["atime"]
                    )
                    fresh_index["entries"][key]["put_unix"] = old.get(
                        "put_unix", fresh_index["entries"][key]["put_unix"]
                    )
                self._fold_atimes(shard, fresh_index)
                self._write_index(shard, fresh_index)
                new_names = {
                    e["seg"] for e in fresh_index["entries"].values()
                }
                after = 0
                for seg in self._shard_dir(shard).glob("seg-*.seg"):
                    if seg.name in new_names:
                        after += seg.stat().st_size
                        segments_after += 1
                    else:
                        try:
                            seg.unlink()
                        except OSError:
                            try:
                                after += seg.stat().st_size
                            except OSError:
                                pass
                reclaimed += max(0, before - after)
        # Stale ``*.tmp`` litter from killed atomic writers (index/META
        # commits) — same sweep the legacy backend runs.
        swept = 0
        if self.base.is_dir():
            for tmp in self.base.rglob("*.tmp"):
                try:
                    tmp.unlink()
                    swept += 1
                except OSError:
                    pass
        return {
            "reclaimed_bytes": reclaimed,
            "segments_before": segments_before,
            "segments_after": segments_after,
            "tmp_files_swept": swept,
        }

    def gc(self, max_bytes: int) -> List[str]:
        """Evict least-recently-read entries until the stored footprint
        fits ``max_bytes``, then compact to reclaim the bytes."""
        candidates: List[Tuple[float, int, str]] = []
        total = 0
        for shard in self._shard_names():
            index = self._load_index(shard, fresh=True)
            for key, entry in index["entries"].items():
                atime = max(
                    float(entry.get("atime", 0.0)),
                    self._pending_atimes.get(key, 0.0),
                )
                size = int(entry.get("len", 0))
                candidates.append((atime, size, key))
                total += size
        evicted: List[str] = []
        for atime, size, key in sorted(candidates):
            if total <= max_bytes:
                break
            if self.delete(key, _count=False):
                total -= size
                evicted.append(key)
                self._note("evictions")
        if evicted:
            self.compact()
        return evicted

    # -- recovery --------------------------------------------------------
    def rebuild_index(self, shard: str) -> int:
        """Rebuild one shard's index by scanning its segments (disaster
        recovery; last record for a key wins).  Returns entries found."""
        with self._lock(shard):
            index = self._empty_index()
            max_seg = 0
            for seg in sorted(self._shard_dir(shard).glob("seg-*.seg")):
                max_seg = max(max_seg, int(seg.stem.split("-")[1]))
                try:
                    blob = seg.read_bytes()
                except OSError:
                    continue
                off = 0
                while off + _HEADER.size <= len(blob):
                    try:
                        magic, key_len, stored_len, raw_len, crc = (
                            _HEADER.unpack_from(blob, off)
                        )
                    except struct.error:
                        break
                    if magic != _MAGIC:
                        break  # torn tail from a killed writer
                    start = off + _HEADER.size
                    key = blob[start:start + key_len].decode(
                        "utf-8", "replace"
                    )
                    stored = blob[start + key_len:start + key_len + stored_len]
                    if (
                        len(stored) == stored_len
                        and zlib.crc32(stored) & 0xFFFFFFFF == crc
                    ):
                        index["entries"][key] = {
                            "seg": seg.name,
                            "off": off,
                            "len": stored_len,
                            "raw_len": raw_len,
                            "crc": crc,
                            "atime": round(time.time(), 3),
                            "put_unix": round(time.time(), 3),
                        }
                    off = start + key_len + stored_len
            index["next_seg"] = max_seg + 1
            self._write_index(shard, index)
            return len(index["entries"])
