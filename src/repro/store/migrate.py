"""In-place migration of a legacy flat-JSON cache to the sharded layout.

``repro cache migrate`` drives :func:`migrate_cache`: every legacy
entry is copied into a :class:`~repro.store.sharded.ShardedStore` under
the *same* cache directory and immediately read back through the store
API; only when the read-back is **bit-identical** to the legacy payload
is the legacy file deleted (``keep_legacy=True`` leaves the originals
in place, e.g. for a dry run that older toolchains can still read).

The migration is resumable and idempotent: entries already present in
the sharded store with identical bytes are skipped, so a migration
interrupted halfway just continues on the next invocation.  Keys are
unchanged — the runner's content-addressed cache keys resolve
identically through both stores before and after.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from .base import MigrationError
from .legacy import LegacyJsonStore, looks_like_legacy_cache
from .sharded import ShardedStore


def migrate_cache(
    root: Path,
    *,
    keep_legacy: bool = False,
    progress=None,
) -> Dict[str, object]:
    """Convert the legacy cache under ``root`` to the sharded layout.

    Returns a summary dict (``migrated``/``skipped``/``verified`` counts
    plus the byte totals).  Raises :class:`MigrationError` on the first
    entry whose round-trip is not bit-identical — the legacy file is
    then left untouched.
    """
    root = Path(root)
    was_legacy = looks_like_legacy_cache(root)
    legacy = LegacyJsonStore(root)
    sharded = ShardedStore(root)
    migrated = 0
    skipped = 0
    bytes_in = 0
    removed: List[str] = []
    keys = legacy.keys()
    for i, key in enumerate(keys, 1):
        payload = legacy.get(key)
        if payload is None:  # vanished or unreadable: nothing to carry
            skipped += 1
            continue
        existing = sharded.get(key)
        if existing == payload:
            skipped += 1
        else:
            sharded.put(key, payload)
            back = sharded.get(key)
            if back != payload:
                raise MigrationError(
                    f"round-trip mismatch for {key!r}: wrote "
                    f"{len(payload)} bytes, read back "
                    f"{'nothing' if back is None else f'{len(back)} bytes'}"
                )
            migrated += 1
            bytes_in += len(payload)
        if not keep_legacy:
            legacy.delete(key)
            removed.append(key)
        if progress is not None:
            progress(i, len(keys), key)
    if not keep_legacy:
        _sweep_empty_legacy_dirs(root)
    return {
        "entries": len(keys),
        "migrated": migrated,
        "skipped": skipped,
        "verified": migrated,
        "legacy_files_removed": len(removed),
        "bytes_migrated": bytes_in,
        "was_legacy_layout": was_legacy,
    }


def _sweep_empty_legacy_dirs(root: Path) -> None:
    for sub in ("manifests", "forensics", "figures", "objects"):
        path = root / sub
        try:
            if path.is_dir() and not any(path.iterdir()):
                path.rmdir()
        except OSError:
            pass
