"""The :class:`ResultStore` contract shared by both store backends.

A store is a flat keyed blob space under one cache directory.  Keys are
namespaced paths (``result/<sha>``, ``manifest/<name>``,
``forensics/<sha>``, ``figure/<id>/<sha>``); payloads are opaque bytes —
by convention UTF-8 JSON documents, which is what the
:meth:`ResultStore.get_json` / :meth:`ResultStore.put_json` helpers
speak.

Shared machinery lives here so both backends behave identically where
behaviour is a correctness contract:

* **Corrupt entries are misses, not crashes.**  :meth:`get_json` returns
  ``None`` for an entry whose payload does not parse, warns once per
  process, and counts it on :attr:`ResultStore.counters` — a killed
  writer can never poison later reads (the runner re-simulates instead).

* **Claims.**  :meth:`ResultStore.claim` hands out cross-process
  execution claims (O_EXCL claim files carrying the owner pid), so N
  ``run_many`` processes sharing one cache dir never simulate the same
  key twice; losers :meth:`wait_for` the winner's entry.  Claims from
  dead processes are detected and broken.

* **Metrics.**  Every hit/miss/eviction/corrupt observation increments
  both the store's local :class:`StoreCounters` and — when a fleet
  telemetry session is installed — the ``repro_store_*`` counters of its
  :class:`~repro.obs.telemetry.MetricsRegistry`, labelled by store kind.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: Schema tag of the ``stats()`` document (validated by
#: ``scripts/check_store.py``).
STORE_SCHEMA = "repro-store/1"

#: Claim files older than this are considered abandoned even when the
#: owner pid cannot be probed (e.g. pid recycled by another user).
CLAIM_TTL_SECONDS = 3600.0


class StoreError(Exception):
    """Base class for store failures the caller should see."""


class StoreInitError(StoreError):
    """The backend cannot initialise on this cache directory (the
    selection layer degrades to the legacy store with one warning)."""


class MigrationError(StoreError):
    """A legacy entry failed its verified round-trip during migration."""


@dataclass
class StoreCounters:
    """Per-store-instance observability (mirrored into ``repro_store_*``
    telemetry metrics when a session is installed)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    deletes: int = 0
    evictions: int = 0
    corrupt: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.deletes = 0
        self.evictions = 0
        self.corrupt = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "deletes": self.deletes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }


def _telemetry_metrics():
    """The installed telemetry session's registry, or ``None``."""
    from ..obs import telemetry

    session = telemetry.current_session()
    return session.metrics if session is not None else None


_OP_METRIC = {
    "hits": ("repro_store_hits_total", "result-store entry hits"),
    "misses": ("repro_store_misses_total", "result-store entry misses"),
    "puts": ("repro_store_puts_total", "result-store entries written"),
    "deletes": ("repro_store_deletes_total", "result-store entries deleted"),
    "evictions": (
        "repro_store_evictions_total",
        "result-store entries evicted by gc",
    ),
    "corrupt": (
        "repro_store_corrupt_total",
        "unreadable result-store entries treated as misses",
    ),
}


@dataclass(frozen=True)
class Claim:
    """An exclusive cross-process right to compute one key.

    Created by :meth:`ResultStore.claim`; the owner must
    :meth:`release` it after storing the result (or on failure) so
    waiters unblock.  A claim whose owner died is *stale* and can be
    broken by the next claimant.
    """

    key: str
    path: Path
    pid: int

    def release(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass  # already broken / dir removed


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user pid
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


class ResultStore:
    """Abstract keyed blob store over one cache directory.

    Subclasses implement the raw byte plane (:meth:`get`, :meth:`put`,
    :meth:`delete`, :meth:`keys`, :meth:`stats`, :meth:`verify`,
    :meth:`compact`, :meth:`gc`); this base provides the JSON
    convenience layer, corrupt-entry policy, claims, and metric
    fan-out.
    """

    #: Backend name recorded in stats documents and probe spans.
    kind: str = "abstract"

    def __init__(self, root: Path):
        self.root = Path(root)
        self.counters = StoreCounters()
        self._warned_corrupt = False

    # -- raw byte plane (backend-specific) ------------------------------
    def get(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def peek(self, key: str) -> Optional[bytes]:
        """Like :meth:`get` but without counter/atime traffic — used by
        :meth:`wait_for` polling so a 20 ms poll loop does not inflate
        the miss metrics.  Backends override with a silent read."""
        return self.get(key)

    def put(self, key: str, payload: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self, prefix: str = "") -> List[str]:
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        raise NotImplementedError

    def verify(self) -> List[str]:
        """Read back every entry; returns human-readable problems."""
        raise NotImplementedError

    def compact(self) -> Dict[str, object]:
        """Reclaim dead space; returns a summary dict."""
        raise NotImplementedError

    def gc(self, max_bytes: int) -> List[str]:
        """Evict least-recently-read entries until the store's payload
        footprint fits ``max_bytes``; returns the evicted keys."""
        raise NotImplementedError

    def flush(self) -> None:
        """Persist any write-behind state (lazy atimes)."""

    def close(self) -> None:
        self.flush()

    # -- shared observability -------------------------------------------
    def _note(self, op: str, n: int = 1) -> None:
        setattr(self.counters, op, getattr(self.counters, op) + n)
        metrics = _telemetry_metrics()
        if metrics is not None:
            name, help_text = _OP_METRIC[op]
            metrics.counter(name, help_text, labels=("store",)).inc(
                n, store=self.kind
            )

    def note_corrupt(self, key: str, reason: str) -> None:
        """Count (and warn once per process about) an unreadable entry.

        Public so the runner can report *structurally* corrupt payloads
        (valid JSON that no longer matches the result schema) through
        the same channel as byte-level corruption."""
        self._note("corrupt")
        if not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"{self.kind} store: unreadable entry {key!r} treated as a "
                f"cache miss ({reason}); further corrupt entries are "
                "counted silently — run `repro cache verify`",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- JSON convenience ------------------------------------------------
    def get_json(self, key: str) -> Optional[object]:
        """Parsed JSON payload of ``key``; corrupt entries are a
        warn-once miss (never an exception)."""
        raw = self.get(key)
        if raw is None:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self.note_corrupt(key, f"JSON parse failed: {exc}")
            return None

    def put_json(self, key: str, obj: object) -> None:
        self.put(
            key,
            json.dumps(obj, sort_keys=True).encode("utf-8"),
        )

    def has(self, key: str) -> bool:
        return self.get(key) is not None

    # -- claims ----------------------------------------------------------
    def _claims_dir(self) -> Path:
        raise NotImplementedError

    def _claim_path(self, key: str) -> Path:
        import hashlib

        name = hashlib.sha1(key.encode("utf-8")).hexdigest()
        return self._claims_dir() / f"{name}.claim"

    def claim(self, key: str) -> Optional[Claim]:
        """Try to acquire the exclusive right to compute ``key``.

        Returns a :class:`Claim` on success and ``None`` when another
        *live* process holds it.  A stale claim (dead owner, or older
        than :data:`CLAIM_TTL_SECONDS`) is broken and re-acquired.
        """
        path = self._claim_path(key)
        payload = json.dumps(
            {"key": key, "pid": os.getpid(), "unix": round(time.time(), 3)}
        ).encode("utf-8")
        for _ in range(2):  # second pass after breaking a stale claim
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                holder = self._read_claim(path)
                if holder is None or self._claim_stale(holder):
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    continue
                return None
            except OSError:
                return Claim(key, path, os.getpid())  # unclaimable dir:
                # degrade to "claimed" so the caller still executes
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            return Claim(key, path, os.getpid())
        return None

    def claimed_by_other(self, key: str) -> bool:
        holder = self._read_claim(self._claim_path(key))
        return (
            holder is not None
            and not self._claim_stale(holder)
            and int(holder.get("pid", -1)) != os.getpid()
        )

    @staticmethod
    def _read_claim(path: Path) -> Optional[Dict[str, object]]:
        try:
            return json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            try:
                # Unreadable claim file: treat as stale if it exists.
                return {"pid": -1, "unix": 0.0} if path.exists() else None
            except OSError:
                return None

    @staticmethod
    def _claim_stale(holder: Dict[str, object]) -> bool:
        try:
            pid = int(holder.get("pid", -1))
            unix = float(holder.get("unix", 0.0))
        except (TypeError, ValueError):
            return True
        if time.time() - unix > CLAIM_TTL_SECONDS:
            return True
        return not _pid_alive(pid)

    def wait_for(
        self,
        key: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.02,
    ) -> Optional[bytes]:
        """Block until ``key`` appears (another process is computing it
        under a claim) or its claim disappears/goes stale.

        Returns the payload, or ``None`` when the claim was abandoned
        without a stored result (the caller should compute the key
        itself).  The timeout is a deadlock backstop, not a contract.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.peek(key)
            if payload is not None:
                return payload
            if not self.claimed_by_other(key):
                # Owner released (or died) without storing: one last
                # look to close the release-after-put race.
                return self.peek(key)
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll)


# ----------------------------------------------------------------------
# Advisory file locking (used by the sharded backend's shard mutations).
# ----------------------------------------------------------------------
try:  # pragma: no cover - import probe
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX
    _fcntl = None


@dataclass
class FileLock:
    """Advisory exclusive lock on a lock file.

    ``fcntl.flock`` where available (kernel-released on process death —
    a crashed writer never wedges the shard); a best-effort
    mkdir-spinlock elsewhere.  Reentrant within one instance.
    """

    path: Path
    timeout: float = 60.0
    _fd: Optional[int] = field(default=None, repr=False)
    _depth: int = field(default=0, repr=False)

    def acquire(self) -> "FileLock":
        if self._depth:
            self._depth += 1
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if _fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            _fcntl.flock(fd, _fcntl.LOCK_EX)
            self._fd = fd
        else:  # pragma: no cover - non-POSIX fallback
            lockdir = self.path.with_suffix(".lckdir")
            deadline = time.monotonic() + self.timeout
            while True:
                try:
                    os.mkdir(lockdir)
                    break
                except FileExistsError:
                    if time.monotonic() >= deadline:
                        raise StoreError(
                            f"timed out waiting for lock {lockdir}"
                        ) from None
                    time.sleep(0.005)
        self._depth = 1
        return self

    def release(self) -> None:
        if not self._depth:
            return
        self._depth -= 1
        if self._depth:
            return
        if _fcntl is not None:
            if self._fd is not None:
                _fcntl.flock(self._fd, _fcntl.LOCK_UN)
                os.close(self._fd)
                self._fd = None
        else:  # pragma: no cover - non-POSIX fallback
            try:
                os.rmdir(self.path.with_suffix(".lckdir"))
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Temp-file + ``os.replace`` write: readers never see a torn file,
    and a killed writer leaves only an ignorable ``*.tmp``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def namespace_of(key: str) -> str:
    """First path segment of a namespaced key (``result/<sha>`` →
    ``result``)."""
    return key.split("/", 1)[0] if "/" in key else ""


def namespace_histogram(keys) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for key in keys:
        ns = namespace_of(key) or "(flat)"
        out[ns] = out.get(ns, 0) + 1
    return dict(sorted(out.items()))


def stats_document(
    store: "ResultStore",
    *,
    entries: int,
    shards: int,
    segments: int,
    logical_bytes: int,
    physical_bytes: int,
    namespaces: Dict[str, int],
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The canonical ``repro-store/1`` stats document both backends
    emit (and ``scripts/check_store.py`` validates)."""
    doc: Dict[str, object] = {
        "schema": STORE_SCHEMA,
        "kind": store.kind,
        "root": str(store.root),
        "entries": entries,
        "shards": shards,
        "segments": segments,
        "logical_bytes": logical_bytes,
        "physical_bytes": physical_bytes,
        "namespaces": namespaces,
        "counters": store.counters.to_dict(),
    }
    if extra:
        doc.update(extra)
    return doc
