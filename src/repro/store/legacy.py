"""``LegacyJsonStore``: today's one-JSON-file-per-entry cache layout.

The layout every PR since the first runner has written, kept readable
and writable behind the :class:`~repro.store.base.ResultStore` API so
existing caches keep hitting without migration:

.. code-block:: text

    <cache_dir>/
      <sha256>.json                  result/<sha256>
      manifests/MANIFEST_<x>.json    manifest/MANIFEST_<x>
      forensics/<name>.json          forensics/<name>
      figures/<id>/<sha>.json        figure/<id>/<sha>

Writes are atomic (temp + ``os.replace``); there is no index, no
compression, and no locking — per-file rename atomicity is the whole
concurrency story, which is exactly why million-entry sweeps want the
sharded backend instead.  ``compact`` is a no-op; ``gc`` evicts whole
files LRU by filesystem atime (falling back to mtime where atime is
frozen by ``noatime`` mounts).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .base import (
    ResultStore,
    atomic_write_bytes,
    namespace_histogram,
    stats_document,
)

#: Namespace -> subdirectory of the cache root (results live flat in
#: the root itself, exactly like the pre-store layout).
_NAMESPACE_DIRS: Dict[str, Tuple[str, ...]] = {
    "result": (),
    "manifest": ("manifests",),
    "forensics": ("forensics",),
    "figure": ("figures",),
}

_SAFE_SEGMENT = re.compile(r"^[A-Za-z0-9._+-]+$")


def _split_key(key: str) -> Tuple[str, Tuple[str, ...]]:
    parts = key.split("/")
    if not all(_SAFE_SEGMENT.match(p) for p in parts):
        raise ValueError(f"unsafe store key {key!r}")
    return parts[0], tuple(parts[1:])


class LegacyJsonStore(ResultStore):
    """The historical flat-file layout behind the store interface."""

    kind = "legacy"

    # -- key <-> path ----------------------------------------------------
    def path_for(self, key: str) -> Path:
        ns, rest = _split_key(key)
        subdir = _NAMESPACE_DIRS.get(ns)
        if subdir is None or not rest:
            # Unknown namespace (or flat key): keep it out of the
            # result namespace so listings stay unambiguous.
            return self.root.joinpath("objects", *key.split("/")).with_suffix(
                ".json"
            )
        return self.root.joinpath(*subdir, *rest).with_suffix(".json")

    def _key_for(self, path: Path) -> Optional[str]:
        try:
            rel = path.relative_to(self.root)
        except ValueError:
            return None
        parts = rel.with_suffix("").parts
        if len(parts) == 1:
            return f"result/{parts[0]}"
        head = parts[0]
        for ns, subdir in _NAMESPACE_DIRS.items():
            if subdir and head == subdir[0]:
                return "/".join((ns,) + parts[1:])
        if head == "objects":
            return "/".join(parts[1:])
        return None

    def _iter_paths(self) -> List[Path]:
        out: List[Path] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.glob("*.json")):
            out.append(path)
        for sub in ("manifests", "forensics", "figures", "objects"):
            base = self.root / sub
            if base.is_dir():
                out.extend(sorted(base.rglob("*.json")))
        return out

    # -- byte plane ------------------------------------------------------
    def peek(self, key: str) -> Optional[bytes]:
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def get(self, key: str) -> Optional[bytes]:
        payload = self.peek(key)
        self._note("hits" if payload is not None else "misses")
        return payload

    def put(self, key: str, payload: bytes) -> None:
        atomic_write_bytes(self.path_for(key), payload)
        self._note("puts")

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        self._note("deletes")
        return True

    def keys(self, prefix: str = "") -> List[str]:
        out = []
        for path in self._iter_paths():
            key = self._key_for(path)
            if key is not None and key.startswith(prefix):
                out.append(key)
        return out

    # -- maintenance -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        keys = []
        physical = 0
        for path in self._iter_paths():
            key = self._key_for(path)
            if key is None:
                continue
            keys.append(key)
            try:
                physical += path.stat().st_size
            except OSError:
                pass
        return stats_document(
            self,
            entries=len(keys),
            shards=0,
            segments=len(keys),  # one file per entry
            logical_bytes=physical,  # stored uncompressed
            physical_bytes=physical,
            namespaces=namespace_histogram(keys),
        )

    def verify(self) -> List[str]:
        problems: List[str] = []
        for path in self._iter_paths():
            key = self._key_for(path)
            if key is None:
                continue
            try:
                json.loads(path.read_text("utf-8"))
            except (OSError, ValueError, UnicodeDecodeError) as exc:
                problems.append(f"{key}: unreadable ({exc})")
        return problems

    def compact(self) -> Dict[str, object]:
        """No dead space in a file-per-entry layout — only stale
        ``*.tmp`` litter from killed writers is swept."""
        swept = 0
        if self.root.is_dir():
            for tmp in self.root.rglob("*.tmp"):
                try:
                    tmp.unlink()
                    swept += 1
                except OSError:
                    pass
        return {"reclaimed_bytes": 0, "tmp_files_swept": swept}

    def gc(self, max_bytes: int) -> List[str]:
        entries = []
        total = 0
        for path in self._iter_paths():
            key = self._key_for(path)
            if key is None:
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            # noatime mounts freeze atime at creation; take the newer
            # of atime/mtime so eviction order stays sane.
            atime = max(st.st_atime, st.st_mtime)
            entries.append((atime, st.st_size, key, path))
            total += st.st_size
        evicted: List[str] = []
        for atime, size, key, path in sorted(entries):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted.append(key)
            self._note("evictions")
        return evicted

    # -- claims ----------------------------------------------------------
    def _claims_dir(self) -> Path:
        return self.root / ".claims"

    # -- migration helper ------------------------------------------------
    def compressed_size_estimate(self, key: str) -> int:
        """zlib-compressed payload size (what the sharded backend would
        store) — used by ``repro cache stats`` on legacy caches."""
        raw = self.get(key)
        return len(zlib.compress(raw)) if raw is not None else 0


def looks_like_legacy_cache(root: Path) -> bool:
    """True when ``root`` holds a pre-store flat-JSON cache (used by the
    ``auto`` store resolution so old caches keep hitting unmigrated)."""
    root = Path(root)
    if not root.is_dir():
        return False
    if (root / "store" / "META.json").exists():
        return False
    for path in root.glob("*.json"):
        if os.path.basename(path.name) != "META.json":
            return True
    return (root / "manifests").is_dir()
