"""Scripted workloads: hand-written thread programs for tests, examples,
and scenario studies.

A :class:`ScriptedWorkload` wraps a list of generator functions — one per
thread — plus an optional initial memory image and an optional final-state
check.  It is the easiest way to drive the simulator through a precise
interleaving-sensitive scenario (chain formation, cascading aborts, ABA)
without defining a full benchmark class::

    from repro.workloads.scripted import ScriptedWorkload
    from repro.sim.ops import Read, Txn, Work, Write

    X = 0x1000

    def add_one():
        v = yield Read(X)
        yield Work(30)
        yield Write(X, v + 1)

    def thread():
        yield Txn(add_one, ())

    wl = ScriptedWorkload([thread, thread], check=lambda m: m.read_word(X) == 2)
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..mem.memory import MainMemory
from .base import Workload

ThreadFn = Callable[[], Generator]


class ScriptedWorkload(Workload):
    """A workload assembled from explicit thread generator functions."""

    name = "scripted"

    def __init__(
        self,
        thread_fns: List[ThreadFn],
        *,
        initial: Optional[Dict[int, int]] = None,
        check: Optional[Callable[[MainMemory], bool]] = None,
        seed: int = 1,
    ):
        if not thread_fns:
            raise ValueError("need at least one thread function")
        super().__init__(threads=len(thread_fns), seed=seed)
        self._thread_fns = list(thread_fns)
        self._initial = dict(initial or {})
        self._check = check
        # Scripted scenarios address memory directly; keep the bump
        # allocator (and therefore the fallback-lock allocation) clear of
        # the scripted address range.
        self.space.alloc(16 << 20)

    def setup(self, memory: MainMemory) -> None:
        for addr, value in self._initial.items():
            memory.write_word(addr, value)

    def thread_body(self, tid: int) -> Generator:
        return self._thread_fns[tid]()

    def verify(self, memory: MainMemory) -> None:
        if self._check is not None and not self._check(memory):
            raise AssertionError("scripted workload check failed")
