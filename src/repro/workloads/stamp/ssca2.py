"""ssca2 — scalable synthetic graph kernel with tiny, rare-conflict
transactions.

STAMP's ssca2 (kernel 1) builds a graph: threads insert edges in parallel,
each transaction appending one edge to a node's adjacency structure.  The
node space is large relative to the thread count, so transactions almost
never collide — the paper measures 0–10 aborts for the *entire* run and
identical performance across every HTM system.  This workload exists to
show that CHATS costs nothing when there is nothing to forward.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ...mem.memory import MainMemory
from ...sim.ops import Read, Txn, Work, Write
from ..base import Workload, register
from ..structures import SimArray


@register
class SSCA2(Workload):
    name = "ssca2"

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.num_nodes = self.scaled(512, floor=threads * 8)
        self.edges_per_thread = self.scaled(40)
        # Per-node adjacency record [degree, weight-sum]; records are
        # separate heap objects in the original, so they never false-share:
        # one padded block per node, degree at word 0, weight at word 1.
        self.records = SimArray(
            self.space, self.num_nodes, name="node-records", padded=True
        )
        self.edges: List[List[Tuple[int, int]]] = [
            [
                (self.rng.randrange(self.num_nodes), 1 + self.rng.randrange(9))
                for _ in range(self.edges_per_thread)
            ]
            for _ in range(threads)
        ]

    def _degree_addr(self, node: int) -> int:
        return self.records.addr(node)

    def _weight_addr(self, node: int) -> int:
        return self.records.addr(node) + self.space.geometry.word_bytes

    def setup(self, memory: MainMemory) -> None:
        for node in range(self.num_nodes):
            memory.write_word(self._degree_addr(node), 0)
            memory.write_word(self._weight_addr(node), 0)

    def _add_edge(self, node: int, w: int) -> Generator:
        d = yield Read(self._degree_addr(node))
        yield Write(self._degree_addr(node), d + 1)
        s = yield Read(self._weight_addr(node))
        yield Write(self._weight_addr(node), s + w)
        return d + 1

    def thread_body(self, tid: int) -> Generator:
        for node, w in self.edges[tid]:
            yield Work(8)
            yield Txn(self._add_edge, (node, w), label="add-edge")

    def verify(self, memory: MainMemory) -> None:
        exp_degree = [0] * self.num_nodes
        exp_weight = [0] * self.num_nodes
        for thread_edges in self.edges:
            for node, w in thread_edges:
                exp_degree[node] += 1
                exp_weight[node] += w
        for node in range(self.num_nodes):
            if memory.read_word(self._degree_addr(node)) != exp_degree[node]:
                raise AssertionError(f"degree mismatch at node {node}")
            if memory.read_word(self._weight_addr(node)) != exp_weight[node]:
                raise AssertionError(f"weight mismatch at node {node}")
