"""kmeans — clustering with transactional centre updates.

STAMP's kmeans assigns each point to its nearest centre and then, inside a
transaction, adds the point's coordinates into the centre's accumulator
and bumps its population count.  Two tiny auxiliary transactions update
global variables (the convergence delta and the processed-point count).

The centre-update transaction is the contended one: its access pattern is
*migratory* — every thread reads the centre accumulator words, adds, and
writes them, and "every thread memory access pattern is the same when
accessing the centers" (Section VII).  Once a transaction has updated a
dimension it never touches it again, so the modified block can be safely
forwarded to the next thread: the pattern CHATS exploits (roughly 75%
conflict reduction in the paper).

``kmeans-l`` (low contention) uses many centres, ``kmeans-h`` (high
contention) few, following STAMP's low/high input convention.

Distance computation runs on host data (the points are thread-private,
read-only inputs — their cache traffic carries no conflicts) and is
charged as ``Work`` cycles.
"""

from __future__ import annotations

from typing import Generator, List

from ...mem.memory import MainMemory
from ...sim.ops import Txn, Work
from ..base import Workload, register
from ..structures import SimArray, SimCounter


class _KMeansBase(Workload):
    """Shared machinery; flavours fix the centre count."""

    num_centers = 16
    dims = 16

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.points_per_thread = self.scaled(40)
        # One accumulator array per centre: dims sums + 1 count word,
        # block-aligned so centres never false-share with each other.
        self.centers: List[SimArray] = [
            SimArray(self.space, self.dims + 1, name=f"center{c}")
            for c in range(self.num_centers)
        ]
        self.global_delta = SimCounter(self.space, name="kmeans-delta")
        self.global_count = SimCounter(self.space, name="kmeans-count")
        # Points are host-side read-only input data.
        self.points: List[List[List[int]]] = [
            [
                [self.rng.randrange(100) for _ in range(self.dims)]
                for _ in range(self.points_per_thread)
            ]
            for _ in range(threads)
        ]
        # Pre-computed nearest-centre assignment (deterministic: uses the
        # initial centre positions, which are simply spread on a lattice).
        self.assignment: List[List[int]] = [
            [self._nearest(p) for p in thread_points]
            for thread_points in self.points
        ]

    def _nearest(self, point: List[int]) -> int:
        # Initial centres at lattice positions c*100/num_centers repeated
        # across dimensions; nearest by squared distance.
        best, best_d = 0, None
        for c in range(self.num_centers):
            pos = (c * 100) // self.num_centers + 50 // self.num_centers
            d = sum((x - pos) ** 2 for x in point)
            if best_d is None or d < best_d:
                best, best_d = c, d
        return best

    def setup(self, memory: MainMemory) -> None:
        for center in self.centers:
            center.init(memory, [0] * (self.dims + 1))
        self.global_delta.init(memory, 0)
        self.global_count.init(memory, 0)

    # -- transactions ----------------------------------------------------
    def _update_center(self, c: int, point: List[int]) -> Generator:
        center = self.centers[c]
        for d, coord in enumerate(point):
            old = yield from center.get(d)
            yield from center.set(d, old + coord)
        count = yield from center.get(self.dims)
        yield from center.set(self.dims, count + 1)
        return c

    def _update_globals(self, processed: int) -> Generator:
        yield from self.global_delta.add(1)
        yield from self.global_count.add(processed)
        return processed

    def thread_body(self, tid: int) -> Generator:
        batch = 0
        for point, c in zip(self.points[tid], self.assignment[tid]):
            # Distance computation on private data.
            yield Work(6 * self.dims)
            yield Txn(self._update_center, (c, point), label="center-update")
            batch += 1
            if batch == 8:
                yield Txn(self._update_globals, (batch,), label="globals")
                batch = 0
        if batch:
            yield Txn(self._update_globals, (batch,), label="globals")

    # -- oracle ----------------------------------------------------------
    def verify(self, memory: MainMemory) -> None:
        total_points = self.num_threads * self.points_per_thread
        counts = [
            memory.read_word(c.addr(self.dims)) for c in self.centers
        ]
        if sum(counts) != total_points:
            raise AssertionError(
                f"centre population {sum(counts)} != points {total_points}"
            )
        for d in range(self.dims):
            expected = sum(
                p[d] for pts in self.points for p in pts
            )
            actual = sum(memory.read_word(c.addr(d)) for c in self.centers)
            if actual != expected:
                raise AssertionError(
                    f"dimension {d}: accumulated {actual} != {expected}"
                )
        if memory.read_word(self.global_count.addr) != total_points:
            raise AssertionError("global processed-count mismatch")


@register
class KMeansLow(_KMeansBase):
    """kmeans, low contention (many centres)."""

    name = "kmeans-l"
    num_centers = 32


@register
class KMeansHigh(_KMeansBase):
    """kmeans, high contention (few centres)."""

    name = "kmeans-h"
    num_centers = 6
