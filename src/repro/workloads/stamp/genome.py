"""genome — gene sequencing by segment deduplication and overlap matching.

STAMP's genome runs in phases.  Phase 1 deduplicates DNA segments by
inserting them into a shared hash set (one transaction per segment).
Phase 2 matches overlapping segments into chains: each thread works
through its statically partitioned slice of unique segments and appends
each to the chain it hashes to — a producer-consumer pattern over the
chain tail pointers ("genome sequencing follows an analogous behaviour of
producer-consumer dependencies", Section VII).

The chain-tail update is *migratory*: a linking transaction reads the
tail, replaces it once at the start, and then spends the rest of the
transaction wiring the overlap links — so by the time a conflicting
request reaches the owner, the tail block is final and can be forwarded
safely, which is exactly the pattern CHATS exploits (the paper reports a
~75% conflict reduction here).
"""

from __future__ import annotations

from typing import Generator, List

from ...mem.memory import MainMemory
from ...sim.ops import Read, Txn, Work, Write
from ..base import Workload, register
from ..structures import NULL, NodePool, SimArray, SimHashTable


@register
class Genome(Workload):
    name = "genome"

    #: Chains being grown concurrently in phase 2.
    num_chains = 8

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.segments_per_thread = self.scaled(28)
        total = threads * self.segments_per_thread
        # Segment ids drawn with deliberate duplicates (the dedup phase).
        universe = max(8, (total * 2) // 3)
        self.segments: List[List[int]] = [
            [1 + self.rng.randrange(universe) for _ in range(self.segments_per_thread)]
            for _ in range(threads)
        ]
        self.unique_segments = sorted(
            {s for thread_segs in self.segments for s in thread_segs}
        )

        pool = NodePool(self.space, total + 16, 3, threads, name="genome-pool")
        # A generously sized table, as in the original: bucket collisions
        # between *different* keys are rare; contention comes from threads
        # inserting the same duplicated segment.
        self.table = SimHashTable(
            self.space, max(64, total * 2), pool, name="genome-hash"
        )
        # chain_links[i] = segment chained after unique segment i (index+1);
        # chain tails hold the most recently linked segment per chain.
        self.chain_links = SimArray(
            self.space, len(self.unique_segments) + 1, name="genome-links"
        )
        self.chain_tails = SimArray(
            self.space, self.num_chains, name="genome-tails", padded=True
        )
        self.linked = SimArray(
            self.space, threads, name="genome-linked", padded=True
        )
        # Static round-robin partition of phase-2 work, as in the original
        # (threads process disjoint slices of the segment table).
        self.partition: List[List[int]] = [
            list(range(tid, len(self.unique_segments), threads))
            for tid in range(threads)
        ]

    def setup(self, memory: MainMemory) -> None:
        self.chain_links.init(memory, [0] * (len(self.unique_segments) + 1))
        self.chain_tails.init(memory, [0] * self.num_chains)
        self.linked.init(memory, [0] * self.num_threads)

    # -- phase 1: dedup ---------------------------------------------------
    def _dedup_insert(self, node: int, segment: int) -> Generator:
        inserted = yield from self.table.insert(node, segment, segment * 3)
        return inserted

    # -- phase 2: link ------------------------------------------------------
    def _link(self, tid: int, index: int) -> Generator:
        """Append unique segment #index to the chain it hashes to.

        The hot tail pointer is read and replaced *first* (after which this
        transaction never touches it again); the overlap wiring and match
        scoring fill the rest of the transaction.
        """
        chain = index % self.num_chains
        tail = yield Read(self.chain_tails.addr(chain))
        yield Write(self.chain_tails.addr(chain), index + 1)
        yield Write(self.chain_links.addr(index + 1), tail)
        # Overlap scoring against the previous tail (reads another
        # thread's freshly written link — the producer-consumer edge).
        if tail != NULL:
            prev = yield Read(self.chain_links.addr(tail))
            yield Work(8 + (prev & 3))
        done = yield Read(self.linked.addr(tid))
        yield Write(self.linked.addr(tid), done + 1)
        return chain

    def thread_body(self, tid: int) -> Generator:
        # Phase 1: segment deduplication.
        for i, segment in enumerate(self.segments[tid]):
            yield Work(8)
            node = self.table.pool.reserve(("dedup", tid, i))
            yield Txn(self._dedup_insert, (node, segment), label="dedup")
        # Phase 2: link this thread's slice of unique segments.
        for index in self.partition[tid]:
            yield Work(14)
            yield Txn(self._link, (tid, index), label="link")

    # -- oracle ----------------------------------------------------------
    def verify(self, memory: MainMemory) -> None:
        items = self.table.host_items(memory)
        if sorted(items) != self.unique_segments:
            raise AssertionError(
                f"dedup table holds {len(items)} keys, expected "
                f"{len(self.unique_segments)} unique segments"
            )
        linked = sum(
            memory.read_word(self.linked.addr(t)) for t in range(self.num_threads)
        )
        if linked != len(self.unique_segments):
            raise AssertionError(
                f"linked {linked} segments, expected {len(self.unique_segments)}"
            )
        # Every chain must be a NULL-terminated path; together the chains
        # must cover every unique segment exactly once.
        seen = 0
        for chain in range(self.num_chains):
            cursor = memory.read_word(self.chain_tails.addr(chain))
            steps = 0
            while cursor != NULL:
                steps += 1
                if steps > len(self.unique_segments):
                    raise AssertionError(f"cycle in chain {chain}")
                if (cursor - 1) % self.num_chains != chain:
                    raise AssertionError(
                        f"segment {cursor - 1} linked into wrong chain {chain}"
                    )
                cursor = memory.read_word(self.chain_links.addr(cursor))
            seen += steps
        if seen != len(self.unique_segments):
            raise AssertionError(
                f"chains cover {seen} segments, expected {len(self.unique_segments)}"
            )
