"""vacation — travel reservation database with low contention.

STAMP's vacation emulates an OLTP system: tables of cars, rooms, and
flights with per-item capacities, and customers placing reservations.
Each transaction looks up an item in the right table, checks and
decrements its capacity, and records the reservation against the
customer.  With many items relative to threads, conflicts are rare — the
paper measures near-zero aborts and identical performance across systems
(like ssca2, this pins the "CHATS costs nothing at low contention" claim).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ...mem.memory import MainMemory
from ...sim.ops import Read, Txn, Work, Write
from ..base import Workload, register
from ..structures import NodePool, SimArray, SimHashTable


@register
class Vacation(Workload):
    name = "vacation"

    TABLES = 3  # cars, rooms, flights
    INITIAL_CAPACITY = 100

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.items_per_table = self.scaled(64, floor=threads)
        self.queries_per_thread = self.scaled(32)
        pool = NodePool(
            self.space,
            self.TABLES * self.items_per_table + 16,
            3,
            threads,
            name="vacation-pool",
        )
        self.tables: List[SimHashTable] = [
            SimHashTable(
                self.space,
                max(8, self.items_per_table // 2),
                pool,
                name=f"table{t}",
            )
            for t in range(self.TABLES)
        ]
        # Per-thread success counters live in simulated memory so the
        # oracle can compare them against the capacity drain atomically.
        self.successes = SimArray(
            self.space, threads, name="vacation-successes", padded=True
        )
        self.queries: List[List[Tuple[int, int]]] = [
            [
                (
                    self.rng.randrange(self.TABLES),
                    1 + self.rng.randrange(self.items_per_table),
                )
                for _ in range(self.queries_per_thread)
            ]
            for _ in range(threads)
        ]

    def setup(self, memory: MainMemory) -> None:
        for table in self.tables:
            table.init(
                memory,
                [
                    (item, self.INITIAL_CAPACITY)
                    for item in range(1, self.items_per_table + 1)
                ],
            )
        self.successes.init(memory, [0] * self.num_threads)

    # -- the reservation transaction ---------------------------------------
    def _reserve(self, tid: int, table_idx: int, item: int) -> Generator:
        table = self.tables[table_idx]
        head_addr = table.heads.addr(table._bucket(item))
        node = yield Read(head_addr)
        while node:
            k = yield Read(table.pool.field(node, SimHashTable.KEY))
            if k == item:
                capacity = yield Read(table.pool.field(node, SimHashTable.VALUE))
                if capacity <= 0:
                    return False
                yield Write(
                    table.pool.field(node, SimHashTable.VALUE), capacity - 1
                )
                done = yield Read(self.successes.addr(tid))
                yield Write(self.successes.addr(tid), done + 1)
                return True
            node = yield Read(table.pool.field(node, SimHashTable.NEXT))
        raise AssertionError(f"item {item} missing from table {table_idx}")

    def thread_body(self, tid: int) -> Generator:
        for table_idx, item in self.queries[tid]:
            yield Work(10)
            yield Txn(self._reserve, (tid, table_idx, item), label="reserve")

    # -- oracle ----------------------------------------------------------
    def verify(self, memory: MainMemory) -> None:
        drained = 0
        for table in self.tables:
            for item, capacity in table.host_items(memory).items():
                if not 0 <= capacity <= self.INITIAL_CAPACITY:
                    raise AssertionError(
                        f"capacity of item {item} out of range: {capacity}"
                    )
                drained += self.INITIAL_CAPACITY - capacity
        booked = sum(
            memory.read_word(self.successes.addr(t))
            for t in range(self.num_threads)
        )
        if drained != booked:
            raise AssertionError(
                f"capacity drained by {drained} but {booked} bookings recorded"
            )
