"""intruder — network intrusion detection (capture / reassembly pipeline).

Two of the three pipeline stages run inside transactions (Section VII):

* **capture** pops a packet descriptor off a shared FIFO queue.  The queue
  pointer is read early and written late in the transaction ("a time gap
  between reading and modifying the structure pointer"), so many threads
  read the same head pointer concurrently — the pathological pattern that
  produces false-positive cycle detections in CHATS (outdated PiC values)
  and starving writers under requester-loses policies.
* **reassembly** inserts the packet's fragment into a shared search tree
  keyed by flow id; every Nth insert triggers a path rebalance whose large
  write set aborts all concurrent traversals.

Completed flows are pushed to a results queue by a third transaction.
The paper reports CHATS losing slightly to the baseline here while PCHATS
wins by over 30%.
"""

from __future__ import annotations

from typing import Generator

from ...mem.memory import MainMemory
from ...sim.ops import Read, Txn, Work, Write
from ..base import Workload, register
from ..structures import NodePool, SimArray, SimBST, SimQueue


@register
class Intruder(Workload):
    name = "intruder"

    #: One rebalance every this many tree inserts (per thread).
    rebalance_every = 7
    #: Simulated decode gap inside the capture transaction.
    capture_gap = 30
    #: Fragments per flow: one result deposit per completed flow.
    fragments_per_flow = 4

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.num_packets = self.scaled(threads * 22, floor=threads)
        self.packet_queue = SimQueue(
            self.space, self.num_packets + 8, name="capture-q"
        )
        self.result_queue = SimQueue(
            self.space, self.num_packets + 8, name="result-q"
        )
        pool = NodePool(
            self.space, self.num_packets + 16, 4, threads, name="intruder-pool"
        )
        self.tree = SimBST(self.space, pool, name="flows")
        self.processed = SimArray(
            self.space, threads, name="intruder-processed", padded=True
        )
        # Packet ids are unique; flow keys are shuffled so tree inserts
        # spread, with occasional bursts on nearby keys.
        self.packet_ids = list(range(1, self.num_packets + 1))
        self.rng.shuffle(self.packet_ids)

    def setup(self, memory: MainMemory) -> None:
        self.packet_queue.init(memory, self.packet_ids)
        self.result_queue.init(memory, [])
        self.processed.init(memory, [0] * self.num_threads)

    # -- transactions ----------------------------------------------------
    def _capture(self) -> Generator:
        head = yield Read(self.packet_queue.head_addr)
        tail = yield Read(self.packet_queue.tail_addr)
        if head == tail:
            return None
        packet = yield Read(
            self.packet_queue.slots.addr(head % self.packet_queue.capacity)
        )
        # The decode gap: the head pointer stays read-but-unmodified while
        # other threads race to pop the same slot.
        yield Work(self.capture_gap)
        yield Write(self.packet_queue.head_addr, head + 1)
        return packet

    def _reassemble(
        self, tid: int, node: int, packet: int, rebalance: bool
    ) -> Generator:
        inserted = yield from self.tree.insert(node, packet, packet * 5)
        if rebalance:
            yield from self.tree.rebalance_path(packet)
        done = yield Read(self.processed.addr(tid))
        yield Write(self.processed.addr(tid), done + 1)
        return inserted

    def _deposit(self, packet: int) -> Generator:
        ok = yield from self.result_queue.push(packet)
        return ok

    def thread_body(self, tid: int) -> Generator:
        handled = 0
        while True:
            packet = yield Txn(self._capture, (), label="capture")
            if packet is None:
                break
            handled += 1
            # Packet decode on private data before reassembly.
            yield Work(80)
            rebalance = handled % self.rebalance_every == 0
            node = self.tree.pool.reserve(("packet", packet))
            yield Txn(
                self._reassemble, (tid, node, packet, rebalance), label="reassembly"
            )
            if handled % self.fragments_per_flow == 0:
                yield Work(40)
                ok = yield Txn(self._deposit, (packet,), label="deposit")
                assert ok, "result queue overflow"

    # -- oracle ----------------------------------------------------------
    def verify(self, memory: MainMemory) -> None:
        popped = memory.read_word(self.packet_queue.head_addr)
        if popped != self.num_packets:
            raise AssertionError(
                f"captured {popped} packets, expected {self.num_packets}"
            )
        results = self.result_queue.final_size(memory)
        if not 0 < results <= self.num_packets // self.fragments_per_flow + self.num_threads:
            raise AssertionError(
                f"deposited {results} results for {self.num_packets} packets"
            )
        processed = sum(
            memory.read_word(self.processed.addr(t))
            for t in range(self.num_threads)
        )
        if processed != self.num_packets:
            raise AssertionError("processed-count mismatch")
        keys = self.tree.host_keys(memory)
        if sorted(keys) != sorted(self.packet_ids):
            raise AssertionError(
                f"tree holds {len(keys)} flows, expected {self.num_packets} "
                "distinct packets (duplicate or lost insert)"
            )
        if keys != sorted(keys):
            raise AssertionError("tree violates the BST in-order invariant")
