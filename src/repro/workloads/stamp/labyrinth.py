"""labyrinth — maze routing with huge read sets and scarce parallelism.

Each STAMP labyrinth transaction routes one wire through a shared grid: it
reads every cell along a candidate path (a large read set over the shared
structure) and, if all are free, claims them with writes.  Because every
route reads a large swath of the grid, concurrent transactions almost
always overlap and serialize; the paper notes that without *early release*
of the grid from the read set "labyrinth shows no improvements given its
scarce parallelism" — the behaviour this model reproduces (forwarding
cannot help when the whole structure is in every read set).

Paths are pre-drawn L-shaped routes; when a route attempt finds an
occupied cell it reports failure and the thread retries with the next
pre-drawn candidate.
"""

from __future__ import annotations

from typing import Generator, List

from ...mem.memory import MainMemory
from ...sim.ops import Read, Txn, Work, Write
from ..base import Workload, register
from ..structures import SimArray, SimCounter


@register
class Labyrinth(Workload):
    name = "labyrinth"

    #: Candidate paths drawn per route request before giving up.
    candidates_per_route = 4

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.side = self.scaled(24, floor=12)
        self.routes_per_thread = self.scaled(4, floor=1)
        self.grid = SimArray(self.space, self.side * self.side, name="grid")
        self.routed = SimCounter(self.space, name="labyrinth-routed")
        # Pre-draw all candidate paths for every route request.
        self.route_plans: List[List[List[List[int]]]] = []
        for _ in range(threads):
            plans = []
            for _ in range(self.routes_per_thread):
                plans.append(
                    [self._draw_path() for _ in range(self.candidates_per_route)]
                )
            self.route_plans.append(plans)

    def _draw_path(self) -> List[int]:
        """An L-shaped path between two random points, as cell indices."""
        x0, y0 = self.rng.randrange(self.side), self.rng.randrange(self.side)
        x1, y1 = self.rng.randrange(self.side), self.rng.randrange(self.side)
        cells: List[int] = []
        step = 1 if x1 >= x0 else -1
        for x in range(x0, x1 + step, step):
            cells.append(y0 * self.side + x)
        step = 1 if y1 >= y0 else -1
        for y in range(y0, y1 + step, step):
            cells.append(y * self.side + x1)
        # De-duplicate while keeping order (the corner cell appears twice).
        seen: set = set()
        unique = [c for c in cells if not (c in seen or seen.add(c))]
        return unique

    def setup(self, memory: MainMemory) -> None:
        self.grid.init(memory, [0] * (self.side * self.side))
        self.routed.init(memory, 0)

    # -- the routing transaction ------------------------------------------
    def _route(self, route_id: int, path: List[int]) -> Generator:
        # Read phase: the whole candidate path must be free.
        for cell in path:
            owner = yield Read(self.grid.addr(cell))
            if owner != 0:
                return False  # blocked; the thread will try another path
            yield Work(1)
        # Claim phase.
        for cell in path:
            yield Write(self.grid.addr(cell), route_id)
        yield from self.routed.add(1)
        return True

    def thread_body(self, tid: int) -> Generator:
        for r, candidates in enumerate(self.route_plans[tid]):
            route_id = 1 + tid * self.routes_per_thread + r
            for path in candidates:
                yield Work(15)  # path planning on a private grid snapshot
                ok = yield Txn(self._route, (route_id, path), label="route")
                if ok:
                    break

    # -- oracle ----------------------------------------------------------
    def verify(self, memory: MainMemory) -> None:
        # Atomicity oracle: each successful route owns its whole path; no
        # cell is owned by a route that failed; routes never interleave on
        # a cell (each cell has exactly one owner).
        owners = {}
        for cell in range(self.side * self.side):
            v = memory.read_word(self.grid.addr(cell))
            if v:
                owners.setdefault(v, []).append(cell)
        routed = memory.read_word(self.routed.addr)
        if len(owners) != routed:
            raise AssertionError(
                f"{len(owners)} routes own cells but {routed} committed"
            )
        # Each owning route's claimed cells must exactly match one of its
        # candidate paths (the one that succeeded), proving no partial
        # (torn) claims survived.
        for tid, plans in enumerate(self.route_plans):
            for r, candidates in enumerate(plans):
                route_id = 1 + tid * self.routes_per_thread + r
                cells = owners.get(route_id)
                if cells is None:
                    continue
                if not any(sorted(path) == sorted(cells) for path in candidates):
                    raise AssertionError(
                        f"route {route_id} claimed a torn path: {cells}"
                    )
