"""STAMP benchmark re-implementations (Section VI-C).

The suite follows the paper's selection: genome, intruder, kmeans
(low/high contention), labyrinth, ssca2, vacation, and yada; *bayes* is
excluded exactly as in the paper (its search algorithm's inherent
randomness makes run-to-run work vary).
"""

from __future__ import annotations


def register_all() -> None:
    """Import every STAMP module so its ``@register`` decorators run."""
    from . import genome  # noqa: F401
    from . import intruder  # noqa: F401
    from . import kmeans  # noqa: F401
    from . import labyrinth  # noqa: F401
    from . import ssca2  # noqa: F401
    from . import vacation  # noqa: F401
    from . import yada  # noqa: F401
