"""yada — Delaunay mesh refinement with long read-modify-write transactions.

STAMP's yada retriangulates a mesh: each long-running transaction visits a
set of triangle records around a "bad" element, reads them, and rewrites a
handful of them exactly once.  The paper highlights its *migration*
pattern: "whenever a transaction modifies a memory location, it would not
modify it again", so a modified block can be forwarded to concurrent
readers working on neighbouring triangles — CHATS cuts yada's
conflict-induced aborts roughly in half.

We model the mesh as an array of triangle records (one cache block each:
generation counter, quality word, and payload).  A refinement transaction
claims a cavity of records (pre-drawn, overlapping across threads),
reads each record's neighbourhood, then bumps each record's generation
exactly once.
"""

from __future__ import annotations

from typing import Generator, List

from ...mem.memory import MainMemory
from ...sim.ops import Read, Txn, Work, Write
from ..base import Workload, register
from ..structures import SimArray


@register
class Yada(Workload):
    name = "yada"

    #: Triangle-record words: [generation, quality, 6 payload words].
    record_words = 8
    #: Records rewritten per refinement (the cavity size).
    cavity_size = 6
    #: Extra records read-only per refinement (the cavity's border).
    border_size = 6

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.num_records = self.scaled(192, floor=threads * self.cavity_size)
        self.refinements_per_thread = self.scaled(12)
        self.records = SimArray(
            self.space, self.num_records * self.record_words, name="mesh"
        )
        # Pre-drawn cavities: distinct records within a transaction,
        # overlapping freely across transactions/threads.
        self.cavities: List[List[List[int]]] = []
        for _ in range(threads):
            thread_cavities = []
            for _ in range(self.refinements_per_thread):
                cavity = self.rng.sample(
                    range(self.num_records), self.cavity_size + self.border_size
                )
                thread_cavities.append(cavity)
            self.cavities.append(thread_cavities)

    def _gen_addr(self, record: int) -> int:
        return self.records.addr(record * self.record_words)

    def _quality_addr(self, record: int) -> int:
        return self.records.addr(record * self.record_words + 1)

    def setup(self, memory: MainMemory) -> None:
        for r in range(self.num_records):
            memory.write_word(self._gen_addr(r), 0)
            memory.write_word(self._quality_addr(r), (r * 7) % 31)

    # -- the refinement transaction ---------------------------------------
    def _refine(self, cavity: List[int]) -> Generator:
        writable = cavity[: self.cavity_size]
        border = cavity[self.cavity_size :]
        # Long read phase: inspect the whole cavity and its border.
        acc = 0
        for record in cavity:
            q = yield Read(self._quality_addr(record))
            acc += q
            yield Work(3)
        for record in border:
            g = yield Read(self._gen_addr(record))
            acc += g
        # Write phase: each record's generation bumped exactly once — the
        # migration pattern (no further stores to the same location).
        for record in writable:
            g = yield Read(self._gen_addr(record))
            yield Write(self._gen_addr(record), g + 1)
            yield Work(2)
        return acc

    def thread_body(self, tid: int) -> Generator:
        for cavity in self.cavities[tid]:
            yield Work(20)  # cavity discovery on private data
            yield Txn(self._refine, (cavity,), label="refine")

    # -- oracle ----------------------------------------------------------
    def verify(self, memory: MainMemory) -> None:
        total = sum(
            memory.read_word(self._gen_addr(r)) for r in range(self.num_records)
        )
        expected = (
            self.num_threads * self.refinements_per_thread * self.cavity_size
        )
        if total != expected:
            raise AssertionError(
                f"generation bumps {total} != {expected} "
                "(a lost or duplicated cavity update)"
            )
