"""Workload abstraction and registry.

A workload owns a simulated :class:`~repro.mem.address.AddressSpace`, lays
out its shared data structures in it, seeds committed memory in
:meth:`Workload.setup`, and provides one generator coroutine per thread
(:meth:`Workload.thread_body`).  Thread bodies yield
:mod:`~repro.sim.ops` operations; transactions are expressed as
:class:`~repro.sim.ops.Txn` markers whose bodies are generator functions,
restartable on abort.

``scale`` shrinks or grows the input sizes uniformly: benches use 1.0
(the calibrated default), unit/integration tests use smaller values for
speed.  All randomness flows from a seeded ``random.Random`` so every run
is reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, Generator, List

from ..mem.address import AddressSpace
from ..mem.memory import MainMemory


class Workload(ABC):
    """Base class of every benchmark."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        if threads < 1:
            raise ValueError("need at least one thread")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.num_threads = threads
        self.seed = seed
        self.scale = scale
        self.rng = random.Random(seed)
        self.space = AddressSpace()

    def scaled(self, value: int, *, floor: int = 1) -> int:
        """Apply the scale factor to an input-size parameter."""
        return max(floor, int(round(value * self.scale)))

    @abstractmethod
    def setup(self, memory: MainMemory) -> None:
        """Seed committed memory with the initial data image."""

    @abstractmethod
    def thread_body(self, tid: int) -> Generator:
        """Generator coroutine executed by thread ``tid``."""

    def verify(self, memory: MainMemory) -> None:
        """Check workload invariants on the final committed image.

        Called automatically at the end of every simulation; raising makes
        the run fail.  Subclasses override with real invariants — this is
        the serializability oracle of the test suite.
        """


WorkloadFactory = Callable[..., Workload]

_REGISTRY: Dict[str, WorkloadFactory] = {}


def register(factory: WorkloadFactory) -> WorkloadFactory:
    """Class decorator adding a workload to the global registry."""
    name = getattr(factory, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"workload {factory!r} needs a concrete name")
    if name in _REGISTRY:
        raise ValueError(f"duplicate workload name {name!r}")
    _REGISTRY[name] = factory
    return factory


def make_workload(
    name: str, *, threads: int = 16, seed: int = 1, scale: float = 1.0
) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(threads=threads, seed=seed, scale=scale)


def workload_names() -> List[str]:
    return sorted(_REGISTRY)
