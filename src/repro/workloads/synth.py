"""Synthetic microbenchmarks (Section VI-C) plus a test oracle workload.

* ``llb-l`` / ``llb-h`` — linked-list benchmark: threads traverse a shared
  sorted list, search an element, then modify it.  The low-contention
  flavour gives each thread a private window of 16 keys; the
  high-contention flavour draws 64 keys per thread uniformly over the
  whole list ("all threads are modifying all memory locations randomly").
  Paper parameters: list length 512, 256 iterations per thread.
* ``cadd`` — cluster add: a vector of clusters (queues of integers).
  Every transaction modifies a shared variable and then iterates over a
  whole cluster summing ``element + shared`` — the shared variable is held
  modified for a long time, the conflict pattern CHATS exploits by
  handing out local copies.  Paper parameters: 512 clusters of length 64.
* ``counter`` — not in the paper: a serializability oracle used by the
  test suite.  Threads apply known increments to shared counters; the
  final committed values must equal the sum of increments under *every*
  HTM system.
"""

from __future__ import annotations

from typing import Generator, List

from ..mem.memory import MainMemory
from ..sim.ops import Txn, Work, Write
from .base import Workload, register
from .structures import NodePool, SimArray, SimCounter, SimLinkedList


@register
class CounterWorkload(Workload):
    """Shared-counter increments with an exact serializability oracle."""

    name = "counter"

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        self.num_counters = max(1, int(4 * scale)) if scale < 1 else 4
        self.iterations = self.scaled(64)
        self.counters = [
            SimCounter(self.space, name=f"ctr{i}") for i in range(self.num_counters)
        ]
        # Pre-draw the per-thread schedules so every system sees the same
        # logical work.
        self.schedule: List[List[int]] = [
            [self.rng.randrange(self.num_counters) for _ in range(self.iterations)]
            for _ in range(threads)
        ]

    def setup(self, memory: MainMemory) -> None:
        for counter in self.counters:
            counter.init(memory, 0)

    def _increment(self, idx: int) -> Generator:
        # Read early, write late: the counter sits in the read set for a
        # while, creating a real conflict window between the increments.
        counter = self.counters[idx]
        old = yield from counter.get()
        yield Work(40)
        yield Write(counter.addr, old + 1)
        return old + 1

    def thread_body(self, tid: int) -> Generator:
        for idx in self.schedule[tid]:
            yield Txn(self._increment, (idx,), label="increment")
            yield Work(10)

    def expected_totals(self) -> List[int]:
        totals = [0] * self.num_counters
        for sched in self.schedule:
            for idx in sched:
                totals[idx] += 1
        return totals

    def verify(self, memory: MainMemory) -> None:
        expected = self.expected_totals()
        actual = [c.read_host(memory) for c in self.counters]
        if actual != expected:
            raise AssertionError(
                f"counter oracle violated: expected {expected}, got {actual}"
            )


@register
class SynthWorkload(CounterWorkload):
    """Alias of :class:`CounterWorkload` under the name ``synth``.

    The docs and CI use ``synth`` as the canonical tiny smoke workload
    for tracing (``repro run synth --trace ...``); it is byte-for-byte
    the shared-counter benchmark.
    """

    name = "synth"


class _LinkedListBenchmark(Workload):
    """Common machinery of the llb low/high contention flavours."""

    #: Distinct keys each thread works on; overridden by flavours.
    keys_per_thread = 16
    #: Whether keys are drawn from the whole list (high contention).
    global_keys = False

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        # The paper runs lists of length 512 for 256 iterations; the
        # simulator default is scaled to 256/48 so a full six-system sweep
        # stays interactive — pass scale>1 to approach the paper's sizes.
        self.list_length = self.scaled(256, floor=threads * 4)
        self.iterations = self.scaled(48)
        pool = NodePool(
            self.space, self.list_length + 8, 3, threads, name="llb-pool"
        )
        self.list = SimLinkedList(self.space, pool, name="llb")
        self._items = [(k, k * 10) for k in range(1, self.list_length + 1)]
        self.schedule: List[List[int]] = []
        for tid in range(threads):
            if self.global_keys:
                keys = [
                    self.rng.randrange(1, self.list_length + 1)
                    for _ in range(self.iterations)
                ]
            else:
                window = max(
                    1, min(self.keys_per_thread, self.list_length // threads)
                )
                base = 1 + (tid * self.list_length) // threads
                keys = [
                    base + self.rng.randrange(window)
                    for _ in range(self.iterations)
                ]
            self.schedule.append(keys)
        self._expected_writes = {}
        for tid, keys in enumerate(self.schedule):
            for it, key in enumerate(keys):
                # Last writer per key is unknowable (any serialization),
                # so verify only membership of committed values.
                self._expected_writes.setdefault(key, set()).add(
                    self._written_value(tid, it)
                )

    @staticmethod
    def _written_value(tid: int, iteration: int) -> int:
        return 1_000_000 + tid * 10_000 + iteration

    def setup(self, memory: MainMemory) -> None:
        self.list.init(memory, self._items)

    def _search_modify(self, tid: int, iteration: int, key: int) -> Generator:
        found = yield from self.list.update_value(
            key, self._written_value(tid, iteration)
        )
        assert found, f"key {key} must exist in the list"
        yield Work(4)
        return key

    def thread_body(self, tid: int) -> Generator:
        for it, key in enumerate(self.schedule[tid]):
            yield Txn(self._search_modify, (tid, it, key), label="search-modify")
            yield Work(8)

    def verify(self, memory: MainMemory) -> None:
        # Every touched key must hold one of the values some thread wrote;
        # untouched keys keep their initial value.
        node = memory.read_word(self.list.head_addr)
        seen = 0
        while node:
            key = memory.read_word(self.list.pool.field(node, SimLinkedList.KEY))
            value = memory.read_word(
                self.list.pool.field(node, SimLinkedList.VALUE)
            )
            candidates = self._expected_writes.get(key)
            if candidates is None:
                if value != key * 10:
                    raise AssertionError(
                        f"untouched key {key} mutated to {value}"
                    )
            elif value not in candidates:
                raise AssertionError(
                    f"key {key} holds {value}, not among the values written "
                    f"by any transaction"
                )
            seen += 1
            node = memory.read_word(self.list.pool.field(node, SimLinkedList.NEXT))
        if seen != self.list_length:
            raise AssertionError(
                f"list shrank/grew: {seen} nodes vs {self.list_length}"
            )


@register
class LLBLow(_LinkedListBenchmark):
    """llb, low contention: 16 mostly-private keys per thread."""

    name = "llb-l"
    keys_per_thread = 16
    global_keys = False


@register
class LLBHigh(_LinkedListBenchmark):
    """llb, high contention: 64 keys drawn over the whole list."""

    name = "llb-h"
    keys_per_thread = 64
    global_keys = True


@register
class CAdd(Workload):
    """cadd: shared-variable + cluster summation (Section VI-C)."""

    name = "cadd"

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        super().__init__(threads=threads, seed=seed, scale=scale)
        # Paper inputs: 512 clusters of length 64; scaled down by default
        # (same rationale as llb).
        self.num_clusters = self.scaled(128, floor=threads)
        self.cluster_len = self.scaled(16, floor=4)
        self.iterations = self.scaled(24)
        self.shared = SimCounter(self.space, name="cadd-shared")
        self.clusters = [
            SimArray(self.space, self.cluster_len, name=f"cluster{i}")
            for i in range(self.num_clusters)
        ]
        self.sums = SimArray(self.space, threads, name="cadd-sums", padded=True)
        self.schedule: List[List[int]] = [
            [self.rng.randrange(self.num_clusters) for _ in range(self.iterations)]
            for _ in range(threads)
        ]

    def setup(self, memory: MainMemory) -> None:
        self.shared.init(memory, 0)
        for i, cluster in enumerate(self.clusters):
            cluster.init(
                memory, ((i + j) % 97 for j in range(self.cluster_len))
            )
        self.sums.init(memory, [0] * self.num_threads)

    def _cluster_add(self, tid: int, iteration: int, cluster_idx: int) -> Generator:
        # Blindly overwrite the shared variable first, then hold it
        # modified while walking the whole cluster — a long-lived conflict
        # window over final data, the best case for CHATS ("several
        # transactions [can] have local copies of those locations").
        stamp = self._stamp(tid, iteration)
        yield Write(self.shared.addr, stamp)
        total = 0
        cluster = self.clusters[cluster_idx]
        for j in range(self.cluster_len):
            element = yield from cluster.get(j)
            total += element + stamp
            yield Work(1)
        old = yield from self.sums.get(tid)
        yield from self.sums.set(tid, old + total)
        return total

    @staticmethod
    def _stamp(tid: int, iteration: int) -> int:
        return 1 + tid * 1_000 + iteration

    def thread_body(self, tid: int) -> Generator:
        for it, cluster_idx in enumerate(self.schedule[tid]):
            yield Txn(
                self._cluster_add, (tid, it, cluster_idx), label="cluster-add"
            )
            yield Work(6)

    def verify(self, memory: MainMemory) -> None:
        # The shared word must hold one of the stamps some thread wrote.
        final = self.shared.read_host(memory)
        valid = {
            self._stamp(tid, it)
            for tid in range(self.num_threads)
            for it in range(self.iterations)
        }
        if final not in valid:
            raise AssertionError(f"cadd shared word holds foreign value {final}")
        # Per-thread sums depend only on that thread's own stamps and the
        # (constant) cluster contents, so they are exactly predictable.
        for tid in range(self.num_threads):
            expected = 0
            for it, cluster_idx in enumerate(self.schedule[tid]):
                stamp = self._stamp(tid, it)
                expected += sum(
                    (cluster_idx + j) % 97 + stamp
                    for j in range(self.cluster_len)
                )
            actual = memory.read_word(self.sums.addr(tid))
            if actual != expected:
                raise AssertionError(
                    f"thread {tid} sum {actual} != expected {expected}"
                )
