"""Shared data structures over simulated memory.

STAMP's transactional behaviour comes from the data structures its
benchmarks traverse — linked lists, FIFO queues, hash tables, binary
trees.  These are re-implemented here on top of the simulated word-
addressed memory: every field access is a yielded
:class:`~repro.sim.ops.Read`/:class:`~repro.sim.ops.Write`, so cache
blocks, conflicts, and forwarding behave as they would for the original
pointer-chasing code.

Each structure has two faces:

* ``init(memory)`` — direct seeding of committed memory (simulation-free
  setup, the equivalent of the benchmark's serial initialisation phase);
* generator methods (``search``, ``insert``, ``pop`` ...) used inside
  transaction bodies with ``yield from``, returning their result via the
  generator's ``return`` value.

Pointers are simulated byte addresses; the null pointer is 0.
"""

from __future__ import annotations

from typing import Generator, List

from ..mem.address import AddressSpace
from ..mem.memory import MainMemory
from ..sim.ops import Read, Write

NULL = 0


class SimArray:
    """A fixed-size array of words.

    ``padded=True`` places every element in its own cache block — use it
    for hot per-entity words (per-thread counters, per-chain tails) that
    the original C code allocates as separate heap objects and that must
    therefore not false-share.
    """

    def __init__(
        self,
        space: AddressSpace,
        length: int,
        *,
        name: str = "array",
        padded: bool = False,
    ):
        if length < 1:
            raise ValueError("array needs at least one element")
        self.space = space
        self.length = length
        self.name = name
        self.padded = padded
        if padded:
            self._stride = space.geometry.block_bytes // space.geometry.word_bytes
            self.base = space.alloc_words(length * self._stride)
        else:
            self._stride = 1
            self.base = space.alloc_words(length)

    def addr(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name}[{index}] out of range")
        return self.space.word_addr(self.base, index * self._stride)

    def init(self, memory: MainMemory, values) -> None:
        for i, v in enumerate(values):
            memory.write_word(self.addr(i), v)

    def get(self, index: int) -> Generator:
        value = yield Read(self.addr(index))
        return value

    def set(self, index: int, value: int) -> Generator:
        yield Write(self.addr(index), value)


class NodePool:
    """Pre-allocated node records with per-thread free lists.

    STAMP uses per-thread memory allocators, so node allocation itself is
    not a contention point; we reproduce that with per-thread bump
    pointers over a shared arena.  ``words_per_node`` fields per node,
    block-aligned so distinct nodes never false-share.
    """

    def __init__(
        self,
        space: AddressSpace,
        capacity: int,
        words_per_node: int,
        threads: int,
        *,
        name: str = "pool",
    ):
        if capacity < threads:
            raise ValueError("pool smaller than thread count")
        self.space = space
        self.words_per_node = words_per_node
        self.name = name
        self._nodes = [
            space.alloc_words(words_per_node) for _ in range(capacity)
        ]
        # Round-robin partition among threads.
        self._free: List[List[int]] = [[] for _ in range(threads)]
        for i, node in enumerate(self._nodes):
            self._free[i % threads].append(node)
        #: Nodes handed out to logical operations via :meth:`reserve`.
        self._reserved: dict = {}

    def alloc_init(self) -> int:
        """Take a node during serial setup (consumes from thread 0's list
        last so runtime allocation stays balanced)."""
        for free in self._free:
            if free:
                return free.pop()
        raise MemoryError(f"{self.name}: node pool exhausted during init")

    def alloc(self, tid: int) -> int:
        """Runtime allocation by thread ``tid`` (host-side bookkeeping; the
        node's *contents* are still written through simulated ops)."""
        free = self._free[tid]
        if free:
            return free.pop()
        # Steal from the richest neighbour before giving up.
        donor = max(self._free, key=len)
        if donor:
            return donor.pop()
        raise MemoryError(f"{self.name}: node pool exhausted")

    def reserve(self, key) -> int:
        """Deterministic allocation for one *logical* operation.

        Transaction bodies re-execute on abort, so a body must not call
        :meth:`alloc` directly — every retry would leak a node.  Instead
        the workload reserves the node once per logical insert (keyed by
        e.g. ``(tid, iteration)``) and passes the address into the body;
        retries rewrite the same node's fields transactionally.
        """
        node = self._reserved.get(key)
        if node is None:
            node = self.alloc(0)
            self._reserved[key] = node
        return node

    def free(self, tid: int, node: int) -> None:
        self._free[tid].append(node)

    def field(self, node: int, index: int) -> int:
        if not 0 <= index < self.words_per_node:
            raise IndexError(f"{self.name}: field {index} out of range")
        return self.space.word_addr(node, index)


class SimLinkedList:
    """Sorted singly linked list of (key, value) nodes.

    Node layout: [key, value, next].  Used by the *llb* microbenchmark and
    genome's segment chains.
    """

    KEY, VALUE, NEXT = 0, 1, 2

    def __init__(
        self,
        space: AddressSpace,
        pool: NodePool,
        *,
        name: str = "list",
    ):
        self.space = space
        self.pool = pool
        self.name = name
        # Head pointer in its own block.
        self.head_addr = space.alloc_words(1)

    # -- serial init ----------------------------------------------------
    def init(self, memory: MainMemory, items) -> None:
        """Build the list (sorted by key) directly in committed memory."""
        items = sorted(items)
        prev_addr = self.head_addr
        for key, value in items:
            node = self.pool.alloc_init()
            memory.write_word(self.pool.field(node, self.KEY), key)
            memory.write_word(self.pool.field(node, self.VALUE), value)
            memory.write_word(self.pool.field(node, self.NEXT), NULL)
            memory.write_word(prev_addr, node)
            prev_addr = self.pool.field(node, self.NEXT)

    # -- transactional operations ----------------------------------------
    def search(self, key: int) -> Generator:
        """Find the node with ``key``; returns its address or NULL."""
        node = yield Read(self.head_addr)
        while node != NULL:
            k = yield Read(self.pool.field(node, self.KEY))
            if k == key:
                return node
            if k > key:
                return NULL
            node = yield Read(self.pool.field(node, self.NEXT))
        return NULL

    def update_value(self, key: int, value: int) -> Generator:
        """Search then modify — the llb pattern.  Returns True on hit."""
        node = yield from self.search(key)
        if node == NULL:
            return False
        yield Write(self.pool.field(node, self.VALUE), value)
        return True

    def add_to_value(self, key: int, delta: int) -> Generator:
        """Read-modify-write of a node's value."""
        node = yield from self.search(key)
        if node == NULL:
            return False
        old = yield Read(self.pool.field(node, self.VALUE))
        yield Write(self.pool.field(node, self.VALUE), old + delta)
        return True

    def insert(self, new: int, key: int, value: int) -> Generator:
        """Sorted insert of the pre-reserved node ``new`` (see
        :meth:`NodePool.reserve`); returns False when the key exists."""
        prev_addr = self.head_addr
        node = yield Read(self.head_addr)
        while node != NULL:
            k = yield Read(self.pool.field(node, self.KEY))
            if k == key:
                return False
            if k > key:
                break
            prev_addr = self.pool.field(node, self.NEXT)
            node = yield Read(prev_addr)
        yield Write(self.pool.field(new, self.KEY), key)
        yield Write(self.pool.field(new, self.VALUE), value)
        yield Write(self.pool.field(new, self.NEXT), node)
        yield Write(prev_addr, new)
        return True


class SimQueue:
    """Bounded FIFO ring buffer.

    Layout: head and tail indices share one block (the intruder *capture*
    contention point: a time gap between reading and bumping the pointer),
    slots live in their own array.
    """

    def __init__(self, space: AddressSpace, capacity: int, *, name: str = "queue"):
        if capacity < 2:
            raise ValueError("queue capacity must be at least 2")
        self.space = space
        self.capacity = capacity
        self.name = name
        header = space.alloc_words(2)
        self.head_addr = space.word_addr(header, 0)
        self.tail_addr = space.word_addr(header, 1)
        self.slots = SimArray(space, capacity, name=f"{name}.slots")

    def init(self, memory: MainMemory, items) -> None:
        items = list(items)
        if len(items) >= self.capacity:
            raise ValueError(f"{self.name}: {len(items)} items overflow the ring")
        for i, item in enumerate(items):
            memory.write_word(self.slots.addr(i), item)
        memory.write_word(self.head_addr, 0)
        memory.write_word(self.tail_addr, len(items))

    def pop(self) -> Generator:
        """Dequeue; returns the item or None when empty."""
        head = yield Read(self.head_addr)
        tail = yield Read(self.tail_addr)
        if head == tail:
            return None
        item = yield Read(self.slots.addr(head % self.capacity))
        yield Write(self.head_addr, head + 1)
        return item

    def push(self, item: int) -> Generator:
        """Enqueue; returns False when full."""
        head = yield Read(self.head_addr)
        tail = yield Read(self.tail_addr)
        if tail - head >= self.capacity - 1:
            return False
        yield Write(self.slots.addr(tail % self.capacity), item)
        yield Write(self.tail_addr, tail + 1)
        return True

    def final_size(self, memory: MainMemory) -> int:
        return memory.read_word(self.tail_addr) - memory.read_word(self.head_addr)


class SimHashTable:
    """Chained hash table of (key, value) pairs.

    Node layout: [key, value, next].  Bucket heads are one word each, so
    with 8 buckets per 64-byte block nearby buckets false-share — as they
    would in the C original.
    """

    KEY, VALUE, NEXT = 0, 1, 2

    def __init__(
        self,
        space: AddressSpace,
        buckets: int,
        pool: NodePool,
        *,
        name: str = "hash",
    ):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.space = space
        self.buckets = buckets
        self.pool = pool
        self.name = name
        self.heads = SimArray(space, buckets, name=f"{name}.heads")

    def _bucket(self, key: int) -> int:
        # Deterministic integer hash (xorshift-multiply).
        h = key & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 33
        h = (h * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 29
        return h % self.buckets

    def init(self, memory: MainMemory, items) -> None:
        for key, value in items:
            b = self._bucket(key)
            node = self.pool.alloc_init()
            memory.write_word(self.pool.field(node, self.KEY), key)
            memory.write_word(self.pool.field(node, self.VALUE), value)
            memory.write_word(
                self.pool.field(node, self.NEXT),
                memory.read_word(self.heads.addr(b)),
            )
            memory.write_word(self.heads.addr(b), node)

    def lookup(self, key: int) -> Generator:
        """Returns the value for ``key`` or None."""
        node = yield Read(self.heads.addr(self._bucket(key)))
        while node != NULL:
            k = yield Read(self.pool.field(node, self.KEY))
            if k == key:
                value = yield Read(self.pool.field(node, self.VALUE))
                return value
            node = yield Read(self.pool.field(node, self.NEXT))
        return None

    def insert(self, new: int, key: int, value: int) -> Generator:
        """Insert if absent, linking the pre-reserved node ``new``;
        returns True when the node was linked."""
        head_addr = self.heads.addr(self._bucket(key))
        node = yield Read(head_addr)
        cursor = node
        while cursor != NULL:
            k = yield Read(self.pool.field(cursor, self.KEY))
            if k == key:
                return False
            cursor = yield Read(self.pool.field(cursor, self.NEXT))
        yield Write(self.pool.field(new, self.KEY), key)
        yield Write(self.pool.field(new, self.VALUE), value)
        yield Write(self.pool.field(new, self.NEXT), node)
        yield Write(head_addr, new)
        return True

    def update_add(self, new: int, key: int, delta: int) -> Generator:
        """Upsert: add ``delta`` to the key's value (insert 0+delta).
        ``new`` is the pre-reserved node used if the key is absent."""
        head_addr = self.heads.addr(self._bucket(key))
        node = yield Read(head_addr)
        cursor = node
        while cursor != NULL:
            k = yield Read(self.pool.field(cursor, self.KEY))
            if k == key:
                old = yield Read(self.pool.field(cursor, self.VALUE))
                yield Write(self.pool.field(cursor, self.VALUE), old + delta)
                return False
            cursor = yield Read(self.pool.field(cursor, self.NEXT))
        yield Write(self.pool.field(new, self.KEY), key)
        yield Write(self.pool.field(new, self.VALUE), delta)
        yield Write(self.pool.field(new, self.NEXT), node)
        yield Write(head_addr, new)
        return True

    def host_items(self, memory: MainMemory):
        """Read the whole table directly from committed memory (verify)."""
        out = {}
        for b in range(self.buckets):
            node = memory.read_word(self.heads.addr(b))
            while node != NULL:
                k = memory.read_word(self.pool.field(node, self.KEY))
                v = memory.read_word(self.pool.field(node, self.VALUE))
                out[k] = v
                node = memory.read_word(self.pool.field(node, self.NEXT))
        return out


class SimBST:
    """Unbalanced binary search tree with an explicit *rebalance* pass.

    Node layout: [key, value, left, right].  ``insert`` is the intruder
    *reassembly* pattern: a read-heavy traversal followed by one pointer
    write.  ``rebalance`` rewrites the pointers along a whole root-to-leaf
    path (a large write set), mimicking the occasional red-black tree
    fix-ups that abort every concurrent traversal.
    """

    KEY, VALUE, LEFT, RIGHT = 0, 1, 2, 3

    def __init__(self, space: AddressSpace, pool: NodePool, *, name: str = "bst"):
        self.space = space
        self.pool = pool
        self.name = name
        self.root_addr = space.alloc_words(1)

    def init(self, memory: MainMemory, items) -> None:
        for key, value in items:
            self._host_insert(memory, key, value)

    def _host_insert(self, memory: MainMemory, key: int, value: int) -> None:
        node = self.pool.alloc_init()
        memory.write_word(self.pool.field(node, self.KEY), key)
        memory.write_word(self.pool.field(node, self.VALUE), value)
        memory.write_word(self.pool.field(node, self.LEFT), NULL)
        memory.write_word(self.pool.field(node, self.RIGHT), NULL)
        cursor = memory.read_word(self.root_addr)
        if cursor == NULL:
            memory.write_word(self.root_addr, node)
            return
        while True:
            k = memory.read_word(self.pool.field(cursor, self.KEY))
            side = self.LEFT if key < k else self.RIGHT
            nxt = memory.read_word(self.pool.field(cursor, side))
            if nxt == NULL:
                memory.write_word(self.pool.field(cursor, side), node)
                return
            cursor = nxt

    def insert(self, new: int, key: int, value: int) -> Generator:
        """Transactional insert of the pre-reserved node ``new``; returns
        False on duplicate key."""
        cursor = yield Read(self.root_addr)
        if cursor == NULL:
            yield from self._fill_node(new, key, value)
            yield Write(self.root_addr, new)
            return True
        while True:
            k = yield Read(self.pool.field(cursor, self.KEY))
            if k == key:
                return False
            side = self.LEFT if key < k else self.RIGHT
            nxt = yield Read(self.pool.field(cursor, side))
            if nxt == NULL:
                yield from self._fill_node(new, key, value)
                yield Write(self.pool.field(cursor, side), new)
                return True
            cursor = nxt

    def _fill_node(self, node: int, key: int, value: int) -> Generator:
        yield Write(self.pool.field(node, self.KEY), key)
        yield Write(self.pool.field(node, self.VALUE), value)
        yield Write(self.pool.field(node, self.LEFT), NULL)
        yield Write(self.pool.field(node, self.RIGHT), NULL)

    def contains(self, key: int) -> Generator:
        cursor = yield Read(self.root_addr)
        while cursor != NULL:
            k = yield Read(self.pool.field(cursor, self.KEY))
            if k == key:
                return True
            side = self.LEFT if key < k else self.RIGHT
            cursor = yield Read(self.pool.field(cursor, side))
        return False

    def rebalance_path(self, key: int) -> Generator:
        """Rotate every node along the search path for ``key`` whose
        children are skewed; touches (reads+writes) the whole path."""
        parent_addr = self.root_addr
        cursor = yield Read(self.root_addr)
        depth = 0
        while cursor != NULL and depth < 24:
            depth += 1
            k = yield Read(self.pool.field(cursor, self.KEY))
            left = yield Read(self.pool.field(cursor, self.LEFT))
            right = yield Read(self.pool.field(cursor, self.RIGHT))
            if key < k:
                if left != NULL:
                    # Right-rotate: left child becomes the subtree root.
                    left_right = yield Read(self.pool.field(left, self.RIGHT))
                    yield Write(self.pool.field(left, self.RIGHT), cursor)
                    yield Write(self.pool.field(cursor, self.LEFT), left_right)
                    yield Write(parent_addr, left)
                    parent_addr = self.pool.field(left, self.RIGHT)
                    cursor = yield Read(parent_addr)
                    continue
                parent_addr = self.pool.field(cursor, self.LEFT)
            else:
                parent_addr = self.pool.field(cursor, self.RIGHT)
            cursor = yield Read(parent_addr)
        return depth

    def host_keys(self, memory: MainMemory) -> List[int]:
        """In-order key walk on committed memory (verify)."""
        out: List[int] = []
        stack: List[int] = []
        cursor = memory.read_word(self.root_addr)
        guard = 0
        while (cursor != NULL or stack) and guard < 1_000_000:
            guard += 1
            while cursor != NULL:
                stack.append(cursor)
                cursor = memory.read_word(self.pool.field(cursor, self.LEFT))
            cursor = stack.pop()
            out.append(memory.read_word(self.pool.field(cursor, self.KEY)))
            cursor = memory.read_word(self.pool.field(cursor, self.RIGHT))
        return out


class SimCounter:
    """A single shared word with read-modify-write helpers."""

    def __init__(self, space: AddressSpace, *, name: str = "counter"):
        self.addr = space.alloc_words(1)
        self.name = name

    def init(self, memory: MainMemory, value: int = 0) -> None:
        memory.write_word(self.addr, value)

    def add(self, delta: int) -> Generator:
        old = yield Read(self.addr)
        yield Write(self.addr, old + delta)
        return old + delta

    def get(self) -> Generator:
        value = yield Read(self.addr)
        return value

    def read_host(self, memory: MainMemory) -> int:
        return memory.read_word(self.addr)
