"""Set-associative L1 data cache model.

Only the L1 needs structural modelling: it is where speculative versioning
happens (the SM bit per line) and where capacity aborts originate.  L2/L3
are modelled as latency (values live in :mod:`repro.mem.memory`).

Key behaviours from the paper's baseline (Section VI-B):

* lazy versioning — speculatively written blocks are marked SM; the
  non-speculative version conceptually lives in L2 (our committed memory);
* abort is a conditional gang-invalidation of SM lines;
* replacement favours write-set blocks, so evicting an SM line (a capacity
  abort) only happens when a set fills with SM lines;
* speculatively *received* blocks (CHATS) are inserted as SM write-set
  lines so the existing machinery discards them on abort (Section III-A).

Hot-path notes: lines and the cache itself are ``__slots__`` records, and
SM lines are additionally indexed in a block → line dict so the abort
(gang invalidation) and commit (mark clearing) sweeps cost O(write set)
instead of O(cache).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.config import SystemConfig


class CacheLine:
    __slots__ = ("block", "state", "speculative", "spec_received", "last_use")

    def __init__(
        self,
        block: int,
        state: str = "I",  # I, S, E, M
        speculative: bool = False,  # the SM bit
        spec_received: bool = False,  # received via SpecResp, pending validation
        last_use: int = 0,
    ):
        self.block = block
        self.state = state
        self.speculative = speculative
        self.spec_received = spec_received
        self.last_use = last_use

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(block={self.block:#x}, state={self.state!r}, "
            f"speculative={self.speculative}, spec_received={self.spec_received})"
        )


class CapacityAbort(Exception):
    """Raised when an SM line must be evicted: the transaction cannot keep
    its write set in L1 and must abort (capacity abort)."""

    def __init__(self, block: int):
        super().__init__(f"eviction of speculative block {block:#x}")
        self.block = block


class L1Cache:
    """Per-core L1D.  Tracks presence/state; values live elsewhere."""

    __slots__ = ("config", "_sets", "_nsets", "_ways", "_tick", "_spec")

    def __init__(self, config: SystemConfig):
        self.config = config
        self._nsets = config.l1_sets
        self._ways = config.l1_ways
        self._sets: List[Dict[int, CacheLine]] = [
            dict() for _ in range(self._nsets)
        ]
        self._tick = 0
        # SM-line index: block -> line, maintained by every path that sets
        # or clears the speculative bit or removes a line.
        self._spec: Dict[int, CacheLine] = {}

    def _set_of(self, block: int) -> Dict[int, CacheLine]:
        return self._sets[block % self._nsets]

    def lookup(self, block: int) -> Optional[CacheLine]:
        line = self._sets[block % self._nsets].get(block)
        if line is not None:
            self._tick += 1
            line.last_use = self._tick
        return line

    def peek(self, block: int) -> Optional[CacheLine]:
        """Lookup without touching recency."""
        return self._sets[block % self._nsets].get(block)

    def install(
        self,
        block: int,
        state: str,
        *,
        speculative: bool = False,
        spec_received: bool = False,
    ) -> Optional[CacheLine]:
        """Insert/refresh a line.

        Returns the evicted victim line (so the controller can write back
        owned victims), or ``None``.  Raises :class:`CapacityAbort` when
        the only victims available are speculative (SM) lines.
        """
        cset = self._sets[block % self._nsets]
        line = cset.get(block)
        self._tick += 1
        if line is not None:
            line.state = state
            if speculative and not line.speculative:
                line.speculative = True
                self._spec[block] = line
            line.spec_received = line.spec_received or spec_received
            line.last_use = self._tick
            return None
        victim: Optional[CacheLine] = None
        if len(cset) >= self._ways:
            victim_block = self._choose_victim(cset)
            victim = cset[victim_block]
            if victim.speculative:
                # Write-set block would leave the cache: capacity abort.
                raise CapacityAbort(victim_block)
            del cset[victim_block]
        cset[block] = line = CacheLine(
            block, state, speculative, spec_received, self._tick
        )
        if speculative:
            self._spec[block] = line
        return victim

    def _choose_victim(self, cset: Dict[int, CacheLine]) -> int:
        """LRU among non-speculative lines first (write-set-aware policy);
        among speculative lines only when no other choice exists.  With
        the ablation switch off, plain LRU applies — evicting whatever is
        oldest, including SM lines (which then costs a capacity abort)."""
        if self.config.write_set_aware_replacement:
            non_spec = [ln for ln in cset.values() if not ln.speculative]
            pool = non_spec if non_spec else list(cset.values())
        else:
            pool = list(cset.values())
        return min(pool, key=lambda ln: ln.last_use).block

    def mark_speculative(self, block: int) -> None:
        line = self._sets[block % self._nsets].get(block)
        if line is None:
            raise KeyError(f"block {block:#x} not cached")
        line.speculative = True
        self._spec[block] = line

    def invalidate(self, block: int) -> None:
        self._sets[block % self._nsets].pop(block, None)
        self._spec.pop(block, None)

    def gang_invalidate_speculative(self) -> List[int]:
        """Abort path: drop every SM line; returns the blocks dropped."""
        spec = self._spec
        if not spec:
            return []
        sets = self._sets
        nsets = self._nsets
        dropped = list(spec)
        for block in dropped:
            del sets[block % nsets][block]
        spec.clear()
        return dropped

    def clear_speculative_marks(self) -> List[int]:
        """Commit path: SM lines become ordinary M lines; returns them."""
        spec = self._spec
        if not spec:
            return []
        for line in spec.values():
            line.speculative = False
            line.spec_received = False
            line.state = "M"
        cleared = list(spec)
        spec.clear()
        return cleared

    def speculative_blocks(self) -> List[int]:
        return list(self._spec)

    def resident_blocks(self) -> List[int]:
        return [line.block for cset in self._sets for line in cset.values()]

    def occupancy(self) -> int:
        return sum(len(cset) for cset in self._sets)
