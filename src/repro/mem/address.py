"""Address geometry helpers.

The simulator uses a flat word-addressed memory.  Addresses are byte
addresses; blocks are the coherence/versioning granularity (64 bytes by
default) and words are the value granularity (8 bytes).  All helpers are
pure functions parameterised by a :class:`Geometry` so tests can shrink the
block size.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Geometry:
    """Block/word partitioning of the byte address space."""

    block_bytes: int = 64
    word_bytes: int = 8

    def __post_init__(self) -> None:
        if self.block_bytes <= 0 or self.word_bytes <= 0:
            raise ValueError("sizes must be positive")
        if self.block_bytes % self.word_bytes:
            raise ValueError("block size must be a multiple of word size")
        for size in (self.block_bytes, self.word_bytes):
            if size & (size - 1):
                raise ValueError("sizes must be powers of two")

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // self.word_bytes

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr // self.block_bytes

    def word_of(self, addr: int) -> int:
        """Word number containing byte address ``addr``."""
        return addr // self.word_bytes

    def block_of_word(self, word: int) -> int:
        """Block number containing word number ``word``."""
        return word * self.word_bytes // self.block_bytes

    def words_in_block(self, block: int) -> range:
        """Word numbers covered by ``block``."""
        first = block * self.block_bytes // self.word_bytes
        return range(first, first + self.words_per_block)

    def block_base(self, block: int) -> int:
        """First byte address of ``block``."""
        return block * self.block_bytes

    def align_word(self, addr: int) -> int:
        """Byte address of the word containing ``addr``."""
        return addr - (addr % self.word_bytes)


DEFAULT_GEOMETRY = Geometry()


class AddressSpace:
    """A bump allocator handing out disjoint simulated memory regions.

    Workloads use this to lay out their shared data structures.  Allocations
    are block-aligned by default so that independent objects do not falsely
    conflict through block sharing — except when a workload *wants* false
    sharing, in which case it can allocate unaligned.
    """

    def __init__(self, geometry: Geometry = DEFAULT_GEOMETRY, base: int = 0x1000):
        self._geometry = geometry
        self._next = base

    @property
    def geometry(self) -> Geometry:
        return self._geometry

    def alloc(self, nbytes: int, *, align_block: bool = True) -> int:
        """Reserve ``nbytes`` and return the base byte address."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        if align_block:
            rem = self._next % self._geometry.block_bytes
            if rem:
                self._next += self._geometry.block_bytes - rem
        base = self._next
        self._next += nbytes
        return base

    def alloc_words(self, nwords: int, *, align_block: bool = True) -> int:
        """Reserve ``nwords`` words and return the base byte address."""
        return self.alloc(nwords * self._geometry.word_bytes, align_block=align_block)

    def word_addr(self, base: int, index: int) -> int:
        """Byte address of the ``index``-th word of a region at ``base``."""
        return base + index * self._geometry.word_bytes
