"""Value storage: the committed memory image and speculative overlays.

The simulator separates *timing* (caches, directory, network) from *values*.
Values live here:

* :class:`MainMemory` — the committed image, a word → int mapping.  This is
  what the L2/L3/DRAM of the paper's machine would hold: non-speculative
  data is written back to L2 before a block is speculatively modified in L1,
  so aborting is just discarding the L1 copies.
* :class:`SpeculativeStore` — one per in-flight transaction: the words the
  transaction has written (its redo image) plus the blocks it received
  speculatively from other transactions.

``block_value`` materialises the 8-word content of a block as seen by a
given transaction; it is the payload carried by data and SpecResp messages
and the quantity compared during value-based validation.  Both classes are
``__slots__`` records with the geometry constants (word size, words per
block) bound as plain ints at construction — ``block_value`` and the word
accessors sit on the coherence hot path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .address import Geometry


BlockValue = Tuple[int, ...]


class MainMemory:
    """Committed word store.  Unwritten words read as zero."""

    __slots__ = ("_geometry", "_words", "_wb", "_wpb")

    def __init__(self, geometry: Geometry):
        self._geometry = geometry
        self._words: Dict[int, int] = {}
        self._wb = geometry.word_bytes
        self._wpb = geometry.words_per_block

    @property
    def geometry(self) -> Geometry:
        return self._geometry

    def read_word(self, addr: int) -> int:
        return self._words.get(addr // self._wb, 0)

    def write_word(self, addr: int, value: int) -> None:
        self._words[addr // self._wb] = value

    def block_value(self, block: int) -> BlockValue:
        """Committed content of ``block`` as a word tuple."""
        get = self._words.get
        first = block * self._wpb
        return tuple([get(w, 0) for w in range(first, first + self._wpb)])

    def apply_block(self, block: int, value: BlockValue) -> None:
        """Overwrite the committed content of ``block``."""
        words = self._geometry.words_in_block(block)
        if len(value) != len(words):
            raise ValueError("block value has wrong arity")
        for word, val in zip(words, value):
            self._words[word] = val

    def snapshot(self) -> Dict[int, int]:
        """Copy of the committed image (for test oracles)."""
        return dict(self._words)


class SpeculativeStore:
    """Redo image of one transaction attempt.

    Holds (a) words written by the transaction and (b) whole blocks received
    speculatively from other transactions (which enter the write set per
    Section III-A).  Reads hit the overlay first and fall back to committed
    memory.
    """

    __slots__ = (
        "_memory",
        "_geometry",
        "_words",
        "_mem_words",
        "_received_blocks",
        "_wb",
        "_wpb",
    )

    def __init__(self, memory: MainMemory):
        self._memory = memory
        self._geometry = memory.geometry
        self._words: Dict[int, int] = {}
        # The committed image dict is never rebound, only mutated, so the
        # overlay can alias it for fallback reads.
        self._mem_words = memory._words
        # Blocks whose *base* content came from a SpecResp.  Their words are
        # expanded into ``_words`` at receive time; the set is kept for
        # bookkeeping/stats.
        self._received_blocks: Dict[int, BlockValue] = {}
        self._wb = memory._wb
        self._wpb = memory._wpb

    def __len__(self) -> int:
        return len(self._words)

    @property
    def written_words(self) -> Dict[int, int]:
        return self._words

    def read_word(self, addr: int) -> int:
        word = addr // self._wb
        value = self._words.get(word)
        if value is not None:
            return value
        return self._mem_words.get(word, 0)

    def write_word(self, addr: int, value: int) -> None:
        self._words[addr // self._wb] = value

    def has_word(self, addr: int) -> bool:
        return addr // self._wb in self._words

    def block_value(self, block: int) -> BlockValue:
        """Content of ``block`` as this transaction sees it."""
        own = self._words.get
        mem = self._mem_words.get
        first = block * self._wpb
        return tuple(
            [own(w, mem(w, 0)) for w in range(first, first + self._wpb)]
        )

    def install_received_block(self, block: int, value: BlockValue) -> None:
        """Install a speculatively received block into the overlay.

        The consumer works on this copy as if it owned the block; a pristine
        copy is separately retained in the VSB for validation.
        """
        self._received_blocks[block] = value
        for word, val in zip(self._geometry.words_in_block(block), value):
            # Do not clobber words the transaction already wrote: its own
            # stores are younger than the forwarded base copy.
            self._words.setdefault(word, val)

    def received_block_origin(self, block: int) -> Optional[BlockValue]:
        return self._received_blocks.get(block)

    def written_blocks(self) -> set:
        """Blocks containing at least one speculatively written word."""
        block_of_word = self._geometry.block_of_word
        return {block_of_word(w) for w in self._words}

    def commit(self) -> None:
        """Flush the redo image into committed memory (atomic commit)."""
        self._mem_words.update(self._words)
        self._words.clear()
        self._received_blocks.clear()

    def discard(self) -> None:
        """Drop the redo image (abort)."""
        self._words.clear()
        self._received_blocks.clear()
