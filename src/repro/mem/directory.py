"""Directory-based MESI coherence (simplified, Table I: "MESI,
directory-based").

The directory tracks, per block, the exclusive owner (a core whose L1 holds
the line E/M) or a set of sharers.  Requests are processed atomically at
the directory; while a request is being resolved by a remote cache (a
forward to the owner, or an invalidation round to sharers) the block is
*busy* and later requests queue FIFO.

CHATS' key protocol property is implemented here by *omission*: when a
probed holder answers with a ``SpecResp`` it sends the directory a
``CANCEL``, and the directory simply unbusies the block — no ownership or
sharer change, exactly as Section IV-A prescribes ("the directory is
oblivious to the forwarding").

Hot-path notes: per-block state and invalidation rounds are ``__slots__``
records, and the message entry point dispatches through a dense
per-kind table (``kind.idx``) instead of an if/elif ladder.  Messages the
directory stores past their delivery callback (queued requests,
invalidation-round requests) are ``retain()``-ed so the interconnect's
free list never recycles them under us.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from .. import accel
from ..net.messages import DIRECTORY, Message, MessageKind
from ..net.network import Crossbar
from ..obs.events import DirForward, DirInvRound
from ..obs.probe import Probe
from ..sim.config import SystemConfig
from ..sim.engine import Engine
from .memory import MainMemory


class _InvRound:
    """State of an in-progress invalidation round for a GETX."""

    __slots__ = ("request", "pending", "refused")

    def __init__(self, request: Message, pending: int):
        self.request = request
        self.pending = pending
        self.refused = False


class _BlockEntry:
    """Per-block directory state: owner/sharers plus the busy/queue pair."""

    __slots__ = ("owner", "sharers", "busy", "queue", "inv_round")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.sharers: Set[int] = set()
        self.busy = False
        self.queue: Deque[Message] = deque()
        self.inv_round: Optional[_InvRound] = None


class Directory:
    """The coherence directory (co-located with the shared L3)."""

    __slots__ = (
        "_engine",
        "_config",
        "_memory",
        "_network",
        "_probe",
        "_blocks",
        "_ever_cached",
        "_handlers",
        "_Message",
        "requests",
        "forwards",
        "inv_rounds",
        "memory_fetches",
    )

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        memory: MainMemory,
        network: Crossbar,
        *,
        probe: Optional[Probe] = None,
    ):
        self._engine = engine
        self._config = config
        self._memory = memory
        self._network = network
        self._probe = probe if probe is not None else Probe()
        self._blocks: Dict[int, _BlockEntry] = {}
        self._ever_cached: Set[int] = set()
        self._Message = accel.message_factory()
        # Statistics.
        self.requests = 0
        self.forwards = 0
        self.inv_rounds = 0
        self.memory_fetches = 0
        # Dense dispatch table indexed by ``MessageKind.idx``.
        handlers: List[Optional[object]] = [None] * len(MessageKind)
        handlers[MessageKind.GETS.idx] = self._handle_request
        handlers[MessageKind.GETX.idx] = self._handle_request
        handlers[MessageKind.UPGRADE.idx] = self._handle_request
        handlers[MessageKind.CANCEL.idx] = self._handle_cancel
        handlers[MessageKind.UNBLOCK.idx] = self._handle_unblock
        handlers[MessageKind.WRITEBACK.idx] = self._handle_writeback
        handlers[MessageKind.ACK.idx] = self._handle_inv_ack
        self._handlers = handlers

    # ------------------------------------------------------------------
    def _entry(self, block: int) -> _BlockEntry:
        entry = self._blocks.get(block)
        if entry is None:
            entry = _BlockEntry()
            self._blocks[block] = entry
        return entry

    def owner_of(self, block: int) -> Optional[int]:
        return self._entry(block).owner

    def sharers_of(self, block: int) -> Set[int]:
        return set(self._entry(block).sharers)

    def _fetch_latency(self, block: int) -> int:
        """L3 roundtrip for warm blocks, DRAM for cold ones."""
        if block in self._ever_cached:
            return self._config.l3_roundtrip
        self._ever_cached.add(block)
        self.memory_fetches += 1
        return self._config.memory_latency

    # ------------------------------------------------------------------
    # Message entry point.
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        handler = self._handlers[msg.kind.idx]
        if handler is None:  # pragma: no cover - protocol violation
            raise RuntimeError(f"directory cannot handle {msg!r}")
        handler(msg)

    def _handle_cancel(self, msg: Message) -> None:
        self._finish(msg.block)

    # ------------------------------------------------------------------
    def _handle_request(self, msg: Message) -> None:
        entry = self._entry(msg.block)
        if entry.busy or entry.queue:
            # Strict FIFO: while older requests wait, new arrivals may not
            # jump ahead (otherwise retry convoys — e.g. CAS spinners on
            # the fallback lock — starve a queued request forever).
            entry.queue.append(msg.retain())
            return
        self._process_request(entry, msg)

    def _process_request(self, entry: _BlockEntry, msg: Message) -> None:
        self.requests += 1
        if msg.kind is MessageKind.GETS:
            self._process_gets(entry, msg)
        else:
            self._process_getx(entry, msg)

    def _process_gets(self, entry: _BlockEntry, msg: Message) -> None:
        owner = entry.owner
        if owner is not None and owner != msg.src:
            entry.busy = True
            self.forwards += 1
            if self._probe._subscribers:
                self._probe.emit(
                    DirForward(
                        cycle=self._engine.now, block=msg.block, owner=owner,
                        requester=msg.src, exclusive=False,
                    )
                )
            self._network.send(
                self._forward(MessageKind.FWD_GETS, owner, msg),
                extra_delay=self._config.directory_latency,
            )
            return
        if owner == msg.src:
            # Stale self-ownership after a silent gang-invalidation.
            entry.owner = None
        self._grant_shared(entry, msg)

    def _process_getx(self, entry: _BlockEntry, msg: Message) -> None:
        owner = entry.owner
        if owner is not None and owner != msg.src:
            entry.busy = True
            self.forwards += 1
            if self._probe._subscribers:
                self._probe.emit(
                    DirForward(
                        cycle=self._engine.now, block=msg.block, owner=owner,
                        requester=msg.src, exclusive=True,
                    )
                )
            self._network.send(
                self._forward(MessageKind.FWD_GETX, owner, msg),
                extra_delay=self._config.directory_latency,
            )
            return
        if owner == msg.src:
            entry.owner = None
        others = entry.sharers - {msg.src}
        if others:
            entry.busy = True
            entry.inv_round = _InvRound(request=msg.retain(), pending=len(others))
            self.inv_rounds += 1
            if self._probe._subscribers:
                self._probe.emit(
                    DirInvRound(
                        cycle=self._engine.now, block=msg.block,
                        requester=msg.src, sharers=len(others),
                    )
                )
            for sharer in sorted(others):
                self._network.send(
                    self._forward(MessageKind.INV, sharer, msg),
                    extra_delay=self._config.directory_latency,
                )
            return
        self._grant_exclusive(entry, msg)

    def _forward(self, kind: MessageKind, dst: int, req: Message) -> Message:
        """Build a probe carrying the requester's identity and chain info."""
        return self._Message(
            kind=kind,
            src=DIRECTORY,
            dst=dst,
            block=req.block,
            requester=req.src,
            exclusive=req.kind is not MessageKind.GETS,
            pic=req.pic,
            power=req.power,
            timestamp=req.timestamp,
            epoch=req.epoch,
            req_id=req.req_id,
            can_consume=req.can_consume,
            is_validation=req.is_validation,
            non_transactional=req.non_transactional,
            req_produced=req.req_produced,
            req_consumed=req.req_consumed,
        )

    # ------------------------------------------------------------------
    def _grant_shared(self, entry: _BlockEntry, msg: Message) -> None:
        # The block stays busy until the grantee acknowledges receipt
        # ('recv' unblock): the grant travels with L3/DRAM latency and a
        # probe must not be allowed to outrun it.
        entry.sharers.add(msg.src)
        entry.busy = True
        self._network.send(
            self._Message(
                kind=MessageKind.DATA,
                src=DIRECTORY,
                dst=msg.src,
                block=msg.block,
                data=self._memory.block_value(msg.block),
                epoch=msg.epoch,
                req_id=msg.req_id,
            ),
            extra_delay=self._fetch_latency(msg.block),
        )

    def _grant_exclusive(self, entry: _BlockEntry, msg: Message) -> None:
        entry.owner = msg.src
        entry.sharers = set()
        entry.busy = True  # until the grantee's 'recv' unblock
        self._network.send(
            self._Message(
                kind=MessageKind.DATA_E,
                src=DIRECTORY,
                dst=msg.src,
                block=msg.block,
                data=self._memory.block_value(msg.block),
                epoch=msg.epoch,
                req_id=msg.req_id,
            ),
            extra_delay=self._fetch_latency(msg.block),
        )

    # ------------------------------------------------------------------
    def _handle_unblock(self, msg: Message) -> None:
        """A probed owner resolved the request; update state accordingly."""
        entry = self._entry(msg.block)
        action = msg.action
        if action == "recv":
            # Grantee confirms it received a directory-sourced response.
            self._finish(msg.block)
        elif action == "xfer":
            entry.owner = msg.requester
            entry.sharers = set()
            self._finish(msg.block)
        elif action == "downgrade":
            entry.sharers.add(msg.src)
            if msg.requester is not None:
                entry.sharers.add(msg.requester)
            entry.owner = None
            self._finish(msg.block)
        elif action in ("aborted", "not_present"):
            # The holder no longer has the block; satisfy the original
            # request from memory (non-speculative data, Section III).
            entry.owner = None
            original = self._Message(
                kind=MessageKind.GETS if not msg.exclusive else MessageKind.GETX,
                src=msg.requester,
                dst=DIRECTORY,
                block=msg.block,
                epoch=msg.epoch,
                req_id=msg.req_id,
            )
            if msg.exclusive:
                self._grant_exclusive(entry, original)
            else:
                self._grant_shared(entry, original)
            # ``original`` never travelled the network, so recycle it
            # here (the grant paths read it synchronously).
            original.release()
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(f"bad unblock action {action!r}")

    def _handle_writeback(self, msg: Message) -> None:
        entry = self._entry(msg.block)
        if entry.owner == msg.src:
            entry.owner = None
        # Values are already reflected in committed memory (commit-time
        # flush); the message exists for timing/flit accounting.

    def _handle_inv_ack(self, msg: Message) -> None:
        entry = self._entry(msg.block)
        round_ = entry.inv_round
        if round_ is None:
            # Ack from a stale sharer outside any round (silent eviction
            # races); nothing to do.
            return
        if msg.action == "invalidated":
            entry.sharers.discard(msg.src)
        elif msg.action == "refused":
            round_.refused = True
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(f"bad inv-ack action {msg.action!r}")
        round_.pending -= 1
        if round_.pending > 0:
            return
        request = round_.request
        entry.inv_round = None
        if round_.refused:
            # At least one sharer kept its copy and answered the requester
            # directly (SpecResp or NACK): no ownership change.
            self._finish(msg.block)
        else:
            self._grant_exclusive(entry, request)

    # ------------------------------------------------------------------
    def _finish(self, block: int) -> None:
        entry = self._entry(block)
        entry.busy = False
        self._drain(block)

    def _drain(self, block: int) -> None:
        entry = self._entry(block)
        if entry.busy or not entry.queue:
            return
        nxt = entry.queue.popleft()
        # Process synchronously so nothing can slip in between the pop and
        # the processing (recursion is bounded: every request either
        # busies the block or finishes by sending messages).
        self._process_request(entry, nxt)
