"""Per-core L1 controller: the meeting point of coherence and HTM.

Each core owns one :class:`L1Controller`.  It performs the core's memory
operations against the simulated machine (cache lookup, request issue,
response handling) and services incoming probes (forwards from the
directory, invalidations), where transactional conflicts are detected and
resolved through the configured :class:`~repro.core.policies.ConflictPolicy`.

Request/response bookkeeping uses per-request ids plus the transaction
attempt *epoch*: responses addressed to a dead attempt are dropped, which
is how the hardware's "ignore stale replies after rollback" behaviour is
modelled.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from .. import accel
from ..core.policies import ConflictPolicy, Resolution
from ..htm.fallback import OwnershipTable
from ..htm.signature import FootprintOverflow
from ..htm.stats import AbortReason, HTMStats
from ..htm.txstate import TxState
from ..net.messages import DIRECTORY, Message, MessageKind
from ..net.network import Crossbar
from ..obs.events import PicUpdate, VsbInsert
from ..obs.probe import Probe
from ..sim.config import HTMConfig, SystemConfig
from ..sim.engine import Engine
from .address import Geometry
from .cache import CapacityAbort, L1Cache
from .memory import MainMemory

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Core

ValueCallback = Callable[[int], None]
MsgCallback = Callable[[Message], None]


class _Outstanding:
    """One MSHR entry: an in-flight request and its completion context.

    A ``__slots__`` record — one is allocated per coherence request, so
    it must stay a single compact allocation with no ``__dict__``.
    """

    __slots__ = (
        "block",
        "exclusive",
        "transactional",
        "epoch",
        "is_validation",
        "on_value",
        "on_message",
        "write_value",
        "addr",
        "cas",
    )

    def __init__(
        self,
        block: int,
        exclusive: bool,
        transactional: bool,
        epoch: int,
        is_validation: bool,
        # Exactly one of the two callbacks is set.
        on_value: Optional[ValueCallback] = None,
        on_message: Optional[MsgCallback] = None,
        # Pending non-transactional side effects applied at completion.
        write_value: Optional[int] = None,
        addr: int = 0,
        cas: Optional[tuple] = None,  # (expect, new)
    ):
        self.block = block
        self.exclusive = exclusive
        self.transactional = transactional
        self.epoch = epoch
        self.is_validation = is_validation
        self.on_value = on_value
        self.on_message = on_message
        self.write_value = write_value
        self.addr = addr
        self.cas = cas


class L1Controller:
    """Coherence + HTM endpoint for one core."""

    __slots__ = (
        "core_id",
        "_engine",
        "_config",
        "_htm",
        "_geometry",
        "_memory",
        "_network",
        "_policy",
        "_stats",
        "_lock_block",
        "_probe",
        "_orecs",
        "cache",
        "_outstanding",
        "_handlers",
        "core",
        "_forwards",
        "_block_of",
        "_hit_latency",
        "_send",
        "_schedule",
        "_Message",
    )

    _req_ids = itertools.count(1)

    def __init__(
        self,
        core_id: int,
        engine: Engine,
        config: SystemConfig,
        htm: HTMConfig,
        geometry: Geometry,
        memory: MainMemory,
        network: Crossbar,
        policy: ConflictPolicy,
        stats: HTMStats,
        lock_block: int,
        probe: Optional[Probe] = None,
        orecs: Optional[OwnershipTable] = None,
    ):
        self.core_id = core_id
        self._engine = engine
        self._config = config
        self._htm = htm
        self._geometry = geometry
        self._memory = memory
        self._network = network
        self._policy = policy
        self._stats = stats
        self._lock_block = lock_block
        self._probe = probe if probe is not None else Probe()
        # Hybrid-fallback systems only: the shared ownership-record table
        # hardware transactions must check on every access.  ``None`` for
        # every other system, keeping their access paths untouched.
        self._orecs = orecs
        self.cache = L1Cache(config)
        self._outstanding: Dict[int, _Outstanding] = {}
        # Hot-path constants/bound methods: the spec's forwarding hook
        # (derived from its conflict layer), the address→block map, the
        # L1 hit latency, the network injector and the engine scheduler
        # are all invariant after construction.
        self._forwards = htm.system.forwards
        self._block_of = geometry.block_of
        self._hit_latency = config.l1_hit_latency
        self._send = network.send
        self._schedule = engine.schedule
        self._Message = accel.message_factory()
        #: Set lazily by the simulator after cores are built.
        self.core: "Core" = None  # type: ignore[assignment]
        # Dense dispatch table indexed by ``MessageKind.idx``.
        handlers: List[Optional[Callable[[Message], None]]] = (
            [None] * len(MessageKind)
        )
        handlers[MessageKind.FWD_GETS.idx] = self._handle_forwarded_probe
        handlers[MessageKind.FWD_GETX.idx] = self._handle_forwarded_probe
        handlers[MessageKind.INV.idx] = self._handle_inv
        handlers[MessageKind.DATA.idx] = self._handle_response
        handlers[MessageKind.DATA_E.idx] = self._handle_response
        handlers[MessageKind.SPEC_RESP.idx] = self._handle_response
        handlers[MessageKind.NACK.idx] = self._handle_response
        self._handlers = handlers

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------
    def _tx(self) -> Optional[TxState]:
        core = self.core
        tx = core.tx if core is not None else None
        if tx is not None and tx.active:
            return tx
        return None

    def has_inflight_exclusive(self, block: int) -> bool:
        """Rrestrict/W heuristic probe: is a local write to ``block``
        in flight or imminent?  Covers both an outstanding exclusive
        request and the store-address prediction from earlier attempts of
        the same transaction."""
        if any(
            o.exclusive and o.block == block and not o.is_validation
            for o in self._outstanding.values()
        ):
            return True
        return self.core is not None and self.core.write_predicted(block)

    def _send_request(
        self,
        kind: MessageKind,
        block: int,
        out: _Outstanding,
        *,
        non_transactional: bool = False,
        is_validation: bool = False,
    ) -> int:
        req_id = next(self._req_ids)
        self._outstanding[req_id] = out
        tx = self._tx() if not non_transactional else None
        msg = self._Message(
            kind=kind,
            src=self.core_id,
            dst=DIRECTORY,
            block=block,
            epoch=out.epoch,
            req_id=req_id,
            non_transactional=non_transactional,
            is_validation=is_validation,
        )
        if tx is not None:
            msg.pic = tx.pic.value
            msg.power = tx.power
            msg.timestamp = tx.timestamp
            msg.req_produced = tx.levc_has_produced
            msg.req_consumed = tx.levc_has_consumed
            msg.can_consume = is_validation or (
                self._forwards and not tx.power and not tx.vsb.full
            )
        else:
            msg.can_consume = False
        self._send(msg)
        return req_id

    def _hit_latency_callback(self, fn: Callable, *args) -> None:
        self._schedule(self._hit_latency, fn, *args)

    def _abort_capacity(self, tx: TxState, block: int) -> None:
        self.core.abort_tx(AbortReason.CAPACITY, block=block)

    def _check_orec(self, block: int) -> bool:
        """Hybrid instrumentation: a hardware transaction touching a block
        owned by another core's software slow path must abort (the slow
        path holds the record until its redo log is published, so reading
        around it would see a half-committed transaction).  Returns True
        when the access killed the attempt."""
        owner = self._orecs.owner(block)
        if owner is not None and owner != self.core_id:
            self.core.abort_tx(
                AbortReason.HYBRID, src=owner, block=block
            )
            return True
        return False

    def _install(self, block: int, state: str, **flags) -> bool:
        """Install a line; on a capacity abort of the running transaction
        returns False (the caller's operation dies with the attempt)."""
        try:
            victim = self.cache.install(block, state, **flags)
        except CapacityAbort:
            tx = self._tx()
            if tx is not None:
                self._abort_capacity(tx, block)
                return False
            raise
        if victim is not None and victim.state in ("E", "M"):
            # Notify the directory for owned victims so it does not keep
            # forwarding to us; shared victims are evicted silently.
            self._send(
                self._Message(
                    kind=MessageKind.WRITEBACK,
                    src=self.core_id,
                    dst=DIRECTORY,
                    block=victim.block,
                    data=self._memory.block_value(victim.block),
                )
            )
        return True

    # ------------------------------------------------------------------
    # Transactional operations (called by the core driver).
    # ------------------------------------------------------------------
    def tx_read(self, tx: TxState, addr: int, callback: ValueCallback) -> None:
        block = self._block_of(addr)
        if self._orecs is not None and self._check_orec(block):
            return  # hybrid slow-path owner: the attempt just died
        try:
            tx.track_read(block)
        except FootprintOverflow:
            self._abort_capacity(tx, block)
            return
        line = self.cache.lookup(block)
        if line is not None:
            self._hit_latency_callback(callback, tx.store.read_word(addr))
            return
        out = _Outstanding(
            block=block,
            exclusive=False,
            transactional=True,
            epoch=tx.epoch,
            is_validation=False,
            on_value=callback,
            addr=addr,
        )
        self._send_request(MessageKind.GETS, block, out)

    def tx_write(
        self, tx: TxState, addr: int, value: int, callback: ValueCallback
    ) -> None:
        block = self._block_of(addr)
        if self._orecs is not None and self._check_orec(block):
            return  # hybrid slow-path owner: the attempt just died
        try:
            tx.track_write(block)
        except FootprintOverflow:
            self._abort_capacity(tx, block)
            return
        tx.store.write_word(addr, value)
        line = self.cache.lookup(block)
        if line is not None and line.state in ("E", "M"):
            line.state = "M"
            if not line.speculative:
                self.cache.mark_speculative(block)
            self._hit_latency_callback(callback, 0)
            return
        out = _Outstanding(
            block=block,
            exclusive=True,
            transactional=True,
            epoch=tx.epoch,
            is_validation=False,
            on_value=callback,
            addr=addr,
        )
        kind = MessageKind.UPGRADE if line is not None else MessageKind.GETX
        self._send_request(kind, block, out)

    def issue_validation(
        self, tx: TxState, block: int, callback: MsgCallback
    ) -> None:
        """Validation controller path: exclusive re-request of a VSB block."""
        out = _Outstanding(
            block=block,
            exclusive=True,
            transactional=True,
            epoch=tx.epoch,
            is_validation=True,
            on_message=callback,
        )
        self._send_request(MessageKind.GETX, block, out, is_validation=True)

    # ------------------------------------------------------------------
    # Non-transactional operations.
    # ------------------------------------------------------------------
    def nontx_read(self, addr: int, callback: ValueCallback) -> None:
        block = self._block_of(addr)
        line = self.cache.lookup(block)
        if line is not None:
            self._hit_latency_callback(callback, self._memory.read_word(addr))
            return
        out = _Outstanding(
            block=block,
            exclusive=False,
            transactional=False,
            epoch=0,
            is_validation=False,
            on_value=callback,
            addr=addr,
        )
        self._send_request(MessageKind.GETS, block, out, non_transactional=True)

    def nontx_write(self, addr: int, value: int, callback: ValueCallback) -> None:
        block = self._block_of(addr)
        line = self.cache.lookup(block)
        if line is not None and line.state in ("E", "M") and not line.speculative:
            line.state = "M"
            self._memory.write_word(addr, value)
            self._hit_latency_callback(callback, 0)
            return
        out = _Outstanding(
            block=block,
            exclusive=True,
            transactional=False,
            epoch=0,
            is_validation=False,
            on_value=callback,
            addr=addr,
            write_value=value,
        )
        self._send_request(MessageKind.GETX, block, out, non_transactional=True)

    def nontx_cas(
        self, addr: int, expect: int, new: int, callback: ValueCallback
    ) -> None:
        block = self._block_of(addr)
        line = self.cache.lookup(block)
        if line is not None and line.state in ("E", "M") and not line.speculative:
            observed = self._memory.read_word(addr)
            if observed == expect:
                self._memory.write_word(addr, new)
            self._hit_latency_callback(callback, observed)
            return
        out = _Outstanding(
            block=block,
            exclusive=True,
            transactional=False,
            epoch=0,
            is_validation=False,
            on_value=callback,
            addr=addr,
            cas=(expect, new),
        )
        self._send_request(MessageKind.GETX, block, out, non_transactional=True)

    # ------------------------------------------------------------------
    # Incoming message dispatch.
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        handler = self._handlers[msg.kind.idx]
        if handler is None:  # pragma: no cover - protocol violation
            raise RuntimeError(f"L1 cannot handle {msg!r}")
        handler(msg)

    # -- Holder side: probes -------------------------------------------
    def _handle_forwarded_probe(self, msg: Message) -> None:
        block = msg.block
        line = self.cache.peek(block)
        if line is None or line.state not in ("E", "M"):
            # Stale ownership (gang invalidation, silent eviction, or a
            # dropped grant raced with this probe): drop any stale shared
            # copy and let the directory heal from memory.
            self.cache.invalidate(block)
            self._unblock(msg, "not_present")
            return
        tx = self._tx()
        exclusive = msg.kind is MessageKind.FWD_GETX
        conflict = tx is not None and (
            tx.conflicts_with_read(block) if exclusive else tx.conflicts_with_write(block)
        )
        if conflict:
            self._resolve_conflict(tx, msg, invalidate_on_abort=True)
            return
        # Plain MESI service.
        data = self._memory.block_value(block)
        if exclusive:
            self.cache.invalidate(block)
            self._respond_data(msg, MessageKind.DATA_E, data)
            self._unblock(msg, "xfer")
        else:
            line.state = "S"
            self._respond_data(msg, MessageKind.DATA, data)
            self._unblock(msg, "downgrade")

    def _handle_inv(self, msg: Message) -> None:
        block = msg.block
        tx = self._tx()
        conflict = tx is not None and tx.conflicts_with_read(block)
        if conflict:
            self._resolve_conflict(tx, msg, invalidate_on_abort=True, via_inv=True)
            return
        self.cache.invalidate(block)
        self._ack_inv(msg, "invalidated")

    def _resolve_conflict(
        self,
        tx: TxState,
        msg: Message,
        *,
        invalidate_on_abort: bool,
        via_inv: bool = False,
    ) -> None:
        """Apply the conflict policy as the holder of ``msg.block``."""
        pic_before = tx.pic.value
        outcome = self._policy.resolve(tx, msg, self.has_inflight_exclusive)
        if outcome.resolution is Resolution.FORWARD_SPEC:
            tx.mark_forwarded()
            self._stats.spec_forwards += 1
            if self._probe._subscribers and tx.pic.value != pic_before:
                self._probe.emit(
                    PicUpdate(
                        cycle=self._engine.now, core=self.core_id,
                        value=tx.pic.value, source="forward",
                    )
                )
            self._send(
                self._Message(
                    kind=MessageKind.SPEC_RESP,
                    src=self.core_id,
                    dst=msg.requester,
                    block=msg.block,
                    data=tx.store.block_value(msg.block),
                    pic=outcome.message_pic,
                    power=outcome.from_power,
                    epoch=msg.epoch,
                    req_id=msg.req_id,
                )
            )
            if via_inv:
                self._ack_inv(msg, "refused")
            else:
                self._cancel(msg)
            return
        if outcome.resolution is Resolution.NACK:
            tx.mark_conflicted()
            self._send(
                self._Message(
                    kind=MessageKind.NACK,
                    src=self.core_id,
                    dst=msg.requester,
                    block=msg.block,
                    epoch=msg.epoch,
                    req_id=msg.req_id,
                )
            )
            if via_inv:
                self._ack_inv(msg, "refused")
            else:
                self._cancel(msg)
            return
        # Requester-wins: the holder's transaction dies.
        tx.mark_conflicted()
        reason = outcome.abort_reason
        if msg.block == self._lock_block:
            reason = AbortReason.LOCK
        elif msg.power and reason is AbortReason.CONFLICT:
            reason = AbortReason.POWER
        elif (
            reason is AbortReason.CONFLICT
            and msg.non_transactional
            and self._orecs is not None
            and self._orecs.in_slowpath(msg.requester)
        ):
            # The requester is a hybrid software slow path (reading a
            # block it is about to own, or publishing its redo log): the
            # same cause as a failed orec check, so classify it alike.
            reason = AbortReason.HYBRID
        self.core.abort_tx(reason, src=msg.requester, block=msg.block)
        # Gang invalidation dropped the SM lines, but the probed block may
        # be cached *non-speculatively* (e.g. the fallback lock block, or a
        # block owned before the transaction began).  The directory will
        # hand it to the requester from memory, so our copy must go too.
        self.cache.invalidate(msg.block)
        if via_inv:
            self._ack_inv(msg, "invalidated")
        else:
            # The directory supplies non-speculative data from memory.
            self._unblock(msg, "aborted")

    def _respond_data(self, probe: Message, kind: MessageKind, data) -> None:
        self._send(
            self._Message(
                kind=kind,
                src=self.core_id,
                dst=probe.requester,
                block=probe.block,
                data=data,
                epoch=probe.epoch,
                req_id=probe.req_id,
            )
        )

    def _unblock(self, probe: Message, action: str) -> None:
        self._send(
            self._Message(
                kind=MessageKind.UNBLOCK,
                src=self.core_id,
                dst=DIRECTORY,
                block=probe.block,
                requester=probe.requester,
                exclusive=probe.exclusive,
                epoch=probe.epoch,
                req_id=probe.req_id,
                action=action,
            )
        )

    def _cancel(self, probe: Message) -> None:
        self._send(
            self._Message(
                kind=MessageKind.CANCEL,
                src=self.core_id,
                dst=DIRECTORY,
                block=probe.block,
                requester=probe.requester,
                epoch=probe.epoch,
                req_id=probe.req_id,
            )
        )

    def _ack_inv(self, probe: Message, action: str) -> None:
        self._send(
            self._Message(
                kind=MessageKind.ACK,
                src=self.core_id,
                dst=DIRECTORY,
                block=probe.block,
                requester=probe.requester,
                epoch=probe.epoch,
                req_id=probe.req_id,
                action=action,
            )
        )

    # -- Requester side: responses --------------------------------------
    def _handle_response(self, msg: Message) -> None:
        if msg.src == DIRECTORY and msg.kind in (
            MessageKind.DATA,
            MessageKind.DATA_E,
        ):
            # Directory-sourced grants keep the block busy until this
            # acknowledgement — sent unconditionally, even for responses
            # addressed to a rolled-back attempt.
            self._send(
                self._Message(
                    kind=MessageKind.UNBLOCK,
                    src=self.core_id,
                    dst=DIRECTORY,
                    block=msg.block,
                    action="recv",
                )
            )
        out = self._outstanding.pop(msg.req_id, None)
        if out is None:
            return  # duplicate response (e.g. two refusing sharers)
        if out.transactional:
            tx = self._tx()
            if tx is None or tx.epoch != out.epoch:
                # Response to a rolled-back attempt.  The sender may have
                # recorded us as owner/sharer, but we will not install the
                # line — drop any older cached copy too, so no read can hit
                # a line the directory no longer associates with us (the
                # next probe heals the directory via 'not_present').
                if msg.kind in (MessageKind.DATA, MessageKind.DATA_E):
                    self.cache.invalidate(msg.block)
                if (
                    msg.kind is MessageKind.DATA_E
                    and tx is not None
                    and (tx.reads(msg.block) or tx.writes(msg.block))
                ):
                    # The stale exclusive grant erased our sharer record at
                    # the directory, so invalidations for this block will
                    # no longer reach us — yet the *current* attempt has
                    # already read it.  Its isolation can no longer be
                    # policed; it must roll back.  (A directory race, not
                    # another core's action: no ``src`` to attribute.)
                    self.core.abort_tx(AbortReason.CONFLICT, block=msg.block)
                return
            if out.is_validation:
                self._complete_validation(tx, out, msg)
            else:
                self._complete_tx_request(tx, out, msg)
        else:
            self._complete_nontx_request(out, msg)

    def _complete_tx_request(
        self, tx: TxState, out: _Outstanding, msg: Message
    ) -> None:
        if msg.kind is MessageKind.NACK:
            # Requester-stall: retry the access later (Power/LEVC holders).
            self._engine.schedule(
                self._htm.nack_retry_delay, self._retry_tx_request, tx.epoch, out
            )
            return
        if msg.kind is MessageKind.SPEC_RESP:
            self._consume_spec_resp(tx, out, msg)
            return
        # Ordinary data response.
        state = "E" if msg.kind is MessageKind.DATA_E else "S"
        if out.exclusive:
            state = "M"
        if not self._install(out.block, state, speculative=out.exclusive):
            return  # capacity abort killed the attempt
        assert out.on_value is not None
        out.on_value(tx.store.read_word(out.addr))

    def _retry_tx_request(self, epoch: int, out: _Outstanding) -> None:
        tx = self._tx()
        if tx is None or tx.epoch != epoch:
            return
        kind = MessageKind.GETX if out.exclusive else MessageKind.GETS
        self._send_request(kind, out.block, out)

    def _consume_spec_resp(
        self, tx: TxState, out: _Outstanding, msg: Message
    ) -> None:
        """Accept speculative data: VSB copy, cache insert into the write
        set, PiC adoption (Sections III-A and IV-A)."""
        assert msg.data is not None
        if not tx.vsb.insert(out.block, msg.data):
            # VSB full (a race slipped past the can_consume advertisement):
            # we cannot use the hint; retry the plain request later.
            self._engine.schedule(
                self._htm.nack_retry_delay, self._retry_tx_request, tx.epoch, out
            )
            return
        occupancy = tx.vsb.occupancy()
        if occupancy > self._stats.vsb_high_water:
            self._stats.vsb_high_water = occupancy
        tx.store.install_received_block(out.block, msg.data)
        try:
            tx.track_write(out.block)
        except FootprintOverflow:
            self._abort_capacity(tx, out.block)
            return
        tx.mark_consumed()
        pic_before = tx.pic.value
        tx.pic.adopt_from_spec_resp(msg.pic)
        if self._probe._subscribers:
            self._probe.emit(
                VsbInsert(
                    cycle=self._engine.now, core=self.core_id,
                    block=out.block, occupancy=occupancy,
                )
            )
            if tx.pic.value != pic_before:
                self._probe.emit(
                    PicUpdate(
                        cycle=self._engine.now, core=self.core_id,
                        value=tx.pic.value, source="adopt",
                    )
                )
        if not self._install(
            out.block, "M", speculative=True, spec_received=True
        ):
            return  # capacity abort
        self.core.validation.arm(tx)
        assert out.on_value is not None
        out.on_value(tx.store.read_word(out.addr))

    def _complete_validation(
        self, tx: TxState, out: _Outstanding, msg: Message
    ) -> None:
        if msg.kind is MessageKind.DATA_E:
            # We are now the genuine owner of the block.
            line = self.cache.peek(out.block)
            if line is not None:
                line.state = "M"
                line.spec_received = False
            else:
                # The line must still be cached (it is SM write-set data);
                # a missing line means the attempt already died.
                return
        assert out.on_message is not None
        out.on_message(msg)

    def _complete_nontx_request(self, out: _Outstanding, msg: Message) -> None:
        if msg.kind is MessageKind.NACK:
            self._engine.schedule(
                self._htm.nack_retry_delay, self._retry_nontx_request, out
            )
            return
        if msg.kind is MessageKind.SPEC_RESP:  # pragma: no cover - forbidden
            raise RuntimeError("speculative response to a non-transactional request")
        result = 0
        if out.cas is not None:
            expect, new = out.cas
            result = self._memory.read_word(out.addr)
            if result == expect:
                self._memory.write_word(out.addr, new)
            self._install(out.block, "M")
        elif out.write_value is not None:
            self._memory.write_word(out.addr, out.write_value)
            self._install(out.block, "M")
        else:
            result = self._memory.read_word(out.addr)
            self._install(out.block, "E" if msg.kind is MessageKind.DATA_E else "S")
        assert out.on_value is not None
        out.on_value(result)

    def _retry_nontx_request(self, out: _Outstanding) -> None:
        kind = MessageKind.GETX if out.exclusive else MessageKind.GETS
        self._send_request(kind, out.block, out, non_transactional=True)
