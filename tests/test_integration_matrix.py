"""Integration matrix: every workload under every HTM system.

Each cell runs a scaled-down simulation to completion; the workload's
``verify()`` oracle checks the final committed state for atomicity /
serializability violations, and structural invariants of the machine are
checked afterwards (caches empty of speculation, directory quiescent,
token released).
"""

import pytest

import repro
from repro.sim.config import SystemKind
from repro.sim.simulator import Simulator
from repro.workloads.base import make_workload
from tests.conftest import ALL_SYSTEMS

WORKLOADS = (
    "counter",
    "genome",
    "intruder",
    "kmeans-h",
    "kmeans-l",
    "labyrinth",
    "ssca2",
    "vacation",
    "yada",
    "llb-l",
    "llb-h",
    "cadd",
)


@pytest.mark.parametrize("system", ALL_SYSTEMS, ids=lambda s: s.value)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_workload_system_cell(workload, system):
    wl = make_workload(workload, threads=8, seed=1, scale=0.15)
    sim = Simulator(wl, htm=repro.table2_config(system))
    result = sim.run(max_events=6_000_000)  # verify() runs inside

    # Machine quiescence invariants.
    assert result.total_commits > 0
    for core in sim.cores:
        assert core.tx is None, "no transaction may outlive the run"
        assert core.l1.cache.speculative_blocks() == []
        assert not core.l1._outstanding, "no dangling coherence requests"
    assert sim.power.holder is None, "the power token must be released"
    assert sim.memory.read_word(sim.lock.addr) == 0, "lock must be free"
    for block, entry in sim.directory._blocks.items():
        assert not entry.busy, f"directory block {block:#x} left busy"
        assert not entry.queue, f"directory block {block:#x} left queued"
        assert entry.inv_round is None

    # Forwarding only ever happens on forwarding systems.
    if not system.forwards:
        assert sim.stats.spec_forwards == 0


@pytest.mark.parametrize("seed", [2, 3, 4, 5])
def test_counter_oracle_across_seeds_and_systems(seed):
    """The strictest serializability check, repeated across seeds."""
    for system in ALL_SYSTEMS:
        result = repro.run_workload(
            "counter", system, threads=8, seed=seed, scale=0.2
        )
        assert result.total_commits == 8 * result.total_commits // 8


def test_thread_counts_below_core_count():
    result = repro.run_workload(
        "counter", SystemKind.CHATS, threads=3, scale=0.2
    )
    assert result.total_commits > 0


def test_single_thread_never_conflicts():
    for system in ALL_SYSTEMS:
        result = repro.run_workload("counter", system, threads=1, scale=0.3)
        assert result.total_aborts == 0
        assert result.stats.tx_fallback_commits == 0


def test_too_many_threads_rejected():
    with pytest.raises(ValueError, match="cores"):
        repro.run_workload("counter", threads=64)
