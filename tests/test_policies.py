"""Unit tests for the six conflict-resolution policies.

Each test constructs a holder transaction state and a conflicting probe
message directly and checks the decision matrix of Section VI-B.
"""

import pytest

from repro.core.policies import (
    BaselineRW,
    Resolution,
    make_policy,
)
from repro.htm.stats import AbortReason
from repro.htm.txstate import TxState
from repro.mem.address import Geometry
from repro.mem.memory import MainMemory
from repro.net.messages import Message, MessageKind
from repro.sim.config import ForwardClass, SystemKind, table2_config

BLOCK = 42


def holder_tx(
    memory,
    *,
    system=SystemKind.CHATS,
    wrote=True,
    read=False,
    pic=None,
    cons=False,
    power=False,
    timestamp=None,
):
    tx = TxState(
        core_id=0,
        epoch=1,
        memory=memory,
        htm=table2_config(system),
        power=power,
        timestamp=timestamp,
    )
    if wrote:
        tx.track_write(BLOCK)
    if read:
        tx.track_read(BLOCK)
    tx.pic.value = pic
    tx.pic.cons = cons
    return tx


def probe(
    *,
    pic=None,
    power=False,
    can_consume=True,
    non_transactional=False,
    timestamp=None,
    req_produced=False,
    req_consumed=False,
):
    return Message(
        kind=MessageKind.FWD_GETX,
        src=-1,
        dst=0,
        block=BLOCK,
        requester=1,
        exclusive=True,
        pic=pic,
        power=power,
        can_consume=can_consume,
        non_transactional=non_transactional,
        timestamp=timestamp,
        req_produced=req_produced,
        req_consumed=req_consumed,
    )


def no_inflight(block):
    return False


@pytest.fixture
def mem():
    return MainMemory(Geometry())


class TestBaseline:
    def test_always_requester_wins(self, mem):
        policy = make_policy(table2_config(SystemKind.BASELINE))
        assert isinstance(policy, BaselineRW)
        out = policy.resolve(holder_tx(mem, system=SystemKind.BASELINE), probe(), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL
        assert out.abort_reason is AbortReason.CONFLICT


class TestNaive:
    def policy(self):
        return make_policy(table2_config(SystemKind.NAIVE_RS))

    def test_forwards_without_restrictions(self, mem):
        out = self.policy().resolve(
            holder_tx(mem, system=SystemKind.NAIVE_RS), probe(), no_inflight
        )
        assert out.resolution is Resolution.FORWARD_SPEC
        assert out.message_pic is None  # naive carries no PiC

    def test_non_transactional_requests_always_win(self, mem):
        out = self.policy().resolve(
            holder_tx(mem, system=SystemKind.NAIVE_RS),
            probe(non_transactional=True),
            no_inflight,
        )
        assert out.resolution is Resolution.ABORT_LOCAL

    def test_requester_without_vsb_slot(self, mem):
        out = self.policy().resolve(
            holder_tx(mem, system=SystemKind.NAIVE_RS),
            probe(can_consume=False),
            no_inflight,
        )
        assert out.resolution is Resolution.ABORT_LOCAL

    def test_validation_budget_exhaustion(self, mem):
        policy = self.policy()
        tx = holder_tx(mem, system=SystemKind.NAIVE_RS)
        tx.naive_budget = 2
        assert policy.on_unsuccessful_validation(tx) is None
        assert policy.on_unsuccessful_validation(tx) is AbortReason.NAIVE_LIMIT

    def test_successful_validation_resets_budget(self, mem):
        policy = self.policy()
        tx = holder_tx(mem, system=SystemKind.NAIVE_RS)
        tx.naive_budget = 1
        policy.on_successful_validation(tx)
        assert tx.naive_budget == 16


class TestCHATSPolicy:
    def policy(self):
        return make_policy(table2_config(SystemKind.CHATS))

    def test_forward_unchained_pair(self, mem):
        tx = holder_tx(mem)
        out = self.policy().resolve(tx, probe(), no_inflight)
        assert out.resolution is Resolution.FORWARD_SPEC
        assert out.message_pic == 15
        assert tx.pic.value == 15  # holder anchored at PiC_init

    def test_requester_wins_on_cycle_risk(self, mem):
        tx = holder_tx(mem, pic=10, cons=True)
        out = self.policy().resolve(tx, probe(pic=12), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL
        assert out.abort_reason is AbortReason.CYCLE

    def test_forward_to_lower_pic(self, mem):
        tx = holder_tx(mem, pic=10, cons=True)
        out = self.policy().resolve(tx, probe(pic=5), no_inflight)
        assert out.resolution is Resolution.FORWARD_SPEC
        assert out.message_pic == 10

    def test_spec_received_block_never_forwarded(self, mem):
        tx = holder_tx(mem)
        tx.vsb.insert(BLOCK, (0,) * 8)
        out = self.policy().resolve(tx, probe(), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL
        assert out.abort_reason is AbortReason.CONFLICT

    def test_heuristic_blocks_read_set_with_pending_write(self, mem):
        tx = holder_tx(mem, wrote=False, read=True)
        out = self.policy().resolve(tx, probe(), lambda b: b == BLOCK)
        assert out.resolution is Resolution.ABORT_LOCAL

    def test_written_block_forwards_despite_heuristic(self, mem):
        tx = holder_tx(mem, wrote=True)
        out = self.policy().resolve(tx, probe(), lambda b: b == BLOCK)
        assert out.resolution is Resolution.FORWARD_SPEC

    def test_w_class_refuses_read_only_blocks(self, mem):
        htm = table2_config(SystemKind.CHATS).replace(forward_class=ForwardClass.W)
        policy = make_policy(htm)
        tx = holder_tx(mem, wrote=False, read=True)
        out = policy.resolve(tx, probe(), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL

    def test_rw_class_forwards_read_only_blocks(self, mem):
        htm = table2_config(SystemKind.CHATS).replace(forward_class=ForwardClass.RW)
        policy = make_policy(htm)
        tx = holder_tx(mem, wrote=False, read=True)
        out = policy.resolve(tx, probe(), lambda b: True)  # heuristic off
        assert out.resolution is Resolution.FORWARD_SPEC


class TestPowerPolicy:
    def policy(self):
        return make_policy(table2_config(SystemKind.POWER))

    def test_power_holder_nacks(self, mem):
        tx = holder_tx(mem, system=SystemKind.POWER, power=True)
        out = self.policy().resolve(tx, probe(), no_inflight)
        assert out.resolution is Resolution.NACK

    def test_power_requester_wins(self, mem):
        tx = holder_tx(mem, system=SystemKind.POWER)
        out = self.policy().resolve(tx, probe(power=True), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL
        assert out.abort_reason is AbortReason.POWER

    def test_plain_conflicts_use_requester_wins(self, mem):
        tx = holder_tx(mem, system=SystemKind.POWER)
        out = self.policy().resolve(tx, probe(), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL

    def test_non_tx_beats_power_holder(self, mem):
        tx = holder_tx(mem, system=SystemKind.POWER, power=True)
        out = self.policy().resolve(tx, probe(non_transactional=True), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL


class TestPCHATSPolicy:
    def policy(self):
        return make_policy(table2_config(SystemKind.PCHATS))

    def test_power_holder_forwards_without_pic(self, mem):
        tx = holder_tx(mem, system=SystemKind.PCHATS, power=True)
        out = self.policy().resolve(tx, probe(), no_inflight)
        assert out.resolution is Resolution.FORWARD_SPEC
        assert out.message_pic is None
        assert out.from_power

    def test_power_holder_nacks_when_unforwardable(self, mem):
        tx = holder_tx(mem, system=SystemKind.PCHATS, power=True)
        out = self.policy().resolve(tx, probe(can_consume=False), no_inflight)
        assert out.resolution is Resolution.NACK

    def test_power_requester_never_consumes(self, mem):
        tx = holder_tx(mem, system=SystemKind.PCHATS)
        out = self.policy().resolve(tx, probe(power=True), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL
        assert out.abort_reason is AbortReason.POWER

    def test_plain_conflicts_fall_back_to_chats(self, mem):
        tx = holder_tx(mem, system=SystemKind.PCHATS)
        out = self.policy().resolve(tx, probe(), no_inflight)
        assert out.resolution is Resolution.FORWARD_SPEC
        assert out.message_pic == 15


class TestLEVCPolicy:
    def policy(self):
        return make_policy(table2_config(SystemKind.LEVC))

    def fresh(self, mem, **kw):
        return holder_tx(mem, system=SystemKind.LEVC, timestamp=10, **kw)

    def test_forwards_when_unrestricted(self, mem):
        tx = self.fresh(mem)
        out = self.policy().resolve(tx, probe(timestamp=20), no_inflight)
        assert out.resolution is Resolution.FORWARD_SPEC
        assert out.message_pic is None

    def test_single_consumer_restriction(self, mem):
        tx = self.fresh(mem)
        tx.levc_has_consumer = True
        out = self.policy().resolve(tx, probe(timestamp=20), no_inflight)
        assert out.resolution is Resolution.NACK  # younger requester stalls

    def test_chain_length_restriction(self, mem):
        tx = self.fresh(mem)
        tx.levc_has_consumed = True
        out = self.policy().resolve(tx, probe(timestamp=20), no_inflight)
        assert out.resolution is Resolution.NACK

    def test_requester_must_be_endpoint(self, mem):
        tx = self.fresh(mem)
        out = self.policy().resolve(
            tx, probe(timestamp=20, req_produced=True), no_inflight
        )
        assert out.resolution is Resolution.NACK

    def test_older_requester_aborts_holder(self, mem):
        """The forwarding-oblivious victim selection the paper criticises:
        even a holder that has forwarded loses to an older requester."""
        tx = self.fresh(mem)
        tx.levc_has_consumer = True  # it has a dependent consumer!
        out = self.policy().resolve(tx, probe(timestamp=5), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL

    def test_non_transactional_wins(self, mem):
        tx = self.fresh(mem)
        out = self.policy().resolve(tx, probe(non_transactional=True), no_inflight)
        assert out.resolution is Resolution.ABORT_LOCAL
