"""Unit tests for the analysis layer (metrics, tables, results)."""

import math

import pytest

from repro.analysis import metrics
from repro.analysis.tables import (
    format_heatmap,
    format_stacked,
    format_table,
    summarize_series,
)
from repro.htm.stats import HTMStats
from repro.sim.results import SimulationResult


def make_result(workload, cycles, *, aborts=0, flits=0, commits=10):
    stats = HTMStats()
    stats.tx_commits = commits
    from repro.htm.stats import AbortReason

    stats.aborts[AbortReason.CONFLICT] = aborts
    return SimulationResult(
        workload=workload,
        system="test",
        cycles=cycles,
        stats=stats,
        network={"flits": flits},
    )


class TestMeans:
    def test_arithmetic(self):
        assert metrics.arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_geometric(self):
        assert math.isclose(metrics.geometric_mean([1.0, 4.0]), 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.arithmetic_mean([])
        with pytest.raises(ValueError):
            metrics.geometric_mean([])

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            metrics.geometric_mean([1.0, 0.0])


class TestNormalization:
    def test_normalized_times(self):
        base = {"a": make_result("a", 100)}
        res = {"a": make_result("a", 80)}
        assert metrics.normalized_times(res, base) == {"a": 0.8}

    def test_micro_exclusion_from_means(self):
        normalized = {"kmeans-h": 0.5, "llb-l": 0.1, "cadd": 0.1}
        # The micro values (0.1) must not drag the mean down.
        assert metrics.mean_normalized_time(normalized) == 0.5

    def test_is_micro(self):
        assert metrics.is_micro("llb-h")
        assert metrics.is_micro("cadd")
        assert not metrics.is_micro("genome")

    def test_normalized_aborts_guard_zero(self):
        base = {"a": make_result("a", 100, aborts=0)}
        res = {"a": make_result("a", 100, aborts=5)}
        assert metrics.normalized_aborts(res, base)["a"] == 5.0

    def test_normalized_flits(self):
        base = {"a": make_result("a", 100, flits=1000)}
        res = {"a": make_result("a", 100, flits=700)}
        assert metrics.normalized_flits(res, base)["a"] == 0.7

    def test_order_workloads(self):
        ordered = metrics.order_workloads(["cadd", "genome", "zzz", "kmeans-h"])
        assert ordered == ["genome", "kmeans-h", "cadd", "zzz"]


class TestSimulationResult:
    def test_speedup_and_normalized(self):
        base = make_result("a", 200)
        fast = make_result("a", 100)
        assert fast.speedup_over(base) == 2.0
        assert fast.normalized_time(base) == 0.5

    def test_degenerate_cycles_rejected(self):
        base = make_result("a", 0)
        other = make_result("a", 10)
        with pytest.raises(ValueError):
            other.normalized_time(base)
        with pytest.raises(ValueError):
            base.speedup_over(other)

    def test_totals(self):
        r = make_result("a", 100, aborts=3, commits=7)
        r.stats.tx_fallback_commits = 2
        assert r.total_commits == 9
        assert r.total_aborts == 3
        assert r.abort_ratio == 3 / 9

    def test_summary_fields(self):
        summary = make_result("a", 100).summary()
        for key in ("workload", "cycles", "commits", "abort_breakdown"):
            assert key in summary


class TestRenderers:
    def test_format_table(self):
        text = format_table(
            "Title",
            ["row1", "row2"],
            {"S1": {"row1": 1.0, "row2": 2.0}, "S2": {"row1": 0.5}},
            footer={"note": "hello"},
        )
        assert "Title" in text
        assert "1.000" in text and "2.000" in text
        assert "-" in text  # missing cell placeholder
        assert "note: hello" in text

    def test_format_stacked(self):
        text = format_stacked(
            "Stacks",
            ["w"],
            {"CHATS": {"w": {"conflict": 5, "cycle": 2}}},
        )
        assert "conflict=5" in text and "cycle=2" in text
        assert "total=" in text and "7" in text

    def test_format_heatmap(self):
        text = format_heatmap(
            "Heat", ["r1"], [10, 20], {("r1", 10): 1.5, ("r1", 20): 2.5}
        )
        assert "1.500" in text and "2.500" in text

    def test_summarize_series(self):
        s = summarize_series({"a": 1.0, "b": 3.0})
        assert s == {"min": 1.0, "max": 3.0, "mean": 2.0}
