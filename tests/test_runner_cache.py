"""Tests for the experiment runner: cache-key completeness (the
system/max_events collision regression), the persistent disk cache, and
the parallel ``run_many`` fan-out."""

from __future__ import annotations

import pytest

from repro import store as store_pkg
from repro.experiments import runner
from repro.experiments.figures import fig1
from repro.experiments.registry import experiment_configs
from repro.experiments.runner import (
    RunConfig,
    cache_size,
    clear_cache,
    counters,
    run_cached,
    run_many,
)
from repro.sim.config import SystemKind, table2_config
from repro.sim.results import SimulationResult

FAST = dict(threads=2, scale=0.1)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a fresh tmp dir and zero all counters."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setattr(runner, "_cache_dir_override", None)
    monkeypatch.setattr(runner, "_disk_cache_override", None)
    monkeypatch.setattr(runner, "_default_progress", None)
    store_pkg.drop_cached_instances()
    clear_cache()
    counters().reset()
    yield
    store_pkg.drop_cached_instances()
    clear_cache()
    counters().reset()


class TestKeyCompleteness:
    """Regression: the pre-fix key was (workload, htm, threads, seed,
    scale) — omitting ``system`` and ``max_events``."""

    def test_same_htm_different_system_does_not_collide(self):
        htm = table2_config(SystemKind.CHATS)
        a = run_cached("counter", SystemKind.CHATS, htm=htm, **FAST)
        b = run_cached("counter", SystemKind.LEVC, htm=htm, **FAST)
        # Two distinct cache entries, two real simulations — with the old
        # key the second call silently returned the first call's result.
        assert cache_size() == 2
        assert counters().simulations == 2
        assert a is not b

    def test_different_max_events_reruns(self):
        run_cached("counter", SystemKind.BASELINE, **FAST)
        run_cached(
            "counter", SystemKind.BASELINE, max_events=10_000_000, **FAST
        )
        assert counters().simulations == 2
        assert cache_size() == 2

    def test_identical_calls_still_hit(self):
        a = run_cached("counter", SystemKind.BASELINE, **FAST)
        b = run_cached("counter", SystemKind.BASELINE, **FAST)
        assert a is b
        assert counters().simulations == 1
        assert counters().memory_hits == 1


class TestDiskCache:
    def test_round_trip_equality(self):
        """A result reloaded from disk equals the original in every
        stats field (dataclass equality covers all counters)."""
        original = run_cached("counter", SystemKind.CHATS, **FAST)
        clear_cache()  # simulate a fresh process
        reloaded = run_cached("counter", SystemKind.CHATS, **FAST)
        assert counters().simulations == 1
        assert counters().disk_hits == 1
        assert reloaded == original
        assert reloaded.stats == original.stats
        assert reloaded.to_dict() == original.to_dict()

    def test_serialization_is_lossless(self):
        result = run_cached("llb-l", SystemKind.PCHATS, **FAST)
        assert SimulationResult.from_dict(result.to_dict()) == result

    def test_schema_version_bump_invalidates(self, monkeypatch):
        run_cached("counter", SystemKind.BASELINE, **FAST)
        clear_cache()
        monkeypatch.setattr(runner, "SCHEMA_VERSION", 999)
        run_cached("counter", SystemKind.BASELINE, **FAST)
        assert counters().simulations == 2
        assert counters().disk_hits == 0

    def test_no_cache_env_disables_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_cached("counter", SystemKind.BASELINE, **FAST)
        clear_cache()
        run_cached("counter", SystemKind.BASELINE, **FAST)
        assert counters().simulations == 2
        assert counters().disk_hits == 0

    @pytest.mark.parametrize("store_kind", ["legacy", "sharded"])
    def test_corrupt_entry_is_a_miss(self, store_kind, recwarn):
        """An unparsable store entry is a warn-once miss in *both*
        backends — never an exception, never a stale result."""
        with store_pkg.use(store_kind):
            cfg = RunConfig.make("counter", SystemKind.BASELINE, **FAST)
            run_cached("counter", SystemKind.BASELINE, **FAST)
            store = runner.result_store()
            assert store.kind == store_kind
            # Overwrite the entry with bytes that are not JSON.
            store.put(runner.result_key(cfg.key()), b"{not json")
            clear_cache()
            run_cached("counter", SystemKind.BASELINE, **FAST)
            assert counters().simulations == 2
            assert store.counters.corrupt == 1
            assert any(
                issubclass(w.category, RuntimeWarning)
                and "cache miss" in str(w.message)
                for w in recwarn.list
            )


SWEEP = [
    RunConfig.make(w, s, **FAST)
    for w in ("counter", "llb-l")
    for s in (SystemKind.BASELINE, SystemKind.CHATS, SystemKind.PCHATS)
]


class TestRunMany:
    def test_parallel_matches_serial_bit_identical(self):
        """workers=2 must produce byte-identical results to the serial
        path on two workloads x three systems (acceptance criterion)."""
        serial = run_many(SWEEP, workers=1, use_cache=False)
        parallel = run_many(SWEEP, workers=2, use_cache=False)
        assert [r.to_dict() for r in serial] == [
            r.to_dict() for r in parallel
        ]

    def test_deduplicates_before_dispatch(self):
        cfg = SWEEP[0]
        results = run_many([cfg, cfg, cfg], workers=2, use_cache=False)
        assert counters().simulations == 1
        assert len(results) == 3
        assert results[0] is results[1] is results[2]

    def test_results_in_input_order(self):
        results = run_many(SWEEP, workers=2)
        for cfg, result in zip(SWEEP, results):
            assert result.workload == cfg.workload
            assert result.system == cfg.system.value

    def test_populates_shared_cache(self):
        run_many(SWEEP[:3], workers=2)
        assert counters().simulations == 3
        for cfg in SWEEP[:3]:
            run_cached(
                cfg.workload,
                cfg.system,
                threads=cfg.threads,
                seed=cfg.seed,
                scale=cfg.scale,
            )
        assert counters().simulations == 3  # all warm

    def test_failure_surfaces_offending_config(self):
        bad = RunConfig.make("no-such-workload", SystemKind.BASELINE, **FAST)
        with pytest.raises(RuntimeError, match="no-such-workload"):
            run_many([bad] + SWEEP[:2], workers=2, use_cache=False)

    def test_serial_failure_surfaces_too(self):
        bad = RunConfig.make("no-such-workload", SystemKind.BASELINE, **FAST)
        with pytest.raises(RuntimeError, match="no-such-workload"):
            run_many([bad], workers=1, use_cache=False)

    def test_progress_streamed(self):
        seen = []
        run_many(
            SWEEP[:2],
            workers=1,
            progress=lambda done, total, cfg, src: seen.append(
                (done, total, src)
            ),
        )
        assert [s[:2] for s in seen] == [(1, 2), (2, 2)]
        # Re-run: both cells now arrive from the cache.
        seen.clear()
        run_many(
            SWEEP[:2],
            workers=1,
            progress=lambda done, total, cfg, src: seen.append(src),
        )
        assert seen == ["cached", "cached"]


class TestFigureSweepCaching:
    """Acceptance: a figure sweep run twice is a cache hit the second
    time — zero simulations re-executed, verified by the counter."""

    def test_second_figure_run_is_free(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        monkeypatch.setenv("REPRO_THREADS", "4")
        fig1(workloads=("counter", "llb-l"))
        first = counters().simulations
        assert first > 0
        fig1(workloads=("counter", "llb-l"))
        assert counters().simulations == first

    def test_second_run_from_disk_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        monkeypatch.setenv("REPRO_THREADS", "4")
        fig1(workloads=("counter",))
        first = counters().simulations
        clear_cache()  # fresh process: only the disk cache survives
        fig1(workloads=("counter",))
        assert counters().simulations == first
        assert counters().disk_hits > 0


class TestExperimentConfigs:
    def test_main_sweep_declares_all_cells(self):
        cfgs = experiment_configs("fig4", workloads=("counter", "llb-l"))
        assert len(cfgs) == 2 * 6  # workloads x six systems
        assert len({c.key() for c in cfgs}) == len(cfgs)

    def test_fig9_sweep_parameterized(self):
        cfgs = experiment_configs(
            "fig9", workloads=("counter",), retries=(2, 32)
        )
        assert len(cfgs) == 4 * 2  # four systems x two retry values
        assert {c.htm.retries for c in cfgs} == {2, 32}

    def test_tables_have_no_cells(self):
        assert experiment_configs("table1") == []

    def test_figure_prefetch_covers_figure_needs(self, monkeypatch):
        """The declared set must be a superset of what the figure
        actually consumes: after run_many(configs), assembling the
        figure triggers zero additional simulations."""
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        monkeypatch.setenv("REPRO_THREADS", "4")
        run_many(experiment_configs("fig11", workloads=("counter",)))
        ran = counters().simulations
        fig11 = __import__(
            "repro.experiments.figures", fromlist=["fig11"]
        ).fig11
        fig11(workloads=("counter",))
        assert counters().simulations == ran
