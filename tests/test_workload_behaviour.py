"""Behavioural tests tying each benchmark to the paper's description of
*why* it behaves the way it does under CHATS (Section VII)."""

import pytest

import repro
from repro.sim.config import SystemKind


def run(name, system, **kw):
    defaults = dict(threads=8, seed=1, scale=0.2)
    defaults.update(kw)
    return repro.run_workload(name, system, **defaults)


class TestKMeans:
    def test_migratory_pattern_forwards(self):
        """Centre updates migrate between threads; CHATS must forward
        heavily and validate a meaningful share."""
        r = run("kmeans-h", SystemKind.CHATS)
        assert r.stats.spec_forwards > 50
        assert r.stats.validations_succeeded > 0

    def test_contention_ordering(self):
        """kmeans-h (6 centres) must conflict more than kmeans-l (32)."""
        high = run("kmeans-h", SystemKind.BASELINE)
        low = run("kmeans-l", SystemKind.BASELINE)
        assert high.total_aborts > low.total_aborts

    def test_chats_reduces_conflicts(self):
        base = run("kmeans-h", SystemKind.BASELINE)
        chats = run("kmeans-h", SystemKind.CHATS)
        assert chats.cycles < base.cycles


class TestGenome:
    def test_link_phase_is_the_forwarding_site(self):
        r = run("genome", SystemKind.CHATS)
        labels = r.stats.label_summary()
        assert "link" in labels and "dedup" in labels
        # Linking (chain tails) commits for every unique segment.
        assert labels["link"]["commits"] > 0

    def test_dedup_is_low_conflict_with_big_table(self):
        r = run("genome", SystemKind.BASELINE)
        labels = r.stats.label_summary()
        commits = labels["dedup"]["commits"]
        aborts = labels["dedup"]["aborts"]
        assert aborts < commits, "a generously sized table rarely collides"


class TestIntruder:
    def test_capture_is_the_choke_point(self):
        r = run("intruder", SystemKind.BASELINE)
        labels = r.stats.label_summary()
        assert labels["capture"]["aborts"] >= labels["reassembly"]["aborts"]

    def test_pchats_handles_it_best(self):
        chats = run("intruder", SystemKind.CHATS)
        pchats = run("intruder", SystemKind.PCHATS)
        base = run("intruder", SystemKind.BASELINE)
        assert pchats.cycles <= chats.cycles * 1.15
        assert pchats.cycles < base.cycles


class TestLowContentionPair:
    @pytest.mark.parametrize("name", ["ssca2", "vacation"])
    def test_all_systems_close_to_baseline(self, name):
        """The paper: 'all configurations achieve virtually the same
        performance' on ssca2/vacation.  At the tiny test scale a handful
        of resolved conflicts moves the ratio, so the tolerance is loose —
        the figure-level benches check the calibrated configuration."""
        cycles = {}
        for system in (
            SystemKind.BASELINE,
            SystemKind.CHATS,
            SystemKind.PCHATS,
        ):
            cycles[system] = run(name, system).cycles
        base = cycles[SystemKind.BASELINE]
        for system, c in cycles.items():
            assert abs(c - base) / base < 0.40, f"{name}/{system.value}"

    def test_ssca2_has_almost_no_aborts(self):
        r = run("ssca2", SystemKind.BASELINE)
        assert r.total_aborts <= 15  # the paper: 0-10 for the full run


class TestYada:
    def test_writes_are_write_once(self):
        """The migration pattern: generation bumps are exact, meaning no
        record was double-counted through any speculation path."""
        for system in (SystemKind.CHATS, SystemKind.LEVC):
            r = run("yada", system)  # verify() checks the exact sum
            assert r.total_commits > 0

    def test_long_transactions_forward(self):
        r = run("yada", SystemKind.CHATS)
        assert r.stats.spec_forwards > 0


class TestLabyrinth:
    def test_failed_routes_use_alternatives(self):
        wl = repro.make_workload("labyrinth", threads=8, seed=1, scale=0.3)
        from repro.sim.simulator import Simulator

        sim = Simulator(wl, htm=repro.table2_config(SystemKind.BASELINE))
        result = sim.run()
        routed = sim.memory.read_word(wl.routed.addr)
        requested = wl.num_threads * wl.routes_per_thread
        # Not every route fits (cells fill up) but a healthy majority must.
        assert routed >= requested // 2
        assert routed <= requested


class TestMicrobenchmarks:
    def test_llb_low_vs_high_contention(self):
        low = run("llb-l", SystemKind.BASELINE)
        high = run("llb-h", SystemKind.BASELINE)
        assert high.total_aborts >= low.total_aborts

    def test_cadd_forwarders_commit(self):
        """cadd's blind write + read tail is the ideal chain pattern: the
        overwhelming majority of forwarders must survive."""
        r = run("cadd", SystemKind.CHATS)
        fwd = r.stats.forwarder_committed + r.stats.forwarder_aborted
        assert fwd > 0
        assert r.stats.forwarder_committed / fwd > 0.7

    def test_chats_wins_llb_low(self):
        base = run("llb-l", SystemKind.BASELINE)
        chats = run("llb-l", SystemKind.CHATS)
        assert chats.cycles < base.cycles * 0.8
