"""Tests for the ScriptedWorkload helper itself."""

import pytest

from repro.sim.config import SystemKind
from repro.sim.ops import Read, Work, Write
from repro.workloads.scripted import ScriptedWorkload
from tests.conftest import run_scripted

X = 0x10_0000


class TestConstruction:
    def test_needs_threads(self):
        with pytest.raises(ValueError):
            ScriptedWorkload([])

    def test_thread_count(self):
        def t():
            yield Work(1)

        wl = ScriptedWorkload([t, t, t])
        assert wl.num_threads == 3

    def test_initial_image(self):
        def t():
            v = yield Read(X)
            yield Write(X + 8, v * 2)

        _, sim = run_scripted([t], SystemKind.BASELINE, initial={X: 21})
        assert sim.memory.read_word(X + 8) == 42

    def test_check_failure_raises(self):
        def t():
            yield Write(X, 1)

        with pytest.raises(AssertionError, match="scripted workload check"):
            run_scripted(
                [t], SystemKind.BASELINE, check=lambda m: m.read_word(X) == 2
            )

    def test_check_success(self):
        def t():
            yield Write(X, 1)

        run_scripted(
            [t], SystemKind.BASELINE, check=lambda m: m.read_word(X) == 1
        )

    def test_lock_does_not_collide_with_scripted_range(self):
        """The fallback lock must be allocated outside the address range
        scripted scenarios use (a collision once caused a livelock)."""
        def t():
            yield Work(1)

        wl = ScriptedWorkload([t])
        from repro.sim.simulator import Simulator

        sim = Simulator(wl)
        assert sim.lock.addr >= 16 << 20

    def test_threads_run_concurrently(self):
        marks = []

        def t(name):
            def thread():
                yield Work(100)
                marks.append(name)

            return thread

        result, _ = run_scripted([t("a"), t("b")], SystemKind.BASELINE)
        # Both finish around cycle 100 — concurrent, not serial.
        assert result.cycles < 150
        assert sorted(marks) == ["a", "b"]
