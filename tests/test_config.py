"""Unit tests for the configuration layer (Tables I and II)."""

import pytest

from repro.sim.config import (
    ForwardClass,
    HTMConfig,
    SystemConfig,
    SystemKind,
    all_system_kinds,
    table2_config,
)


class TestSystemConfig:
    def test_defaults_match_table1(self):
        c = SystemConfig()
        assert c.num_cores == 16
        assert c.l1_size_bytes == 48 * 1024
        assert c.l1_ways == 12
        assert c.l1_lines == 768
        assert c.l1_sets == 64
        assert c.words_per_block == 8
        assert c.data_message_flits == 5
        assert c.control_message_flits == 1

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_rejects_misaligned_block(self):
        with pytest.raises(ValueError):
            SystemConfig(block_bytes=60)

    def test_rejects_uneven_ways(self):
        with pytest.raises(ValueError):
            SystemConfig(l1_size_bytes=64 * 10, l1_ways=3)

    def test_custom_geometry(self):
        c = SystemConfig(num_cores=4, l1_size_bytes=64 * 8, l1_ways=2)
        assert c.l1_lines == 8
        assert c.l1_sets == 4


class TestHTMConfig:
    def test_baseline_needs_no_vsb(self):
        htm = HTMConfig(system=SystemKind.BASELINE)
        assert htm.vsb_size is None

    def test_forwarding_system_requires_vsb(self):
        with pytest.raises(ValueError):
            HTMConfig(system=SystemKind.CHATS)

    def test_forwarding_system_requires_interval(self):
        with pytest.raises(ValueError):
            HTMConfig(
                system=SystemKind.CHATS,
                vsb_size=4,
                forward_class=ForwardClass.W,
            )

    def test_forwarding_system_requires_class(self):
        with pytest.raises(ValueError):
            HTMConfig(
                system=SystemKind.CHATS, vsb_size=4, validation_interval=50
            )

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            HTMConfig(retries=-1)

    def test_pic_range_is_5_bits(self):
        htm = table2_config(SystemKind.CHATS)
        assert htm.pic_bits == 5
        # One encoding (all-ones) is reserved for the unset PiC.
        assert htm.pic_limit == 31
        # PiC_init sits mid-range so chains can grow from either end.
        assert htm.pic_init == 15

    def test_replace_preserves_validation(self):
        htm = table2_config(SystemKind.CHATS)
        smaller = htm.replace(vsb_size=2)
        assert smaller.vsb_size == 2
        assert smaller.retries == htm.retries
        with pytest.raises(ValueError):
            htm.replace(vsb_size=0)

    def test_tiny_pic_rejected(self):
        with pytest.raises(ValueError):
            HTMConfig(pic_bits=1)


class TestTable2:
    def test_all_systems_enumerated(self):
        kinds = all_system_kinds()
        assert len(kinds) == 6
        assert kinds[0] is SystemKind.BASELINE
        assert kinds[-1] is SystemKind.LEVC

    @pytest.mark.parametrize(
        "system,retries",
        [
            (SystemKind.BASELINE, 6),
            (SystemKind.NAIVE_RS, 2),
            (SystemKind.CHATS, 32),
            (SystemKind.POWER, 2),
            (SystemKind.PCHATS, 1),
            (SystemKind.LEVC, 64),
        ],
    )
    def test_table2_retries(self, system, retries):
        assert table2_config(system).retries == retries

    def test_levc_validates_continuously(self):
        assert table2_config(SystemKind.LEVC).validation_interval == 0

    def test_forwarding_property(self):
        assert not SystemKind.BASELINE.forwards
        assert not SystemKind.POWER.forwards
        assert SystemKind.CHATS.forwards
        assert SystemKind.PCHATS.forwards
        assert SystemKind.NAIVE_RS.forwards
        assert SystemKind.LEVC.forwards

    def test_powered_property(self):
        assert SystemKind.POWER.powered
        assert SystemKind.PCHATS.powered
        assert not SystemKind.CHATS.powered

    def test_configs_are_hashable(self):
        # The experiment runner caches on HTMConfig instances.
        assert hash(table2_config(SystemKind.CHATS)) == hash(
            table2_config(SystemKind.CHATS)
        )
