"""Tests for the capacity-limited and hybrid-fallback system families.

Two properties matter beyond plain correctness:

* the new knobs are *inert by default* — the paper six leave them None
  and keep their golden digests (pinned by test_golden_determinism);
* the new behaviours are visible and attributable — capacity aborts fall
  monotonically with the read-set budget, hybrid runs produce
  ``hybrid-slowpath`` aborts concurrent with hardware commits, and
  ``repro inspect`` attributes them.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import run_workload
from repro.analysis.forensics import collect_forensics
from repro.htm.signature import BoundedPerfectSignature, FootprintOverflow
from repro.htm.stats import AbortReason
from repro.sim.config import table2_config
from repro.systems import get_spec
from repro.systems.spec import SystemSpec

FAST = dict(threads=8, seed=1, scale=0.25)


# ----------------------------------------------------------------------
# Spec-level validation of the new knobs.
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_fallback_vocabulary_enforced(self):
        with pytest.raises(ValueError, match="fallback"):
            SystemSpec(name="x", label="x", fallback="optimistic")

    def test_hybrid_plus_power_forbidden(self):
        with pytest.raises(ValueError, match="power"):
            SystemSpec(
                name="x", label="x", fallback="hybrid", priority="power"
            )

    def test_read_set_limit_excludes_signature_bits(self):
        with pytest.raises(ValueError, match="exclusive"):
            SystemSpec(
                name="x", label="x", read_set_limit=8, signature_bits=256
            )

    @pytest.mark.parametrize(
        "knob", ["signature_bits", "read_set_limit", "write_set_limit"]
    )
    def test_capacity_knobs_must_be_positive(self, knob):
        with pytest.raises(ValueError, match="positive"):
            SystemSpec(name="x", label="x", **{knob: 0})

    def test_paper_systems_leave_knobs_inert(self):
        for spec in ("htm-be", "chats", "pchats", "power", "levc-be-idealized"):
            s = get_spec(spec)
            assert s.fallback == "lock"
            assert s.signature_bits is None
            assert s.read_set_limit is None
            assert s.write_set_limit is None

    def test_describe_shows_the_new_knobs(self):
        cap = get_spec("cap-be")
        assert "rs-limit=64" in cap.describe_table2()
        assert "ws-limit=32" in cap.describe_table2()
        hybrid = get_spec("hybrid-be")
        assert "fallback=hybrid" in hybrid.describe_layers()
        assert "fallback" not in get_spec("htm-be").describe_layers()


# ----------------------------------------------------------------------
# Bounded signature unit behaviour.
# ----------------------------------------------------------------------
class TestBoundedSignature:
    def test_overflow_raises_on_first_new_block_past_budget(self):
        sig = BoundedPerfectSignature(2)
        sig.add(10)
        sig.add(20)
        with pytest.raises(FootprintOverflow) as exc:
            sig.add(30)
        assert exc.value.block == 30

    def test_readding_tracked_block_is_free(self):
        sig = BoundedPerfectSignature(2)
        sig.add(10)
        sig.add(20)
        sig.add(10)  # already tracked: no overflow
        assert sig.test(10) and sig.test(20)


# ----------------------------------------------------------------------
# Capacity-limited systems end to end.
# ----------------------------------------------------------------------
class TestCapacitySystems:
    def test_capacity_aborts_fall_with_read_set_budget(self):
        table = table2_config("cap-be")
        counts = []
        for limit in (4, 8, 16, 64):
            htm = dataclasses.replace(table, read_set_limit=limit)
            result = run_workload("llb-l", "cap-be", htm=htm, **FAST)
            counts.append(result.stats.aborts.get(AbortReason.CAPACITY, 0))
        assert counts[0] > 0, "smallest budget should overflow on llb-l"
        assert counts == sorted(counts, reverse=True), (
            f"capacity aborts should fall with the budget, got {counts}"
        )

    def test_write_set_limit_raises_capacity_aborts(self):
        table = table2_config("cap-be")
        htm = dataclasses.replace(
            table, read_set_limit=None, write_set_limit=1
        )
        result = run_workload("intruder", "cap-be", htm=htm, **FAST)
        assert result.stats.aborts.get(AbortReason.CAPACITY, 0) > 0

    def test_capacity_abort_serializes_immediately(self):
        """A capacity abort means "retry not helpful": the transaction
        goes to the fallback path, so the run still completes and every
        overflowing transaction commits serially."""
        table = table2_config("cap-be")
        htm = dataclasses.replace(table, read_set_limit=4)
        result = run_workload("llb-l", "cap-be", htm=htm, **FAST)
        assert result.stats.tx_fallback_commits > 0

    def test_bloom_signature_system_runs(self):
        result = run_workload("vacation", "bloom-be", **FAST)
        assert result.stats.tx_commits > 0
        # Bloom aliasing shows up as conflicts, never as capacity aborts.
        assert result.stats.aborts.get(AbortReason.CAPACITY, 0) == 0

    def test_deterministic(self):
        a = run_workload("llb-l", "cap-be", **FAST)
        b = run_workload("llb-l", "cap-be", **FAST)
        assert a.to_dict() == b.to_dict()

    def test_capacity_aborts_are_attributed(self):
        report = collect_forensics("llb-l", "cap-be", **FAST)
        breakdown = report.attribution.breakdown()
        assert breakdown["capacity"] > 0
        assert report.attribution.attributed_fraction >= 0.95


# ----------------------------------------------------------------------
# Hybrid-fallback systems end to end.
# ----------------------------------------------------------------------
class TestHybridSystems:
    def test_slowpath_runs_concurrently_not_behind_the_lock(self):
        result = run_workload("cadd", "hybrid-be", **FAST)
        stats = result.stats
        assert stats.tx_fallback_commits > 0, "cadd should hit the fallback"
        # Hardware transactions that touch an owned block abort with the
        # hybrid cause; the global lock is never taken.
        assert stats.aborts.get(AbortReason.HYBRID, 0) > 0
        assert stats.aborts.get(AbortReason.LOCK, 0) == 0

    def test_hardware_commits_during_slowpath_spans(self):
        """The concurrency claim itself: hardware commit cycles overlap
        software slow-path spans (a global lock would forbid this)."""
        from repro.obs.ledger import TxLedger
        from repro.sim.simulator import Simulator
        from repro.workloads.base import make_workload

        wl = make_workload("cadd", **FAST)
        sim = Simulator(wl, htm=table2_config("hybrid-be"))
        ledger = TxLedger(sim)
        with ledger:
            sim.run()
        spans = ledger.fallbacks
        assert spans, "expected at least one slow-path span"
        overlapping = sum(
            1
            for a in ledger.attempts
            if a.outcome == "committed"
            and any(
                s.begin <= a.end <= s.end and s.core != a.core
                for s in spans
            )
        )
        assert overlapping > 0, (
            "no hardware transaction committed inside another core's "
            "slow-path span — fallback is serializing"
        )

    def test_hybrid_aborts_are_attributed(self):
        report = collect_forensics("cadd", "hybrid-be", **FAST)
        breakdown = report.attribution.breakdown()
        assert breakdown["hybrid-slowpath"] > 0
        assert report.attribution.attributed_fraction >= 0.95

    def test_chats_layers_compose_with_hybrid_fallback(self):
        result = run_workload("cadd", "hybrid-chats", **FAST)
        stats = result.stats
        assert stats.tx_commits > 0
        assert stats.spec_forwards > 0, "CHATS forwarding should still fire"
        assert stats.aborts.get(AbortReason.LOCK, 0) == 0

    def test_deterministic(self):
        a = run_workload("cadd", "hybrid-be", **FAST)
        b = run_workload("cadd", "hybrid-be", **FAST)
        assert a.to_dict() == b.to_dict()
