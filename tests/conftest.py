"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.mem.address import AddressSpace, Geometry
from repro.mem.memory import MainMemory
from repro.sim.config import HTMConfig, SystemConfig, SystemKind, table2_config
from repro.sim.simulator import Simulator
from repro.workloads.scripted import ScriptedWorkload


@pytest.fixture
def geometry() -> Geometry:
    return Geometry()


@pytest.fixture
def memory(geometry) -> MainMemory:
    return MainMemory(geometry)


@pytest.fixture
def space(geometry) -> AddressSpace:
    return AddressSpace(geometry)


@pytest.fixture
def small_config() -> SystemConfig:
    """A 4-core machine with a tiny L1 for eviction-path tests."""
    return SystemConfig(num_cores=4, l1_size_bytes=4 * 64 * 2, l1_ways=2)


def run_scripted(
    thread_fns,
    system: SystemKind = SystemKind.BASELINE,
    *,
    htm: HTMConfig = None,
    config: SystemConfig = None,
    initial=None,
    check=None,
    max_events: int = 3_000_000,
):
    """Build and run a ScriptedWorkload; returns (result, simulator)."""
    wl = ScriptedWorkload(list(thread_fns), initial=initial, check=check)
    htm = htm if htm is not None else table2_config(system)
    config = config if config is not None else SystemConfig(
        num_cores=max(2, len(thread_fns))
    )
    sim = Simulator(wl, htm=htm, config=config)
    result = sim.run(max_events=max_events)
    return result, sim


@pytest.fixture
def scripted():
    return run_scripted


ALL_SYSTEMS = (
    SystemKind.BASELINE,
    SystemKind.NAIVE_RS,
    SystemKind.CHATS,
    SystemKind.POWER,
    SystemKind.PCHATS,
    SystemKind.LEVC,
)
