"""Tests for ``run_many``'s retry paths.

A worker (or serial attempt) that dies is retried exactly once through
the same execution callable as the first attempt.  The regression this
file pins: retries used to bypass the forensics-mode callable (losing
the manifest digest) and the serial retry's wall-time was measured from
the *failed* attempt's start, charging the successful run for both.

The injectable failure is a registered workload whose constructor raises
on the first attempt per (marker-dir, seed) and succeeds afterwards.
The marker directory travels through ``REPRO_TEST_FLAKY_DIR`` so forked
pool workers see the same first-attempt state as the parent.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.runner import (
    RunConfig,
    clear_cache,
    counters,
    last_manifest,
    run_many,
)
from repro.workloads.base import register
from repro.workloads.synth import CounterWorkload

FAST = dict(threads=2, scale=0.1)

#: Env var naming the marker directory; one ``attempt-<seed>`` file per
#: config records that its first attempt already failed.
FLAKY_DIR_ENV = "REPRO_TEST_FLAKY_DIR"

#: How long the injected failure burns before raising — the timing test
#: asserts the manifest charges the retried config *less* than this.
FAIL_SLEEP = 0.2


@register
class FlakyCounter(CounterWorkload):
    """Counter workload whose first construction per seed fails."""

    name = "flaky-counter"

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        marker_dir = os.environ.get(FLAKY_DIR_ENV)
        if marker_dir:
            marker = Path(marker_dir) / f"attempt-{seed}"
            if not marker.exists():
                marker.touch()
                time.sleep(FAIL_SLEEP)
                raise RuntimeError("injected first-attempt failure")
        super().__init__(threads=threads, seed=seed, scale=scale)


@register
class BrokenCounter(CounterWorkload):
    """Counter workload that fails on every attempt."""

    name = "broken-counter"

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        raise RuntimeError("injected permanent failure")


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setattr(runner, "_cache_dir_override", None)
    monkeypatch.setattr(runner, "_disk_cache_override", None)
    monkeypatch.setattr(runner, "_default_progress", None)
    clear_cache()
    counters().reset()
    yield
    clear_cache()
    counters().reset()


@pytest.fixture
def flaky_markers(tmp_path, monkeypatch):
    """Arm the injectable failure; returns the marker directory."""
    marker_dir = tmp_path / "flaky"
    marker_dir.mkdir()
    monkeypatch.setenv(FLAKY_DIR_ENV, str(marker_dir))
    yield marker_dir


def _flaky(seed: int = 1) -> RunConfig:
    return RunConfig.make("flaky-counter", "htm-be", seed=seed, **FAST)


class TestSerialRetry:
    def test_first_failure_is_retried_once(self, flaky_markers):
        results = run_many([_flaky()], workers=1, use_cache=False)
        assert len(results) == 1
        assert results[0].workload == "flaky-counter"
        # Marker proves the first attempt really failed before the retry.
        assert (flaky_markers / "attempt-1").exists()
        assert counters().simulations == 1

    def test_retry_matches_clean_run(self, flaky_markers):
        flaky = run_many([_flaky()], workers=1, use_cache=False)[0]
        clean = run_many(
            [RunConfig.make("counter", "htm-be", **FAST)],
            workers=1,
            use_cache=False,
        )[0]
        # Same simulated machine and schedule: only the workload name in
        # the result envelope differs.
        assert flaky.cycles == clean.cycles
        assert flaky.stats == clean.stats

    def test_timing_covers_only_the_successful_attempt(self, flaky_markers):
        cfg = _flaky()
        run_many([cfg], workers=1, use_cache=False)
        entry = last_manifest().entry_for(cfg)
        assert entry is not None and entry.source == "run"
        # The failed attempt slept FAIL_SLEEP before dying; the recorded
        # wall-time must exclude it (the fast retry runs in well under
        # FAIL_SLEEP on any host).
        assert entry.seconds < FAIL_SLEEP, (
            f"manifest charged {entry.seconds:.3f}s — looks like the "
            "failed attempt's time leaked into the retry's measurement"
        )

    def test_second_failure_raises_with_config(self):
        bad = RunConfig.make("broken-counter", "htm-be", **FAST)
        with pytest.raises(RuntimeError, match="failed twice") as exc:
            run_many([bad], workers=1, use_cache=False)
        assert "broken-counter" in str(exc.value)


class TestPoolRetry:
    def test_in_pool_first_failures_are_retried(self, flaky_markers):
        # Two distinct misses + workers=2 takes the process-pool path;
        # each config's first attempt fails in its worker and is
        # resubmitted to the pool.
        cfgs = [_flaky(seed=1), _flaky(seed=2)]
        results = run_many(cfgs, workers=2, use_cache=False)
        assert len(results) == 2
        assert {p.name for p in flaky_markers.iterdir()} == {
            "attempt-1",
            "attempt-2",
        }
        assert counters().simulations == 2

    def test_pool_second_failure_raises_with_config(self):
        bad = RunConfig.make("broken-counter", "htm-be", **FAST)
        other = RunConfig.make("counter", "htm-be", **FAST)
        with pytest.raises(RuntimeError, match="failed twice"):
            run_many([bad, other], workers=2, use_cache=False)


class TestForensicsRetry:
    def test_retry_keeps_the_manifest_digest(self, flaky_markers):
        cfg = _flaky()
        run_many([cfg], workers=1, use_cache=False, forensics=True)
        entry = last_manifest().entry_for(cfg)
        assert entry is not None and entry.source == "run"
        # The retry runs through the same forensic callable as a clean
        # first attempt, so the digest survives the failure.
        assert entry.forensics is not None
        assert entry.forensics.get("aborts") is not None
