"""Unit tests for messages and the crossbar interconnect."""

from repro.net.messages import DIRECTORY, Message, MessageKind
from repro.net.network import Crossbar
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine


class TestMessageKinds:
    def test_data_carrying_kinds(self):
        carrying = {k for k in MessageKind if k.carries_data}
        assert carrying == {
            MessageKind.DATA,
            MessageKind.DATA_E,
            MessageKind.SPEC_RESP,
            MessageKind.WRITEBACK,
        }

    def test_flit_classification(self):
        data = Message(kind=MessageKind.SPEC_RESP, src=0, dst=1, block=1)
        ctrl = Message(kind=MessageKind.GETS, src=0, dst=DIRECTORY, block=1)
        assert data.flits == 5
        assert ctrl.flits == 1

    def test_unique_uids(self):
        a = Message(kind=MessageKind.GETS, src=0, dst=1, block=1)
        b = Message(kind=MessageKind.GETS, src=0, dst=1, block=1)
        assert a.uid != b.uid


class TestCrossbar:
    def _net(self):
        engine = Engine()
        delivered = []
        # Retain on capture: the crossbar recycles delivered messages.
        net = Crossbar(
            engine, SystemConfig(), lambda m: delivered.append(m.retain())
        )
        return engine, net, delivered

    def test_delivery_after_link_latency(self):
        engine, net, delivered = self._net()
        net.send(Message(kind=MessageKind.GETS, src=0, dst=1, block=1))
        assert delivered == []
        engine.run()
        assert len(delivered) == 1
        assert engine.now == 1  # Table I: single-cycle crossbar

    def test_extra_delay(self):
        engine, net, delivered = self._net()
        net.send(
            Message(kind=MessageKind.DATA, src=DIRECTORY, dst=1, block=1),
            extra_delay=30,
        )
        engine.run()
        assert engine.now == 31

    def test_flit_accounting(self):
        engine, net, _ = self._net()
        net.send(Message(kind=MessageKind.GETS, src=0, dst=-1, block=1))
        net.send(Message(kind=MessageKind.DATA, src=-1, dst=0, block=1))
        stats = net.stats()
        assert stats["messages"] == 2
        assert stats["flits"] == 6  # 1 control + 5 data
        assert stats["control_flits"] == 1
        assert stats["data_flits"] == 5

    def test_spec_resp_flits_tracked(self):
        engine, net, _ = self._net()
        net.send(Message(kind=MessageKind.SPEC_RESP, src=0, dst=1, block=1))
        assert net.stats()["spec_resp_flits"] == 5

    def test_fifo_between_same_pair(self):
        engine, net, delivered = self._net()
        for i in range(5):
            net.send(Message(kind=MessageKind.GETS, src=0, dst=1, block=i))
        engine.run()
        assert [m.block for m in delivered] == list(range(5))
