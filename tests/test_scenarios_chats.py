"""Scenario tests: CHATS forwarding behaviour driven through precise
scripted interleavings.

These tests stage producer/consumer timings with ``Work`` delays and check
both the final memory state (atomicity) and the statistics (which
mechanism actually fired): forwarding, validation success, value-mismatch
aborts, cascading aborts, and cycle avoidance — the behaviours of
Sections III and IV.
"""


from repro.htm.stats import AbortReason
from repro.sim.config import SystemKind
from repro.sim.ops import Abort, Read, Txn, Work, Write
from tests.conftest import run_scripted

X = 0x10_0000  # block A
Y = 0x10_1000  # block B
Z = 0x10_2000  # block C


class TestForwardingChain:
    def test_consumer_chains_after_producer(self):
        """A consumer that reads a producer's final speculative value
        commits after the producer with the correct data."""

        def producer():
            def body():
                yield Write(X, 7)  # final immediately
                yield Work(600)  # ...but the transaction lingers

            yield Txn(body, ())

        def consumer():
            yield Work(150)  # let the producer own the block

            def body():
                v = yield Read(X)
                yield Write(Y, v + 1)

            yield Txn(body, ())

        result, sim = run_scripted(
            [producer, consumer],
            SystemKind.CHATS,
            check=lambda m: m.read_word(X) == 7 and m.read_word(Y) == 8,
        )
        assert sim.stats.spec_forwards >= 1
        assert sim.stats.validations_succeeded >= 1
        assert sim.stats.consumer_committed == 1
        assert sim.stats.forwarder_committed == 1
        assert result.total_aborts == 0

    def test_forwarding_requires_a_conflict_window(self):
        """Sequential transactions (no overlap) never forward."""

        def t0():
            def body():
                yield Write(X, 1)

            yield Txn(body, ())

        def t1():
            yield Work(2000)

            def body():
                v = yield Read(X)
                yield Write(Y, v)

            yield Txn(body, ())

        _, sim = run_scripted([t0, t1], SystemKind.CHATS)
        assert sim.stats.spec_forwards == 0

    def test_baseline_aborts_where_chats_forwards(self):
        """The same interleaving under requester-wins aborts the holder."""

        def producer():
            def body():
                yield Write(X, 7)
                yield Work(600)

            yield Txn(body, ())

        def consumer():
            yield Work(150)

            def body():
                v = yield Read(X)
                yield Write(Y, v + 1)

            yield Txn(body, ())

        _, sim = run_scripted(
            [producer, consumer],
            SystemKind.BASELINE,
            check=lambda m: m.read_word(X) == 7,
        )
        assert sim.stats.spec_forwards == 0
        assert sim.stats.aborts[AbortReason.CONFLICT] >= 1


class TestValidationFailures:
    def test_intermediate_value_aborts_consumer(self):
        """The producer overwrites the block after forwarding: the
        consumer's speculation was on an intermediate version and must
        fail validation (case (i) of Section III-A)."""

        def producer():
            def body():
                yield Write(X, 1)
                yield Work(400)  # forward happens in this window...
                yield Write(X, 2)  # ...then the value changes
                yield Work(200)

            yield Txn(body, ())

        def consumer():
            yield Work(100)

            def body():
                v = yield Read(X)
                yield Write(Y, v * 10)

            yield Txn(body, ())

        result, sim = run_scripted(
            [producer, consumer],
            SystemKind.CHATS,
            # Serializability: the consumer eventually retries and must
            # observe the committed 2.
            check=lambda m: m.read_word(X) == 2 and m.read_word(Y) == 20,
        )
        assert sim.stats.validation_mismatches >= 1
        assert sim.stats.aborts[AbortReason.VALIDATION] >= 1

    def test_producer_abort_cascades_through_validation(self):
        """When the producer dies, its consumers discover the stale value
        through validation — no dedicated abort messages (Section III-A)."""

        def producer():
            def body(attempt=[0]):
                attempt[0] += 1
                yield Write(X, 100 + attempt[0])
                yield Work(400)
                if attempt[0] == 1:
                    yield Abort()  # first attempt dies after forwarding

            yield Txn(body, ())

        def consumer():
            yield Work(100)

            def body():
                v = yield Read(X)
                yield Write(Y, v)

            yield Txn(body, ())

        result, sim = run_scripted(
            [producer, consumer],
            SystemKind.CHATS,
            check=lambda m: m.read_word(X) == 102 and m.read_word(Y) == 102,
        )
        assert sim.stats.spec_forwards >= 1
        assert sim.stats.aborts[AbortReason.EXPLICIT] == 1
        # The consumer observed the inconsistency via value comparison.
        assert (
            sim.stats.aborts[AbortReason.VALIDATION] >= 1
            or sim.stats.consumer_aborted >= 1
        )


class TestMultipleConsumers:
    def test_consumers_serialize_behind_producer(self):
        """T1 and T2 both consume from T0; commits serialize and the final
        state reflects a valid serial order (Section III-A)."""

        def producer():
            def body():
                yield Write(X, 5)
                yield Work(500)

            yield Txn(body, ())

        def consumer(dst):
            def thread():
                yield Work(120)

                def body():
                    v = yield Read(X)
                    yield Write(dst, v + 1)

                yield Txn(body, ())

            return thread

        result, sim = run_scripted(
            [producer, consumer(Y), consumer(Z)],
            SystemKind.CHATS,
            check=lambda m: m.read_word(Y) == 6 and m.read_word(Z) == 6,
        )
        assert sim.stats.spec_forwards >= 2

    def test_writing_consumers_cannot_both_commit(self):
        """Two consumers that *modify* the same forwarded block must
        serialize: value-based validation kills the loser."""

        def producer():
            def body():
                yield Write(X, 0)
                yield Work(500)

            yield Txn(body, ())

        def incrementer():
            yield Work(120)

            def body():
                v = yield Read(X)
                yield Work(30)
                yield Write(X, v + 1)

            yield Txn(body, ())

        result, sim = run_scripted(
            [producer, incrementer, incrementer],
            SystemKind.CHATS,
            check=lambda m: m.read_word(X) == 2,  # both increments land
        )
        assert result.total_commits == 3


class TestCycleAvoidance:
    def test_mutual_producers_do_not_deadlock(self):
        """A wants B's block and vice versa: a cyclic chain would wedge
        both at the commit fence; the PiC rules must abort one instead."""

        def make(mine, theirs, seed_value):
            def thread():
                def body():
                    yield Write(mine, seed_value)
                    yield Work(200)
                    v = yield Read(theirs)
                    yield Work(200)
                    yield Write(mine + 8, v)

                yield Txn(body, ())

            return thread

        result, sim = run_scripted(
            [make(X, Y, 1), make(Y, X, 2)],
            SystemKind.CHATS,
            check=lambda m: m.read_word(X) == 1 and m.read_word(Y) == 2,
        )
        # Both transactions completed (no deadlock) and the run ended.
        assert result.total_commits == 2

    def test_longer_potential_cycle_resolves(self):
        """Three transactions in a potential ring on three blocks."""
        blocks = (X, Y, Z)

        def make(i):
            mine, theirs = blocks[i], blocks[(i + 1) % 3]

            def thread():
                def body():
                    yield Write(mine, i + 1)
                    yield Work(150)
                    v = yield Read(theirs)
                    yield Work(150)
                    yield Write(mine + 8, v + 10)

                yield Txn(body, ())

            return thread

        result, sim = run_scripted(
            [make(0), make(1), make(2)],
            SystemKind.CHATS,
            check=lambda m: all(
                m.read_word(b) == i + 1 for i, b in enumerate(blocks)
            ),
        )
        assert result.total_commits == 3


class TestABA:
    def test_aba_speculation_succeeds_on_matching_value(self):
        """Section III-C: speculation on value A is correct whenever the
        validated value is A again — even if the location briefly held B
        in between.  The consumer speculates X==7 from T_P; later writers
        set X to 9 and back to 7 before validation; the consumer commits."""

        def producer():
            def body():
                yield Write(X, 7)
                yield Work(260)

            yield Txn(body, ())

        def churner():
            # Non-transactional writes after the producer commits: 9, then
            # back to 7 (the ABA pattern).
            yield Work(400)
            yield Write(X, 9)
            yield Write(X, 7)

        def consumer():
            yield Work(120)

            def body():
                v = yield Read(X)
                # Long-running: validation happens well after the churn.
                yield Work(900)
                yield Write(Y, v)

            yield Txn(body, ())

        result, sim = run_scripted(
            [producer, churner, consumer],
            SystemKind.CHATS,
            check=lambda m: m.read_word(X) == 7,
        )
        final_y = sim.memory.read_word(Y)
        assert final_y == 7, "the consumer's speculation on 7 must hold"


class TestPiCLifecycle:
    def test_pic_resets_after_commit(self):
        def producer():
            def body():
                yield Write(X, 1)
                yield Work(400)

            yield Txn(body, ())

        def consumer():
            yield Work(100)

            def body():
                v = yield Read(X)
                yield Write(Y, v)

            yield Txn(body, ())

        _, sim = run_scripted([producer, consumer], SystemKind.CHATS)
        for core in sim.cores:
            assert core.tx is None  # all transactions completed
