"""Unit + property tests for the L1 cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import CapacityAbort, L1Cache
from repro.sim.config import SystemConfig


def tiny_cache(sets=2, ways=2) -> L1Cache:
    config = SystemConfig(
        num_cores=1, l1_size_bytes=64 * sets * ways, l1_ways=ways
    )
    return L1Cache(config)


class TestBasics:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.lookup(5) is None
        cache.install(5, "S")
        line = cache.lookup(5)
        assert line is not None and line.state == "S"

    def test_install_refreshes_state(self):
        cache = tiny_cache()
        cache.install(5, "S")
        cache.install(5, "M", speculative=True)
        line = cache.peek(5)
        assert line.state == "M" and line.speculative

    def test_invalidate(self):
        cache = tiny_cache()
        cache.install(5, "E")
        cache.invalidate(5)
        assert cache.peek(5) is None

    def test_invalidate_absent_is_noop(self):
        tiny_cache().invalidate(1234)

    def test_occupancy(self):
        cache = tiny_cache()
        cache.install(0, "S")
        cache.install(1, "S")
        assert cache.occupancy() == 2

    def test_mark_speculative(self):
        cache = tiny_cache()
        cache.install(3, "M")
        cache.mark_speculative(3)
        assert cache.peek(3).speculative

    def test_mark_speculative_missing_raises(self):
        with pytest.raises(KeyError):
            tiny_cache().mark_speculative(3)


class TestReplacement:
    def test_lru_victim(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.install(0, "S")
        cache.install(1, "S")
        cache.lookup(0)  # touch 0: now 1 is LRU
        victim = cache.install(2, "S")
        assert victim.block == 1
        assert cache.peek(0) is not None

    def test_speculative_lines_protected(self):
        # Write-set-aware replacement: the SM line survives even when LRU.
        cache = tiny_cache(sets=1, ways=2)
        cache.install(0, "M", speculative=True)
        cache.install(1, "S")
        victim = cache.install(2, "S")
        assert victim.block == 1
        assert cache.peek(0) is not None

    def test_capacity_abort_when_only_spec_victims(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.install(0, "M", speculative=True)
        cache.install(1, "M", speculative=True)
        with pytest.raises(CapacityAbort):
            cache.install(2, "S")

    def test_sets_are_independent(self):
        cache = tiny_cache(sets=2, ways=1)
        cache.install(0, "S")  # set 0
        cache.install(1, "S")  # set 1
        assert cache.peek(0) is not None and cache.peek(1) is not None
        victim = cache.install(2, "S")  # set 0 again
        assert victim.block == 0


class TestTransactionalSupport:
    def test_gang_invalidation_drops_only_sm(self):
        cache = tiny_cache()
        cache.install(0, "M", speculative=True)
        cache.install(1, "S")
        cache.install(2, "M")
        dropped = cache.gang_invalidate_speculative()
        assert dropped == [0]
        assert cache.peek(0) is None
        assert cache.peek(1) is not None and cache.peek(2) is not None

    def test_clear_speculative_marks_on_commit(self):
        cache = tiny_cache()
        cache.install(0, "M", speculative=True, spec_received=True)
        cleared = cache.clear_speculative_marks()
        assert cleared == [0]
        line = cache.peek(0)
        assert line.state == "M"
        assert not line.speculative and not line.spec_received

    def test_speculative_blocks_listing(self):
        cache = tiny_cache()
        cache.install(0, "M", speculative=True)
        cache.install(1, "S")
        assert cache.speculative_blocks() == [0]

    def test_resident_blocks(self):
        cache = tiny_cache()
        cache.install(0, "S")
        cache.install(1, "E")
        assert sorted(cache.resident_blocks()) == [0, 1]


class TestProperties:
    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200)
    )
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = tiny_cache(sets=2, ways=2)
        for b in blocks:
            cache.install(b, "S")
        assert cache.occupancy() <= 4
        for cset in cache._sets:
            assert len(cset) <= 2

    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100)
    )
    def test_most_recent_install_always_resident(self, blocks):
        cache = tiny_cache(sets=2, ways=2)
        for b in blocks:
            cache.install(b, "S")
            assert cache.peek(b) is not None

    @given(
        spec=st.lists(st.integers(min_value=0, max_value=31), max_size=8, unique=True),
        plain=st.lists(st.integers(min_value=32, max_value=63), max_size=8, unique=True),
    )
    def test_gang_invalidation_is_exact(self, spec, plain):
        cache = tiny_cache(sets=8, ways=4)
        try:
            for b in spec:
                cache.install(b, "M", speculative=True)
            for b in plain:
                cache.install(b, "S")
        except CapacityAbort:
            return  # degenerate packing; not the property under test
        dropped = cache.gang_invalidate_speculative()
        # Gang invalidation drops exactly the SM lines; plain lines are
        # untouched by it (though some may have been evicted earlier by
        # ordinary replacement when a set overflowed).
        assert sorted(dropped) == sorted(set(spec))
        residents = set(cache.resident_blocks())
        assert residents <= set(plain)
        assert not residents & set(spec)
