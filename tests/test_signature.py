"""Unit + property tests for read-set signatures."""

from hypothesis import given, strategies as st

from repro.htm.signature import BloomSignature, PerfectSignature


class TestPerfectSignature:
    def test_add_and_test(self):
        sig = PerfectSignature()
        sig.add(5)
        assert sig.test(5)
        assert not sig.test(6)

    def test_clear(self):
        sig = PerfectSignature()
        sig.add(5)
        sig.clear()
        assert not sig.test(5)
        assert len(sig) == 0

    def test_blocks_returns_copy(self):
        sig = PerfectSignature()
        sig.add(1)
        blocks = sig.blocks()
        blocks.add(2)
        assert not sig.test(2)

    def test_iteration(self):
        sig = PerfectSignature()
        for b in (3, 1, 2):
            sig.add(b)
        assert sorted(sig) == [1, 2, 3]

    @given(st.sets(st.integers(0, 2**40)))
    def test_exactness(self, blocks):
        sig = PerfectSignature()
        for b in blocks:
            sig.add(b)
        for b in blocks:
            assert sig.test(b)
        for probe in range(100):
            if probe not in blocks:
                assert not sig.test(probe)


class TestBloomSignature:
    def test_membership(self):
        sig = BloomSignature(bits=512)
        sig.add(42)
        assert sig.test(42)

    def test_clear(self):
        sig = BloomSignature(bits=512)
        sig.add(42)
        sig.clear()
        assert not sig.test(42)
        assert len(sig) == 0

    def test_invalid_params(self):
        import pytest

        with pytest.raises(ValueError):
            BloomSignature(bits=0)
        with pytest.raises(ValueError):
            BloomSignature(hashes=0)

    @given(st.sets(st.integers(0, 2**40), max_size=64))
    def test_no_false_negatives(self, blocks):
        """The defining Bloom-filter property: a real HTM signature may
        report spurious conflicts but must never miss one."""
        sig = BloomSignature(bits=2048, hashes=4)
        for b in blocks:
            sig.add(b)
        for b in blocks:
            assert sig.test(b)

    def test_false_positives_exist_when_saturated(self):
        sig = BloomSignature(bits=16, hashes=2)
        for b in range(64):
            sig.add(b)
        assert any(sig.test(probe) for probe in range(1000, 1100))
