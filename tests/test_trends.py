"""Tests for the perf-history trend layer: ``repro.analysis.trends``,
the ``repro trend`` CLI, and ``scripts/check_bench.py``'s directory
mode (deterministic newest-report selection, empty-history error)."""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis.trends import (
    TrendError,
    format_trend,
    load_history,
    trend_dict,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import check_bench  # noqa: E402


def _report(rev: str, created: int, eps: dict, quick=False) -> dict:
    return {
        "schema": 1,
        "rev": rev,
        "created_unix": created,
        "python": "3.11.9",
        "quick": quick,
        "repeat": 1,
        "cases": {
            key: {"events_per_sec": value} for key, value in eps.items()
        },
    }


@pytest.fixture
def history(tmp_path) -> Path:
    directory = tmp_path / "history"
    directory.mkdir()
    series = [
        ("aaa1111", 1_700_000_000, {"synth/chats/t8/s1/x4": 100_000,
                                    "vacation/chats/t8/s1/x4": 50_000}),
        ("bbb2222", 1_700_086_400, {"synth/chats/t8/s1/x4": 104_000,
                                    "vacation/chats/t8/s1/x4": 52_000}),
        ("ccc3333", 1_700_172_800, {"synth/chats/t8/s1/x4": 102_000,
                                    "vacation/chats/t8/s1/x4": 20_000}),
    ]
    for rev, created, eps in series:
        path = directory / f"BENCH_{rev}.json"
        path.write_text(json.dumps(_report(rev, created, eps)))
    return directory


# ----------------------------------------------------------------------
class TestLoadHistory:
    def test_orders_by_created_then_filename(self, history):
        reports = load_history(history)
        assert [r["rev"] for r in reports] == ["aaa1111", "bbb2222", "ccc3333"]
        assert all(r["_path"] for r in reports)

    def test_created_ties_break_on_filename(self, tmp_path):
        for rev in ("zzz", "aaa"):
            (tmp_path / f"BENCH_{rev}.json").write_text(
                json.dumps(_report(rev, 1_700_000_000, {"c": 1000}))
            )
        assert [r["rev"] for r in load_history(tmp_path)] == ["aaa", "zzz"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(TrendError, match="does not exist"):
            load_history(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(TrendError, match="no BENCH_"):
            load_history(tmp_path)

    @pytest.mark.parametrize(
        "payload",
        [
            "{broken",
            json.dumps([1, 2]),
            json.dumps({"schema": 1, "rev": "x"}),
            json.dumps(_report("x", 1, {"c": 0})),
        ],
        ids=["not-json", "not-object", "missing-keys", "zero-rate"],
    )
    def test_corrupt_report_fails_the_load(self, history, payload):
        (history / "BENCH_bad.json").write_text(payload)
        with pytest.raises(TrendError, match="corrupt report"):
            load_history(history)


# ----------------------------------------------------------------------
class TestTrend:
    def test_renders_every_report_and_case(self, history):
        text = format_trend(load_history(history))
        for rev in ("aaa1111", "bbb2222", "ccc3333"):
            assert rev in text
        assert "synth/chats/t8/s1/x4" in text
        assert "vacation/chats/t8/s1/x4" in text

    def test_flags_a_drop_beyond_tolerance(self, history):
        trend = trend_dict(load_history(history))
        (flag,) = trend["regressions"]
        assert flag["case"] == "vacation/chats/t8/s1/x4"
        assert flag["rev"] == "ccc3333"
        assert flag["prev_rev"] == "bbb2222"
        assert flag["delta"] == pytest.approx(-0.615, abs=0.001)
        assert "regression flags" in format_trend(load_history(history))

    def test_steady_history_is_clean(self, history):
        reports = load_history(history)[:2]  # drop the regressing report
        trend = trend_dict(reports)
        assert trend["regressions"] == []
        assert "no regressions flagged" in format_trend(reports)

    def test_baseline_floor_flags_slow_cases(self, history):
        baseline = {"cases": {"synth/chats/t8/s1/x4": 200_000}}
        trend = trend_dict(load_history(history), baseline=baseline)
        flagged = {f["case"] for f in trend["regressions"]}
        assert "synth/chats/t8/s1/x4" in flagged
        assert all(
            f["below_baseline_floor"]
            for f in trend["regressions"]
            if f["case"] == "synth/chats/t8/s1/x4"
        )

    def test_tolerance_is_adjustable(self, history):
        assert trend_dict(load_history(history), tolerance=0.99)[
            "regressions"
        ] == []


# ----------------------------------------------------------------------
class TestTrendCli:
    def test_renders_and_exits_zero(self, history, capsys):
        assert main(["trend", str(history)]) == 0
        out = capsys.readouterr().out
        assert "perf history" in out
        assert "ccc3333" in out

    def test_missing_history_exits_nonzero(self, tmp_path, capsys):
        assert main(["trend", str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_corrupt_report_exits_nonzero(self, history, capsys):
        (history / "BENCH_bad.json").write_text("{broken")
        assert main(["trend", str(history)]) == 1
        assert "corrupt report" in capsys.readouterr().err

    def test_strict_fails_on_regressions(self, history, capsys):
        assert main(["trend", str(history), "--strict"]) == 1
        assert "regression" in capsys.readouterr().out

    def test_json_dump(self, history, tmp_path, capsys):
        out = tmp_path / "trend.json"
        assert main(["trend", str(history), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-trend/1"
        assert len(payload["reports"]) == 3

    def test_committed_history_renders(self, capsys):
        """The in-repo archive must always render (the bench CI job runs
        this exact command on every push)."""
        history = Path(__file__).resolve().parent.parent / (
            "benchmarks/perf/history"
        )
        assert main(["trend", str(history)]) == 0
        assert "perf history" in capsys.readouterr().out


# ----------------------------------------------------------------------
class TestCheckBenchDirectoryMode:
    def test_mtime_tie_breaks_on_filename(self, history, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"cases": {}}))
        # Same mtime on every report: the lexicographically last filename
        # must win deterministically.
        for path in history.glob("BENCH_*.json"):
            os.utime(path, (1_700_000_000, 1_700_000_000))
        check_bench.main([str(history), "--baseline", str(baseline)])
        assert "BENCH_ccc3333.json" in capsys.readouterr().out

    def test_empty_history_errors_clearly(self, tmp_path, capsys):
        empty = tmp_path / "history"
        empty.mkdir()
        assert check_bench.main([str(empty)]) == 1
        err = capsys.readouterr().err
        assert "empty history" in err
        assert "repro bench" in err

    def test_missing_report_file_errors(self, tmp_path, capsys):
        assert check_bench.main([str(tmp_path / "BENCH_x.json")]) == 1
        assert "does not exist" in capsys.readouterr().err
