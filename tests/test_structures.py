"""Tests for the simulated-memory data structures.

Structure generator methods are exercised two ways: (a) *host-driven* — a
tiny interpreter applies their yielded ops directly to committed memory,
checking functional correctness in isolation; (b) inside single-threaded
simulations, checking they compose with the transaction machinery.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address import AddressSpace
from repro.mem.memory import MainMemory
from repro.sim.config import SystemKind
from repro.sim.ops import Read, Txn, Work, Write
from repro.workloads.structures import (
    NULL,
    NodePool,
    SimArray,
    SimBST,
    SimCounter,
    SimHashTable,
    SimLinkedList,
    SimQueue,
)


def interpret(memory: MainMemory, gen):
    """Drive a structure generator directly against committed memory."""
    try:
        op = next(gen)
        while True:
            if isinstance(op, Read):
                op = gen.send(memory.read_word(op.addr))
            elif isinstance(op, Write):
                memory.write_word(op.addr, op.value)
                op = gen.send(None)
            elif isinstance(op, Work):
                op = gen.send(None)
            else:  # pragma: no cover
                raise TypeError(op)
    except StopIteration as stop:
        return stop.value


@pytest.fixture
def pool_env(memory):
    space = AddressSpace(memory.geometry)
    return memory, space


class TestSimArray:
    def test_init_and_addresses(self, pool_env):
        memory, space = pool_env
        arr = SimArray(space, 4)
        arr.init(memory, [10, 20, 30, 40])
        assert memory.read_word(arr.addr(2)) == 30

    def test_get_set(self, pool_env):
        memory, space = pool_env
        arr = SimArray(space, 4)
        interpret(memory, arr.set(1, 99))
        assert interpret(memory, arr.get(1)) == 99

    def test_bounds(self, pool_env):
        _, space = pool_env
        arr = SimArray(space, 4)
        with pytest.raises(IndexError):
            arr.addr(4)

    def test_padded_elements_in_distinct_blocks(self, pool_env):
        memory, space = pool_env
        arr = SimArray(space, 4, padded=True)
        g = memory.geometry
        blocks = {g.block_of(arr.addr(i)) for i in range(4)}
        assert len(blocks) == 4

    def test_unpadded_elements_share_blocks(self, pool_env):
        memory, space = pool_env
        arr = SimArray(space, 8)
        g = memory.geometry
        assert g.block_of(arr.addr(0)) == g.block_of(arr.addr(7))


class TestNodePool:
    def test_nodes_block_aligned(self, pool_env):
        _, space = pool_env
        pool = NodePool(space, 8, 3, threads=2)
        nodes = [pool.alloc(0) for _ in range(4)]
        assert all(n % 64 == 0 for n in nodes)
        assert len(set(nodes)) == 4

    def test_reserve_is_idempotent(self, pool_env):
        _, space = pool_env
        pool = NodePool(space, 8, 3, threads=2)
        a = pool.reserve(("op", 1))
        b = pool.reserve(("op", 1))
        c = pool.reserve(("op", 2))
        assert a == b and a != c

    def test_steals_when_local_list_empty(self, pool_env):
        _, space = pool_env
        pool = NodePool(space, 4, 2, threads=2)
        for _ in range(4):
            pool.alloc(0)  # drains both partitions via stealing
        with pytest.raises(MemoryError):
            pool.alloc(0)

    def test_free_recycles(self, pool_env):
        _, space = pool_env
        pool = NodePool(space, 2, 2, threads=2)
        n = pool.alloc(0)
        pool.alloc(0)
        pool.free(0, n)
        assert pool.alloc(0) == n

    def test_field_bounds(self, pool_env):
        _, space = pool_env
        pool = NodePool(space, 2, 3, threads=1)
        node = pool.alloc(0)
        assert pool.field(node, 2) == node + 16
        with pytest.raises(IndexError):
            pool.field(node, 3)


class TestSimLinkedList:
    def _make(self, pool_env, items):
        memory, space = pool_env
        pool = NodePool(space, len(items) + 4, 3, threads=1)
        lst = SimLinkedList(space, pool)
        lst.init(memory, items)
        return memory, lst

    def test_search_hit_and_miss(self, pool_env):
        memory, lst = self._make(pool_env, [(1, 10), (3, 30), (5, 50)])
        assert interpret(memory, lst.search(3)) != NULL
        assert interpret(memory, lst.search(4)) == NULL
        assert interpret(memory, lst.search(9)) == NULL

    def test_update_value(self, pool_env):
        memory, lst = self._make(pool_env, [(1, 10), (2, 20)])
        assert interpret(memory, lst.update_value(2, 99))
        node = interpret(memory, lst.search(2))
        assert memory.read_word(lst.pool.field(node, lst.VALUE)) == 99

    def test_add_to_value(self, pool_env):
        memory, lst = self._make(pool_env, [(1, 10)])
        assert interpret(memory, lst.add_to_value(1, 5))
        node = interpret(memory, lst.search(1))
        assert memory.read_word(lst.pool.field(node, lst.VALUE)) == 15

    def test_insert_sorted(self, pool_env):
        memory, lst = self._make(pool_env, [(1, 10), (5, 50)])
        new = lst.pool.alloc(0)
        assert interpret(memory, lst.insert(new, 3, 30))
        # Walk and check order.
        keys, node = [], memory.read_word(lst.head_addr)
        while node:
            keys.append(memory.read_word(lst.pool.field(node, lst.KEY)))
            node = memory.read_word(lst.pool.field(node, lst.NEXT))
        assert keys == [1, 3, 5]

    def test_insert_duplicate_rejected(self, pool_env):
        memory, lst = self._make(pool_env, [(1, 10)])
        new = lst.pool.alloc(0)
        assert not interpret(memory, lst.insert(new, 1, 99))


class TestSimQueue:
    def test_fifo(self, pool_env):
        memory, space = pool_env
        q = SimQueue(space, 8)
        q.init(memory, [1, 2, 3])
        assert interpret(memory, q.pop()) == 1
        assert interpret(memory, q.pop()) == 2
        assert interpret(memory, q.push(9))
        assert interpret(memory, q.pop()) == 3
        assert interpret(memory, q.pop()) == 9
        assert interpret(memory, q.pop()) is None

    def test_capacity_limit(self, pool_env):
        memory, space = pool_env
        q = SimQueue(space, 4)
        q.init(memory, [])
        assert interpret(memory, q.push(1))
        assert interpret(memory, q.push(2))
        assert interpret(memory, q.push(3))
        assert not interpret(memory, q.push(4))  # ring keeps one free slot

    def test_init_overflow_rejected(self, pool_env):
        memory, space = pool_env
        q = SimQueue(space, 3)
        with pytest.raises(ValueError):
            q.init(memory, [1, 2, 3])

    def test_final_size(self, pool_env):
        memory, space = pool_env
        q = SimQueue(space, 8)
        q.init(memory, [1, 2])
        interpret(memory, q.pop())
        assert q.final_size(memory) == 1


class TestSimHashTable:
    def _make(self, pool_env, buckets=8, capacity=16):
        memory, space = pool_env
        pool = NodePool(space, capacity, 3, threads=1)
        return memory, SimHashTable(space, buckets, pool)

    def test_insert_lookup(self, pool_env):
        memory, table = self._make(pool_env)
        node = table.pool.alloc(0)
        assert interpret(memory, table.insert(node, 42, 420))
        assert interpret(memory, table.lookup(42)) == 420
        assert interpret(memory, table.lookup(43)) is None

    def test_duplicate_insert(self, pool_env):
        memory, table = self._make(pool_env)
        n1, n2 = table.pool.alloc(0), table.pool.alloc(0)
        assert interpret(memory, table.insert(n1, 42, 1))
        assert not interpret(memory, table.insert(n2, 42, 2))
        assert interpret(memory, table.lookup(42)) == 1

    def test_update_add_upserts(self, pool_env):
        memory, table = self._make(pool_env)
        n1, n2 = table.pool.alloc(0), table.pool.alloc(0)
        assert interpret(memory, table.update_add(n1, 7, 3))
        assert not interpret(memory, table.update_add(n2, 7, 4))
        assert interpret(memory, table.lookup(7)) == 7

    def test_host_items(self, pool_env):
        memory, table = self._make(pool_env)
        table.init(memory, [(1, 10), (2, 20), (9, 90)])
        assert table.host_items(memory) == {1: 10, 2: 20, 9: 90}

    @given(st.sets(st.integers(1, 10_000), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_chaining_handles_collisions(self, keys):
        memory = MainMemory(AddressSpace().geometry)
        space = AddressSpace()
        pool = NodePool(space, len(keys) + 2, 3, threads=1)
        table = SimHashTable(space, 4, pool)  # tiny: heavy collisions
        table.init(memory, [(k, k * 2) for k in keys])
        for k in keys:
            assert interpret(memory, table.lookup(k)) == k * 2


class TestSimBST:
    def _make(self, pool_env, items=()):
        memory, space = pool_env
        pool = NodePool(space, 64, 4, threads=1)
        tree = SimBST(space, pool)
        tree.init(memory, items)
        return memory, tree

    def test_insert_contains(self, pool_env):
        memory, tree = self._make(pool_env)
        for key in (5, 3, 8, 1):
            node = tree.pool.alloc(0)
            assert interpret(memory, tree.insert(node, key, key * 2))
        for key in (5, 3, 8, 1):
            assert interpret(memory, tree.contains(key))
        assert not interpret(memory, tree.contains(4))

    def test_duplicate_insert(self, pool_env):
        memory, tree = self._make(pool_env, [(5, 50)])
        node = tree.pool.alloc(0)
        assert not interpret(memory, tree.insert(node, 5, 99))

    def test_host_keys_inorder(self, pool_env):
        memory, tree = self._make(pool_env, [(5, 0), (2, 0), (8, 0), (1, 0)])
        assert tree.host_keys(memory) == [1, 2, 5, 8]

    def test_rebalance_preserves_bst_order(self, pool_env):
        memory, tree = self._make(
            pool_env, [(i, 0) for i in (10, 5, 15, 3, 7, 12, 20, 1)]
        )
        interpret(memory, tree.rebalance_path(1))
        keys = tree.host_keys(memory)
        assert keys == sorted(keys)
        assert len(keys) == 8

    @given(st.sets(st.integers(0, 1000), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_rebalance_property(self, keys):
        memory = MainMemory(AddressSpace().geometry)
        space = AddressSpace()
        pool = NodePool(space, len(keys) + 2, 4, threads=1)
        tree = SimBST(space, pool)
        tree.init(memory, [(k, 0) for k in keys])
        for probe in list(keys)[:5]:
            interpret(memory, tree.rebalance_path(probe))
        assert tree.host_keys(memory) == sorted(keys)


class TestSimCounter:
    def test_add_and_get(self, pool_env):
        memory, space = pool_env
        ctr = SimCounter(space)
        ctr.init(memory, 10)
        assert interpret(memory, ctr.add(5)) == 15
        assert interpret(memory, ctr.get()) == 15
        assert ctr.read_host(memory) == 15


class TestStructuresUnderSimulation:
    def test_list_updates_transactionally(self):
        space = AddressSpace()
        pool = NodePool(space, 12, 3, threads=2)
        lst = SimLinkedList(space, pool)
        items = [(k, 0) for k in range(1, 9)]

        def thread(keys):
            def t():
                for k in keys:
                    def body(key=k):
                        ok = yield from lst.add_to_value(key, 1)
                        return ok

                    yield Txn(body, ())

            return t

        from repro.workloads.scripted import ScriptedWorkload
        from repro.sim.simulator import Simulator
        from repro.sim.config import SystemConfig, table2_config

        wl = ScriptedWorkload([thread([1, 2, 3, 4]), thread([3, 4, 5, 6])])
        # Build the list inside the scripted workload's own memory image.
        original_setup = wl.setup

        def setup(memory):
            original_setup(memory)
            lst.init(memory, items)

        wl.setup = setup
        sim = Simulator(
            wl,
            htm=table2_config(SystemKind.CHATS),
            config=SystemConfig(num_cores=2),
        )
        sim.run(max_events=2_000_000)
        expected = {1: 1, 2: 1, 3: 2, 4: 2, 5: 1, 6: 1, 7: 0, 8: 0}
        for k, bumps in expected.items():
            node = interpret(sim.memory, lst.search(k))
            value = sim.memory.read_word(lst.pool.field(node, lst.VALUE))
            assert value == bumps, f"key {k}"
