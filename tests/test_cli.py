"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "counter"])
        assert args.workload == "counter"
        assert args.system == "chats"
        assert args.threads == 16

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-workload"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig4"])
        assert args.figure == "fig4"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig2"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cache_and_worker_flags(self):
        args = build_parser().parse_args(
            ["figure", "fig4", "--workers", "4", "--no-cache",
             "--cache-dir", "/tmp/repro-cache"]
        )
        assert args.workers == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/repro-cache"

    def test_cache_flags_default_off(self):
        for argv in (["run", "counter"], ["figure", "fig4"], ["report"]):
            args = build_parser().parse_args(argv)
            assert args.workers is None
            assert args.no_cache is False
            assert args.cache_dir is None


class TestExecution:
    @pytest.fixture(autouse=True)
    def _tmp_cache(self, tmp_path, monkeypatch):
        """Keep CLI-driven runs from writing a cache into the repo."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        yield
        # main() installs a default progress printer; don't leak it into
        # later tests' stderr.
        from repro.experiments import runner

        runner._default_progress = None

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kmeans-h" in out
        assert "levc-be-idealized" in out
        assert "fig10" in out

    def test_run_single_system(self, capsys):
        rc = main(
            ["run", "counter", "--system", "baseline", "--threads", "2",
             "--scale", "0.1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "commits" in out

    def test_run_all_systems(self, capsys):
        rc = main(
            ["run", "counter", "--all-systems", "--threads", "2",
             "--scale", "0.1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("cycles=") == 6

    def test_unknown_system_exits(self):
        with pytest.raises(SystemExit, match="unknown system"):
            main(["run", "counter", "--system", "bogus"])
