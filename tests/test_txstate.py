"""Unit tests for per-attempt transaction state."""

import pytest

from repro.htm.stats import AbortReason
from repro.htm.txstate import TxState, TxStatus
from repro.sim.config import SystemKind, table2_config


def make_tx(memory, *, system=SystemKind.CHATS, power=False) -> TxState:
    return TxState(
        core_id=0,
        epoch=1,
        memory=memory,
        htm=table2_config(system),
        power=power,
    )


class TestTracking:
    def test_fresh_state(self, memory):
        tx = make_tx(memory)
        assert tx.active
        assert tx.status is TxStatus.ACTIVE
        assert not tx.reads(1) and not tx.writes(1)

    def test_track_read(self, memory):
        tx = make_tx(memory)
        tx.track_read(7)
        assert tx.reads(7) and not tx.writes(7)

    def test_track_write_implies_read_permission(self, memory):
        tx = make_tx(memory)
        tx.track_write(7)
        assert tx.writes(7) and tx.reads(7)

    def test_conflict_semantics(self, memory):
        tx = make_tx(memory)
        tx.track_read(1)
        tx.track_write(2)
        # Exclusive probes conflict with reads and writes.
        assert tx.conflicts_with_read(1)
        assert tx.conflicts_with_read(2)
        # Read probes conflict only with writes.
        assert not tx.conflicts_with_write(1)
        assert tx.conflicts_with_write(2)
        assert not tx.conflicts_with_read(3)

    def test_footprint(self, memory):
        tx = make_tx(memory)
        tx.track_read(1)
        tx.track_write(2)
        assert tx.footprint() == {1, 2}


class TestCommit:
    def test_commit_publishes_store(self, memory):
        tx = make_tx(memory)
        tx.track_write(1)
        tx.store.write_word(0x40, 99)
        assert tx.can_commit()
        tx.commit()
        assert tx.status is TxStatus.COMMITTED
        assert memory.read_word(0x40) == 99
        assert tx.pic.value is None

    def test_commit_blocked_by_pending_vsb(self, memory):
        tx = make_tx(memory)
        tx.vsb.insert(5, (0,) * 8)
        assert not tx.can_commit()
        with pytest.raises(RuntimeError):
            tx.commit()

    def test_commit_after_validation_drain(self, memory):
        tx = make_tx(memory)
        tx.vsb.insert(5, (0,) * 8)
        tx.vsb.retire(5)
        assert tx.can_commit()
        tx.commit()


class TestAbort:
    def test_abort_discards_store(self, memory):
        tx = make_tx(memory)
        tx.store.write_word(0x40, 99)
        tx.begin_abort(AbortReason.CONFLICT)
        assert tx.status is TxStatus.ABORTING
        assert tx.abort_reason is AbortReason.CONFLICT
        tx.finish_abort()
        assert tx.status is TxStatus.ABORTED
        assert memory.read_word(0x40) == 0

    def test_abort_clears_chain_state(self, memory):
        tx = make_tx(memory)
        tx.pic.value = 10
        tx.pic.cons = True
        tx.vsb.insert(5, (0,) * 8)
        tx.track_read(1)
        tx.track_write(2)
        tx.begin_abort(AbortReason.VALIDATION)
        tx.finish_abort()
        assert tx.pic.value is None and not tx.pic.cons
        assert tx.vsb.empty
        assert not tx.reads(1) and not tx.writes(2)

    def test_first_abort_reason_wins(self, memory):
        tx = make_tx(memory)
        tx.begin_abort(AbortReason.CONFLICT)
        tx.begin_abort(AbortReason.CYCLE)  # ignored: already dying
        assert tx.abort_reason is AbortReason.CONFLICT

    def test_abort_of_finished_tx_rejected(self, memory):
        tx = make_tx(memory)
        tx.commit()
        with pytest.raises(RuntimeError):
            tx.begin_abort(AbortReason.CONFLICT)


class TestRoles:
    def test_mark_forwarded_sets_levc_flags(self, memory):
        tx = make_tx(memory)
        tx.mark_forwarded()
        assert tx.record.forwarded and tx.record.conflicted
        assert tx.levc_has_consumer and tx.levc_has_produced

    def test_mark_consumed(self, memory):
        tx = make_tx(memory)
        tx.mark_consumed()
        assert tx.record.consumed
        assert tx.levc_has_consumed

    def test_power_flag(self, memory):
        tx = make_tx(memory, power=True)
        assert tx.power

    def test_baseline_gets_dummy_vsb(self, memory):
        tx = make_tx(memory, system=SystemKind.BASELINE)
        assert tx.vsb.size == 1  # placeholder; never used
