"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(10, fired.append, "b")
        engine.schedule(5, fired.append, "a")
        engine.schedule(20, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        engine = Engine()
        fired = []
        for name in "abcde":
            engine.schedule(7, fired.append, name)
        engine.run()
        assert fired == list("abcde")

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(5, lambda: seen.append(engine.now))
        engine.schedule(9, lambda: seen.append(engine.now))
        final = engine.run()
        assert seen == [5, 9]
        assert final == 9

    def test_schedule_at_absolute(self):
        engine = Engine()
        seen = []
        engine.schedule(5, lambda: engine.schedule_at(30, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [30]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule(3, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule(2, outer)
        engine.run()
        assert fired == [("outer", 2), ("inner", 5)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        token = engine.schedule(5, fired.append, "x")
        token.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        token = engine.schedule(5, lambda: None)
        token.cancel()
        token.cancel()
        engine.run()

    def test_pending_counts_live_events_only(self):
        engine = Engine()
        tokens = [engine.schedule(5, lambda: None) for _ in range(3)]
        assert engine.pending() == 3
        tokens[1].cancel()
        assert engine.pending() == 2
        tokens[0].cancel()
        tokens[2].cancel()
        assert engine.pending() == 0


class TestRunBounds:
    def test_until_bound(self):
        engine = Engine()
        fired = []
        engine.schedule(5, fired.append, "early")
        engine.schedule(50, fired.append, "late")
        engine.run(until=10)
        assert fired == ["early"]
        assert engine.pending() == 1

    def test_bounded_run_advances_clock_to_bound(self):
        """Back-to-back bounded runs must observe a consistent clock:
        run(until=N) leaves now == N, not at the last processed event."""
        engine = Engine()
        engine.schedule(5, lambda: None)
        assert engine.run(until=10) == 10
        assert engine.now == 10

    def test_bounded_run_on_drained_queue_advances(self):
        engine = Engine()
        assert engine.run(until=7) == 7
        assert engine.now == 7

    def test_bounded_runs_are_monotonic(self):
        engine = Engine()
        engine.schedule(12, lambda: None)
        engine.run()
        assert engine.now == 12
        # A stale bound must not rewind the clock.
        assert engine.run(until=5) == 12

    def test_back_to_back_bounded_runs_consistent(self):
        engine = Engine()
        seen = []
        engine.schedule(3, lambda: seen.append(engine.now))
        engine.schedule(25, lambda: seen.append(engine.now))
        engine.run(until=10)
        assert engine.now == 10
        engine.schedule(5, lambda: seen.append(engine.now))  # fires at 15
        engine.run(until=20)
        assert engine.now == 20
        engine.run(until=30)
        assert seen == [3, 15, 25]

    def test_cancelled_head_does_not_leak_past_bound(self):
        """A cancelled event before the bound must not let a live event
        beyond the bound fire."""
        engine = Engine()
        fired = []
        token = engine.schedule(5, fired.append, "cancelled")
        engine.schedule(50, fired.append, "late")
        token.cancel()
        engine.run(until=10)
        assert fired == []
        assert engine.pending() == 1

    def test_max_events_raises(self):
        engine = Engine()

        def loop():
            engine.schedule(1, loop)

        engine.schedule(0, loop)
        with pytest.raises(RuntimeError, match="livelock"):
            engine.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_events_processed_counter(self):
        engine = Engine()
        for _ in range(7):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_processed == 7


class TestDeterminism:
    @given(
        delays=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40)
    )
    def test_same_schedule_same_order(self, delays):
        def trace(ds):
            engine = Engine()
            out = []
            for i, d in enumerate(ds):
                engine.schedule(d, out.append, (d, i))
            engine.run()
            return out

        assert trace(delays) == trace(delays)

    @given(
        delays=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30)
    )
    def test_order_is_stable_sort_by_time(self, delays):
        engine = Engine()
        out = []
        for i, d in enumerate(delays):
            engine.schedule(d, out.append, (d, i))
        engine.run()
        # Events must be ordered by (time, insertion order).
        assert out == sorted(out, key=lambda pair: (pair[0], pair[1]))


class TestFastLanes:
    """Ordering across the zero-delay, next-cycle, and bucket paths."""

    def test_delay_one_fires_after_same_cycle_bucket_entries(self):
        # An entry scheduled two cycles early (bucket path) must fire
        # before a delay-1 entry for the same cycle (next-lane path):
        # bucket entries are always globally older.
        engine = Engine()
        order = []
        engine.schedule(2, order.append, "bucket")

        def at_cycle_one():
            engine.schedule(1, order.append, "next-lane")

        engine.schedule(1, at_cycle_one)
        engine.run()
        assert order == ["bucket", "next-lane"]

    def test_mixed_delays_interleave_in_schedule_order(self):
        engine = Engine()
        order = []
        # All three paths targeting the same cycle, scheduled from
        # different origins; global schedule order must win.
        engine.schedule(3, order.append, "a")  # bucket for cycle 3

        def at_two():
            engine.schedule(1, order.append, "b")  # next-lane for cycle 3

        engine.schedule(2, at_two)

        def at_three_first(tag):
            order.append(tag)
            engine.schedule(0, order.append, "d")  # zero-lane, cycle 3

        engine.schedule(3, at_three_first, "c")
        engine.run()
        assert order == ["a", "c", "b", "d"]

    def test_delay_one_respects_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1, fired.append, 1)
        assert engine.run(until=0) == 0
        assert fired == []
        engine.run()
        assert fired == [1]

    def test_delay_one_chain_advances_one_cycle_at_a_time(self):
        engine = Engine()
        cycles = []

        def tick(n):
            cycles.append(engine.now)
            if n:
                engine.schedule(1, tick, n - 1)

        engine.schedule(1, tick, 4)
        engine.run()
        assert cycles == [1, 2, 3, 4, 5]


class TestCancellationLeak:
    """A workload that arms and cancels timers forever must keep the
    queue bounded (regression test for the cancelled-event leak)."""

    def test_cancelled_events_are_reclaimed(self):
        engine = Engine()
        rounds = 5_000

        def arm_and_cancel(n):
            # Arm a far-future timer, then immediately cancel it — the
            # validation-controller pattern that used to accumulate dead
            # entries until the far-future cycle drained.
            token = engine.schedule(10_000, lambda: None)
            token.cancel()
            if n:
                engine.schedule(1, arm_and_cancel, n - 1)

        engine.schedule(1, arm_and_cancel, rounds)
        engine.run(until=rounds + 10)
        # Live queue is empty; the dead backlog must stay below the
        # compaction threshold (plus the live count at trigger time),
        # not grow with the number of cancelled timers.
        assert engine.pending() == 0
        queued = sum(len(b) for b in engine._buckets.values())
        queued += len(engine._lane) + len(engine._next)
        assert queued <= 2 * Engine.COMPACT_THRESHOLD, (
            f"{queued} dead entries retained after {rounds} cancels"
        )

    def test_cancel_in_next_lane_is_reclaimed(self):
        engine = Engine()
        for _ in range(1_000):
            engine.schedule(1, lambda: None).cancel()
        assert engine.pending() == 0
        assert len(engine._next) <= 2 * Engine.COMPACT_THRESHOLD

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        token = engine.schedule(1, lambda: None)
        engine.run()
        live = engine.pending()
        token.cancel()  # already fired: must not corrupt the counters
        token.cancel()
        assert engine.pending() == live == 0
        engine.schedule(1, lambda: None)
        assert engine.pending() == 1
