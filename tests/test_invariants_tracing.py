"""Tests for the invariant checker and the tracing facility, including
mid-run invariant stress over every HTM system."""

import pytest

from repro.sim.config import SystemConfig, SystemKind, table2_config
from repro.sim.invariants import InvariantViolation, check_invariants, check_quiescent
from repro.sim.ops import Read, Txn, Work, Write
from repro.sim.simulator import Simulator
from repro.sim.tracing import TraceEvent, Tracer
from repro.workloads.base import make_workload
from repro.workloads.scripted import ScriptedWorkload
from tests.conftest import ALL_SYSTEMS

X = 0x10_0000
Y = 0x10_1000


class TestInvariantChecker:
    @pytest.mark.parametrize("system", ALL_SYSTEMS, ids=lambda s: s.value)
    def test_invariants_hold_throughout_contended_runs(self, system):
        """Schedule the full checker every 500 cycles of a contended run:
        no intermediate machine state may violate it."""
        wl = make_workload("kmeans-h", threads=8, seed=1, scale=0.12)
        sim = Simulator(wl, htm=table2_config(system))
        checks = {"n": 0}

        def periodic():
            check_invariants(sim)
            checks["n"] += 1
            if not all(c.done for c in sim.cores[: wl.num_threads]):
                sim.engine.schedule(500, periodic)

        sim.engine.schedule(100, periodic)
        sim.run()
        assert checks["n"] > 3
        check_invariants(sim)
        check_quiescent(sim)

    def test_detects_double_writable_copy(self):
        wl = make_workload("counter", threads=2, seed=1, scale=0.05)
        sim = Simulator(wl)
        sim.run()
        # Forge a second writable copy of a block core 0 owns.
        block = next(iter(sim.l1s[0].cache.resident_blocks()), None)
        if block is None:
            pytest.skip("no resident line to duplicate")
        sim.l1s[1].cache.install(block, "M")
        with pytest.raises(InvariantViolation, match="writable in both"):
            check_invariants(sim)

    def test_detects_orphan_sm_line(self):
        wl = make_workload("counter", threads=2, seed=1, scale=0.05)
        sim = Simulator(wl)
        sim.run()
        sim.l1s[0].cache.install(123, "M", speculative=True)
        with pytest.raises(InvariantViolation, match="no active transaction"):
            check_invariants(sim)

    def test_quiescent_detects_held_lock(self):
        wl = make_workload("counter", threads=2, seed=1, scale=0.05)
        sim = Simulator(wl)
        sim.run()
        sim.memory.write_word(sim.lock.addr, 1)
        with pytest.raises(InvariantViolation, match="lock"):
            check_quiescent(sim)

    def test_quiescent_detects_unreleased_token(self):
        wl = make_workload("counter", threads=2, seed=1, scale=0.05)
        sim = Simulator(wl)
        sim.run()
        sim.power.request(0, lambda: None)
        with pytest.raises(InvariantViolation, match="token"):
            check_quiescent(sim)


class TestTracer:
    def _chain_sim(self):
        def producer():
            def body():
                yield Write(X, 7)
                yield Work(500)

            yield Txn(body, ())

        def consumer():
            yield Work(150)

            def body():
                v = yield Read(X)
                yield Write(Y, v)

            yield Txn(body, ())

        wl = ScriptedWorkload([producer, consumer])
        return Simulator(
            wl,
            htm=table2_config(SystemKind.CHATS),
            config=SystemConfig(num_cores=2),
        ), wl

    def test_records_forwards_commits_and_messages(self):
        sim, _ = self._chain_sim()
        with Tracer(sim) as trace:
            sim.run()
        assert trace.of_kind("forward"), "the chain must appear in the trace"
        commits = trace.of_kind("commit")
        assert [e.core for e in commits] == [0, 1]  # producer first
        assert trace.of_kind("message")

    def test_block_filter(self):
        sim, wl = self._chain_sim()
        hot = wl.space.geometry.block_of(X)
        with Tracer(sim, blocks={hot}) as trace:
            sim.run()
        msgs = trace.of_kind("message")
        assert msgs and all(e.block == hot for e in msgs)

    def test_kind_filter(self):
        sim, _ = self._chain_sim()
        with Tracer(sim, kinds={"commit"}) as trace:
            sim.run()
        assert trace.events
        assert all(e.kind == "commit" for e in trace.events)

    def test_max_events_cap(self):
        sim, _ = self._chain_sim()
        with Tracer(sim, max_events=5) as trace:
            sim.run()
        assert len(trace.events) == 5

    def test_hooks_are_restored(self):
        from repro.net.network import Crossbar
        from repro.sim.core import Core

        before = (Crossbar.send, Core._do_commit, Core.abort_tx)
        sim, _ = self._chain_sim()
        with Tracer(sim):
            sim.run()
        assert (Crossbar.send, Core._do_commit, Core.abort_tx) == before

    def test_event_rendering(self):
        event = TraceEvent(cycle=42, kind="commit", core=1, detail="epoch=3")
        text = str(event)
        assert "42" in text and "commit" in text and "core1" in text

    def test_render_joins_events(self):
        sim, _ = self._chain_sim()
        with Tracer(sim, kinds={"commit"}) as trace:
            sim.run()
        assert len(trace.render().splitlines()) == len(trace.events)

    def test_abort_events_recorded(self):
        def a():
            def body():
                v = yield Read(X)
                yield Work(120)
                yield Write(X, v + 1)

            yield Txn(body, ())

        wl = ScriptedWorkload([a, a])
        sim = Simulator(
            wl,
            htm=table2_config(SystemKind.BASELINE),
            config=SystemConfig(num_cores=2),
        )
        with Tracer(sim, kinds={"abort", "commit"}) as trace:
            sim.run()
        assert len(trace.of_kind("commit")) == 2
        # The contended increments produce at least one abort.
        assert trace.of_kind("abort")
