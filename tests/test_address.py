"""Unit + property tests for address geometry and the bump allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import AddressSpace, Geometry


class TestGeometry:
    def test_defaults(self):
        g = Geometry()
        assert g.block_bytes == 64
        assert g.word_bytes == 8
        assert g.words_per_block == 8

    def test_block_of(self):
        g = Geometry()
        assert g.block_of(0) == 0
        assert g.block_of(63) == 0
        assert g.block_of(64) == 1
        assert g.block_of(0x1000) == 64

    def test_word_of(self):
        g = Geometry()
        assert g.word_of(0) == 0
        assert g.word_of(7) == 0
        assert g.word_of(8) == 1

    def test_words_in_block(self):
        g = Geometry()
        assert list(g.words_in_block(0)) == list(range(8))
        assert list(g.words_in_block(2)) == list(range(16, 24))

    def test_block_of_word(self):
        g = Geometry()
        assert g.block_of_word(0) == 0
        assert g.block_of_word(7) == 0
        assert g.block_of_word(8) == 1

    def test_align_word(self):
        g = Geometry()
        assert g.align_word(13) == 8
        assert g.align_word(8) == 8

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Geometry(block_bytes=48)

    def test_rejects_word_bigger_than_block(self):
        with pytest.raises(ValueError):
            Geometry(block_bytes=8, word_bytes=16)

    @given(st.integers(min_value=0, max_value=2**48))
    def test_word_and_block_consistent(self, addr):
        g = Geometry()
        assert g.block_of_word(g.word_of(addr)) == g.block_of(addr)

    @given(st.integers(min_value=0, max_value=2**30))
    def test_word_in_its_block(self, addr):
        g = Geometry()
        assert g.word_of(addr) in g.words_in_block(g.block_of(addr))


class TestAddressSpace:
    def test_allocations_disjoint(self):
        s = AddressSpace()
        a = s.alloc(100)
        b = s.alloc(100)
        assert b >= a + 100

    def test_block_alignment(self):
        s = AddressSpace()
        s.alloc(1)
        b = s.alloc(8)
        assert b % 64 == 0

    def test_unaligned_allocation(self):
        s = AddressSpace()
        a = s.alloc(8, align_block=False)
        b = s.alloc(8, align_block=False)
        assert b == a + 8

    def test_alloc_words(self):
        s = AddressSpace()
        base = s.alloc_words(4)
        assert s.word_addr(base, 3) == base + 24

    def test_rejects_empty_alloc(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc(0)

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=50))
    def test_no_overlap_property(self, sizes):
        s = AddressSpace()
        regions = []
        for n in sizes:
            base = s.alloc(n)
            regions.append((base, base + n))
        regions.sort()
        for (a0, a1), (b0, b1) in zip(regions, regions[1:]):
            assert a1 <= b0, "allocations must never overlap"
