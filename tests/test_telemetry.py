"""Tests for the fleet-telemetry layer (``repro.obs.telemetry``):
metrics registry semantics, span-tree structure and exports, the
``run_many`` integration (resource accounting, manifest enrichment,
retry-span nesting), and observer-effect freedom with telemetry off.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro import store as store_pkg
from repro.experiments import runner
from repro.experiments.runner import (
    RunConfig,
    clear_cache,
    counters,
    last_manifest,
    run_many,
)
from repro.obs import telemetry as fleet
from repro.obs.telemetry import (
    LiveDashboard,
    MetricError,
    MetricsRegistry,
    TelemetrySession,
)
from repro.sim.config import SystemKind, table2_config
from repro.sim.simulator import Simulator
from repro.workloads.base import make_workload, register
from repro.workloads.synth import CounterWorkload

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import check_telemetry  # noqa: E402

FAST = dict(threads=2, scale=0.1)

#: Marker-dir env var for this file's injectable failure (distinct from
#: ``test_runner_retry``'s so the suites never arm each other).
FLAKY_DIR_ENV = "REPRO_TEST_TELE_FLAKY_DIR"


@register
class TeleFlakyCounter(CounterWorkload):
    """Counter workload whose first construction per seed fails."""

    name = "tele-flaky-counter"

    def __init__(self, *, threads: int = 16, seed: int = 1, scale: float = 1.0):
        marker_dir = os.environ.get(FLAKY_DIR_ENV)
        if marker_dir:
            marker = Path(marker_dir) / f"attempt-{seed}"
            if not marker.exists():
                marker.touch()
                raise RuntimeError("injected first-attempt failure")
        super().__init__(threads=threads, seed=seed, scale=scale)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setattr(runner, "_cache_dir_override", None)
    monkeypatch.setattr(runner, "_disk_cache_override", None)
    monkeypatch.setattr(runner, "_default_progress", None)
    store_pkg.drop_cached_instances()
    clear_cache()
    counters().reset()
    yield
    fleet.uninstall()
    store_pkg.drop_cached_instances()
    clear_cache()
    counters().reset()


@pytest.fixture
def flaky_markers(tmp_path, monkeypatch):
    marker_dir = tmp_path / "tele-flaky"
    marker_dir.mkdir()
    monkeypatch.setenv(FLAKY_DIR_ENV, str(marker_dir))
    yield marker_dir


def _cfg(workload="counter", system="htm-be", **kwargs) -> RunConfig:
    return RunConfig.make(workload, system, **dict(FAST, **kwargs))


def _spans(session, name):
    return [s for s in session.spans if s.name == name]


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_counts_and_rejects_negatives(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs")
        c.inc()
        c.inc(4)
        assert c.value() == 5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labels_partition_series(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", labels=("layer",))
        c.inc(layer="memory")
        c.inc(2, layer="disk")
        assert c.value(layer="memory") == 1
        assert c.value(layer="disk") == 2
        with pytest.raises(MetricError):
            c.inc(tier="disk")  # wrong label name

    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert len(reg) == 1

    def test_conflicting_reregistration_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("k",))
        with pytest.raises(MetricError):
            reg.gauge("x", labels=("k",))
        with pytest.raises(MetricError):
            reg.counter("x", labels=("other",))

    def test_gauge_set_and_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("rss_kb")
        g.set(100)
        g.set_max(50)
        assert g.value() == 100
        g.set_max(200)
        assert g.value() == 200

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("wall", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)
        ((_, series),) = list(h._series())
        # Cumulative counts per bound (0.1, 1.0, 10.0, +Inf).
        assert series["buckets"] == [1, 3, 4, 5]

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "runs by source", labels=("source",)).inc(
            3, source="cached"
        )
        reg.histogram("wall_seconds", "wall", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        assert "# HELP runs_total runs by source" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{source="cached"} 3' in text
        assert 'wall_seconds_bucket{le="1"} 1' in text
        assert 'wall_seconds_bucket{le="+Inf"} 1' in text
        assert "wall_seconds_sum 0.5" in text
        assert "wall_seconds_count 1" in text

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["schema"] == fleet.METRICS_SCHEMA
        assert snap["metrics"]["g"]["kind"] == "gauge"

    def test_write_snapshot_picks_format_by_suffix(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.write_snapshot(tmp_path / "m.prom")
        reg.write_snapshot(tmp_path / "m.json")
        assert "# TYPE c_total counter" in (tmp_path / "m.prom").read_text()
        assert json.loads((tmp_path / "m.json").read_text())["metrics"]


# ----------------------------------------------------------------------
class TestTelemetrySession:
    def test_span_tree_and_context_manager(self):
        session = TelemetrySession()
        with session.span("run_many") as root:
            with session.span("submit", parent=root):
                pass
        with pytest.raises(ValueError):
            with session.span("submit", parent=root):
                raise ValueError("boom")
        ok, nested, failed = session.spans
        assert ok.parent_id is None and ok.status == "ok"
        assert nested.parent_id == ok.span_id
        assert failed.status == "error"

    def test_lanes_are_stable_per_pid(self):
        session = TelemetrySession()
        assert session.lane_for(111) == 1
        assert session.lane_for(222) == 2
        assert session.lane_for(111) == 1
        assert session.lanes == {111: 1, 222: 2}

    def test_jsonl_header_and_span_lines(self):
        session = TelemetrySession()
        root = session.begin("run_many", configs=1)
        session.finish(root)
        buf = io.StringIO()
        assert session.write_jsonl(buf) == 1
        header, line = [json.loads(x) for x in buf.getvalue().splitlines()]
        assert header["kind"] == "session"
        assert header["schema"] == fleet.SCHEMA
        assert line["kind"] == "span"
        assert line["name"] == "run_many"
        assert line["attrs"] == {"configs": 1}

    def test_chrome_export_tracks_and_phases(self):
        session = TelemetrySession()
        root = session.begin("run_many")
        submit = session.begin("submit", parent=root)
        t = time.time()
        session.add("execute", t, t + 0.01, parent=submit,
                    lane=session.lane_for(4242), pid=4242)
        session.finish(submit)
        session.finish(root)
        payload = session.to_chrome()
        events = payload["traceEvents"]
        names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert "scheduler" in names
        assert "worker 4242" in names
        phases = {e["name"]: e["ph"] for e in events if e["ph"] != "M"}
        # Overlappable scheduler spans are async pairs, the rest slices.
        assert phases["run_many"] == "X"
        assert phases["execute"] == "X"
        assert {e["ph"] for e in events if e["name"] == "submit"} == {"b", "e"}

    def test_exports_satisfy_the_ci_checker(self, tmp_path):
        session = TelemetrySession()
        root = session.begin("run_many")
        submit = session.begin("submit", parent=root)
        t = time.time()
        session.add("execute", t, t + 0.005, parent=submit,
                    lane=session.lane_for(99), pid=99)
        session.finish(submit)
        session.finish(root)
        jsonl = tmp_path / "fleet.jsonl"
        chrome = tmp_path / "fleet.json"
        session.write_jsonl(jsonl)
        session.write_chrome(chrome)
        assert check_telemetry.check_jsonl(jsonl, 0.05) == []
        assert check_telemetry.check_chrome(chrome) == []
        assert check_telemetry.main([str(jsonl), "--chrome", str(chrome)]) == 0

    def test_checker_flags_broken_logs(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"kind": "session", "schema": "nope"}) + "\n"
            + json.dumps({"kind": "span", "id": 1, "parent": 7,
                          "name": "mystery", "start_unix": 2.0,
                          "end_unix": 1.0, "status": "meh"}) + "\n"
        )
        problems = check_telemetry.check_jsonl(bad, 0.05)
        joined = "\n".join(problems)
        assert "schema" in joined
        assert "unknown span name" in joined
        assert "parent 7" in joined
        assert "ends before it starts" in joined
        assert check_telemetry.main([str(bad)]) == 1

    def test_install_is_exclusive(self):
        with fleet.session_scope() as session:
            assert fleet.current_session() is session
            with pytest.raises(RuntimeError):
                fleet.install(TelemetrySession())
        assert fleet.current_session() is None


# ----------------------------------------------------------------------
class TestRunManyIntegration:
    def test_span_tree_resources_and_manifest(self, tmp_path):
        cfgs = [_cfg(system="htm-be"), _cfg(system="chats")]
        with fleet.session_scope() as session:
            run_many(cfgs, workers=1)
        (root,) = _spans(session, "run_many")
        assert root.status == "ok"
        assert root.attrs["unique"] == 2
        submits = _spans(session, "submit")
        probes = _spans(session, "cache-probe")
        executes = _spans(session, "execute")
        stores = _spans(session, "serialize")
        assert len(submits) == len(executes) == len(stores) == 2
        assert len(probes) == 2
        assert all(s.parent_id == root.span_id for s in submits + probes)
        assert {p.attrs["outcome"] for p in probes} == {"miss"}
        submit_ids = {s.span_id for s in submits}
        for ex in executes:
            assert ex.parent_id in submit_ids
            assert ex.lane == 1  # serial path: everything on one lane
            assert ex.attrs["pid"] == os.getpid()
            assert ex.attrs["events"] > 0
            assert ex.attrs["wall_seconds"] >= 0
            assert ex.attrs["events_per_sec"] > 0

        manifest = last_manifest()
        assert manifest.events_simulated > 0
        assert manifest.cpu_seconds >= 0
        entry = manifest.entry_for(cfgs[0])
        assert entry.resources is not None
        assert entry.resources["pid"] == os.getpid()
        # Round-trip: resources survive to_dict (the persisted form).
        dumped = manifest.to_dict()
        assert all("resources" in e for e in dumped["entries"])
        rt = dumped["entries"][0]["resources"]
        assert rt["events"] > 0 and "peak_rss_kb" in rt

    def test_manifest_persisted_beside_cache(self, tmp_path):
        with fleet.session_scope() as session:
            run_many([_cfg()], workers=1)
        store = runner.result_store()
        keys = store.keys("manifest/")
        assert len(keys) == 1
        # Content-hash naming: the key carries the session's run id plus
        # a digest of the payload, not a racy per-process sequence.
        assert keys[0].startswith(f"manifest/MANIFEST_{session.run_id}_")
        payload = store.get_json(keys[0])
        assert payload["schema"] == fleet.MANIFEST_SCHEMA
        assert payload["seq"] == 1
        assert payload["entries"][0]["resources"]["events"] > 0

    def test_manifest_names_cannot_collide(self, tmp_path):
        """Two batches in one session — and identical batches in racing
        sessions — never overwrite each other's manifest entry."""
        with fleet.session_scope():
            run_many([_cfg()], workers=1)
            run_many([_cfg(system="chats")], workers=1)
        store = runner.result_store()
        assert len(store.keys("manifest/")) == 2

    def test_cache_hit_probes_and_metrics(self):
        cfg = _cfg()
        run_many([cfg], workers=1)  # populate (telemetry off)
        with fleet.session_scope() as session:
            run_many([cfg], workers=1)
        (probe,) = _spans(session, "cache-probe")
        assert probe.attrs["outcome"] == "hit"
        assert probe.attrs["layer"] in ("memory", "disk")
        hits = session.metrics.counter(
            "repro_cache_probes_total", labels=("layer", "outcome")
        )
        assert hits.value(layer=probe.attrs["layer"], outcome="hit") == 1
        assert not _spans(session, "submit")  # nothing executed

    def test_retry_span_nests_under_the_original_submit(self, flaky_markers):
        cfg = _cfg(workload="tele-flaky-counter")
        with fleet.session_scope() as session:
            run_many([cfg], workers=1, use_cache=False)
        (submit,) = _spans(session, "submit")
        (retry,) = _spans(session, "retry")
        assert retry.parent_id == submit.span_id
        assert retry.status == "ok" and submit.status == "ok"
        failed, succeeded = _spans(session, "execute")
        assert failed.status == "error"
        assert failed.parent_id == submit.span_id
        assert succeeded.status == "ok"
        assert succeeded.parent_id == retry.span_id
        assert session.metrics.counter("repro_retries_total").value() == 1

    def test_exports_from_a_real_sweep_pass_the_checker(self, tmp_path):
        with fleet.session_scope() as session:
            run_many([_cfg(), _cfg(system="chats")], workers=1)
        jsonl = tmp_path / "sweep.jsonl"
        chrome = tmp_path / "sweep.json"
        session.write_jsonl(jsonl)
        session.write_chrome(chrome)
        assert check_telemetry.check_jsonl(jsonl, 0.05) == []
        assert check_telemetry.check_chrome(chrome) == []


# ----------------------------------------------------------------------
class TestObserverEffect:
    @staticmethod
    def _digest(result) -> str:
        payload = json.dumps(result.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def test_results_byte_identical_with_and_without_telemetry(self):
        cfg = _cfg(system="chats")
        bare = run_many([cfg], workers=1, use_cache=False)[0]
        with fleet.session_scope():
            observed = run_many([cfg], workers=1, use_cache=False)[0]
        assert self._digest(bare) == self._digest(observed)

    def test_engine_probe_stays_inert_under_telemetry(self):
        """Fleet telemetry never reaches inside a simulation: the
        per-simulator probe gains no subscribers, so the engine hot loop
        allocates nothing for telemetry (emission is gated on ``if
        probe:``, which stays False)."""
        with fleet.session_scope():
            wl = make_workload("counter", threads=2, seed=1, scale=0.1)
            sim = Simulator(wl, htm=table2_config(SystemKind.CHATS))
            assert not sim.probe.active
            sim.run()
            assert not sim.probe.active
            assert sim.probe._subscribers == ()

    def test_disabled_telemetry_allocates_nothing_per_run(self):
        """With no session installed the runner gets the shared no-op
        singleton — no per-batch (let alone per-event) allocation."""
        assert fleet.current_session() is None
        assert fleet.for_run_many() is fleet.NULL_BATCH
        assert fleet.for_run_many() is fleet.for_run_many()
        assert not hasattr(fleet.NULL_BATCH, "__dict__")


# ----------------------------------------------------------------------
class TestLiveDashboard:
    def test_renders_progress_cache_rate_and_lanes(self):
        session = TelemetrySession()
        buf = io.StringIO()  # not a TTY: only the final frame is drawn
        dash = LiveDashboard(session, stream=buf)
        root = session.begin("run_many")
        submit = session.begin("submit", parent=root)
        t = time.time()
        session.add("execute", t, t + 0.02, parent=submit,
                    lane=session.lane_for(77), pid=77,
                    config="counter/chats", events=1234)
        session.finish(submit)
        dash.progress(1, 4, None, "run")
        dash.progress(2, 4, None, "cached")
        session.finish(root)
        frame = dash.render()
        assert "2/4" in frame
        assert "cache 1 hit" in frame
        assert "lane 1 [pid 77]" in frame
        assert "counter/chats" in frame
        assert buf.getvalue() == ""  # nothing drawn yet off-TTY
        dash.close()
        assert "2/4" in buf.getvalue()  # final frame always written

    def test_detaches_from_the_session_on_close(self):
        session = TelemetrySession()
        dash = LiveDashboard(session, stream=io.StringIO())
        assert session._listeners
        dash.close()
        assert not session._listeners
