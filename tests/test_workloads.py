"""Tests for the benchmark workloads: registry, determinism, oracles."""

import pytest

import repro
from repro.sim.config import SystemKind
from repro.workloads.base import make_workload, workload_names


class TestRegistry:
    def test_all_benchmarks_registered(self):
        names = workload_names()
        for expected in (
            "genome",
            "intruder",
            "kmeans-h",
            "kmeans-l",
            "labyrinth",
            "ssca2",
            "vacation",
            "yada",
            "llb-l",
            "llb-h",
            "cadd",
            "counter",
        ):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            make_workload("nope")

    def test_factory_parameters(self):
        wl = make_workload("counter", threads=4, seed=7, scale=0.5)
        assert wl.num_threads == 4
        assert wl.seed == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_workload("counter", threads=0)
        with pytest.raises(ValueError):
            make_workload("counter", scale=0)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["counter", "kmeans-h", "genome", "llb-l"])
    def test_same_seed_same_cycles(self, name):
        a = repro.run_workload(name, SystemKind.CHATS, threads=4, seed=3, scale=0.15)
        b = repro.run_workload(name, SystemKind.CHATS, threads=4, seed=3, scale=0.15)
        assert a.cycles == b.cycles
        assert a.total_aborts == b.total_aborts
        assert a.flits == b.flits

    def test_different_seed_different_schedule(self):
        a = make_workload("counter", threads=4, seed=1, scale=0.5)
        b = make_workload("counter", threads=4, seed=2, scale=0.5)
        assert a.schedule != b.schedule or a.num_counters == 1


class TestOraclesCatchCorruption:
    """Each workload's verify() is the serializability oracle of the
    integration tests — prove it actually rejects corrupted state."""

    def _run_and_corrupt(self, name, corrupt):
        wl = make_workload(name, threads=4, seed=1, scale=0.15)
        from repro.sim.simulator import Simulator

        sim = Simulator(wl)
        for tid in range(wl.num_threads):
            sim.cores[tid].start(wl.thread_body(tid))
            sim._started += 1
        sim.engine.run(max_events=5_000_000)
        corrupt(wl, sim.memory)
        with pytest.raises(AssertionError):
            wl.verify(sim.memory)

    def test_counter_oracle(self):
        self._run_and_corrupt(
            "counter",
            lambda wl, m: m.write_word(wl.counters[0].addr, 10_000),
        )

    def test_kmeans_oracle(self):
        self._run_and_corrupt(
            "kmeans-h",
            lambda wl, m: m.write_word(wl.centers[0].addr(0), 999_999),
        )

    def test_ssca2_oracle(self):
        self._run_and_corrupt(
            "ssca2",
            lambda wl, m: m.write_word(wl._degree_addr(0), 77),
        )

    def test_vacation_oracle(self):
        self._run_and_corrupt(
            "vacation",
            lambda wl, m: m.write_word(wl.successes.addr(0), 999),
        )

    def test_yada_oracle(self):
        self._run_and_corrupt(
            "yada",
            lambda wl, m: m.write_word(wl._gen_addr(0), 500),
        )

    def test_genome_oracle(self):
        def corrupt(wl, m):
            m.write_word(wl.chain_tails.addr(0), 0)

        self._run_and_corrupt("genome", corrupt)

    def test_intruder_oracle(self):
        def corrupt(wl, m):
            m.write_word(wl.packet_queue.head_addr, 0)

        self._run_and_corrupt("intruder", corrupt)

    def test_labyrinth_oracle(self):
        def corrupt(wl, m):
            # Claim a random cell for a route that never committed it.
            m.write_word(wl.grid.addr(0), 1)
            m.write_word(wl.grid.addr(1), 10_000)

        self._run_and_corrupt("labyrinth", corrupt)

    def test_cadd_oracle(self):
        self._run_and_corrupt(
            "cadd",
            lambda wl, m: m.write_word(wl.sums.addr(0), 1),
        )

    def test_llb_oracle(self):
        def corrupt(wl, m):
            node = m.read_word(wl.list.head_addr)
            m.write_word(wl.list.pool.field(node, 1), 31337)

        self._run_and_corrupt("llb-l", corrupt)


class TestWorkloadScaling:
    def test_scale_changes_input_size(self):
        small = make_workload("kmeans-h", scale=0.25)
        large = make_workload("kmeans-h", scale=1.0)
        assert large.points_per_thread > small.points_per_thread

    def test_floor_respected(self):
        tiny = make_workload("yada", threads=4, scale=0.01)
        assert tiny.num_records >= 4 * tiny.cavity_size

    def test_thread_count_respected(self):
        wl = make_workload("genome", threads=3, scale=0.2)
        assert len(wl.segments) == 3
