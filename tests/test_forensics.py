"""Tests for the transaction forensics subsystem: the lifecycle ledger,
causal abort attribution, wasted-work accounting, the ``repro inspect``/
``repro compare`` surfaces, and the ``htm-be`` system alias."""

from __future__ import annotations

import json

import pytest

from repro.analysis.forensics import (
    FORENSICS_SCHEMA,
    collect_forensics,
    compare_reports,
    render_compare,
)
from repro.obs import (
    CAUSE_KINDS,
    TxLedger,
    WastedWork,
    attribute_aborts,
)
from repro.obs.events import (
    Abort,
    Commit,
    SpecForward,
    TxBegin,
    ValidationMismatch,
)
from repro.sim.config import SystemKind, table2_config
from repro.sim.simulator import Simulator
from repro.systems import (
    UnknownSystemError,
    get_spec,
    register_alias,
    registered_systems,
    system_aliases,
)
from repro.workloads.base import make_workload

FAST = dict(threads=4, seed=2, scale=0.1)


def _sim(system=SystemKind.CHATS, workload="counter", **kwargs):
    params = dict(FAST, **kwargs)
    wl = make_workload(workload, **params)
    return Simulator(wl, htm=table2_config(system))


def _ledger_run(system=SystemKind.CHATS, workload="counter", **kwargs):
    sim = _sim(system, workload, **kwargs)
    ledger = TxLedger(sim)
    with ledger:
        result = sim.run()
    return ledger, result


# ----------------------------------------------------------------------
class TestTxLedger:
    def test_attempts_match_aggregate_stats(self):
        ledger, result = _ledger_run()
        stats = result.stats
        assert len(ledger.attempts) == stats.tx_attempts
        assert len(ledger.commits) == stats.tx_commits
        assert len(ledger.aborts) == stats.total_aborts
        assert len(ledger.edges) == stats.spec_forwards

    def test_attempt_records_are_ordered_and_indexed(self):
        ledger, _ = _ledger_run()
        for attempt in ledger.attempts:
            assert attempt.begin <= attempt.end
            assert ledger.attempt(attempt.core, attempt.epoch) is attempt
        for core in ledger.cores():
            epochs = [a.epoch for a in ledger.attempts_of(core)]
            assert epochs == sorted(epochs)  # epochs grow per core

    def test_aborted_attempts_carry_reason(self):
        ledger, _ = _ledger_run()
        assert ledger.aborts  # counter under CHATS always conflicts
        for attempt in ledger.aborts:
            assert attempt.outcome == "aborted"
            assert attempt.reason
        for attempt in ledger.commits:
            assert attempt.reason is None

    def test_fallback_spans_bracket_lock_commits(self):
        # counter/baseline at 8 threads escalates to the fallback lock.
        ledger, result = _ledger_run(
            SystemKind.BASELINE, threads=8, scale=0.4, seed=1
        )
        assert result.stats.tx_fallback_commits > 0
        assert len(ledger.fallbacks) == result.stats.tx_fallback_commits
        for span in ledger.fallbacks:
            assert span.end > span.begin

    def test_wasted_work_matches_simulator_gauges(self):
        """The ledger's per-core buckets must reproduce the simulator's
        transient cycle gauges exactly — two independent accountings of
        the same spans."""
        for system in (SystemKind.CHATS, SystemKind.BASELINE):
            ledger, result = _ledger_run(system, threads=8, scale=0.4, seed=1)
            totals = WastedWork.from_ledger(ledger, result.cycles).totals()
            assert totals["committed"] == result.stats.committed_cycles
            assert (
                totals["aborted_speculative"] == result.stats.aborted_cycles
            )
            assert totals["fallback"] == result.stats.fallback_cycles

    def test_stalled_bucket_completes_each_core(self):
        ledger, result = _ledger_run()
        wasted = WastedWork.from_ledger(ledger, result.cycles)
        for buckets in wasted.per_core.values():
            assert sum(buckets.values()) >= result.cycles
            assert all(v >= 0 for v in buckets.values())

    def test_to_dict_is_json_serializable(self):
        ledger, _ = _ledger_run()
        payload = json.loads(json.dumps(ledger.to_dict()))
        assert len(payload["attempts"]) == len(ledger.attempts)
        assert len(payload["forwards"]) == len(ledger.edges)


# ----------------------------------------------------------------------
class TestLedgerObserverEffect:
    @pytest.mark.parametrize(
        "system",
        (SystemKind.CHATS, SystemKind.BASELINE, SystemKind.PCHATS),
        ids=lambda s: s.value,
    )
    def test_ledger_subscribed_run_is_bit_identical(self, system):
        """Attaching a TxLedger must not perturb the simulation."""
        bare = _sim(system).run()
        ledger, observed = _ledger_run(system)
        assert observed.cycles == bare.cycles
        assert observed.events == bare.events
        assert observed.stats.to_dict() == bare.stats.to_dict()
        assert observed.network == bare.network
        assert ledger.attempts  # and the ledger actually saw the run


# ----------------------------------------------------------------------
def _synthetic_cascade() -> TxLedger:
    """Hand-built stream: producer T0 forwards to T1, T1 to T2; T0 aborts
    on a conflict with T3, and the stale value cascades down the chain."""
    ledger = TxLedger()
    ledger(TxBegin(cycle=0, core=0, epoch=1))
    ledger(TxBegin(cycle=1, core=1, epoch=1))
    ledger(TxBegin(cycle=2, core=2, epoch=1))
    ledger(TxBegin(cycle=3, core=3, epoch=1))
    ledger(SpecForward(cycle=10, producer=0, consumer=1, block=8, pic=0))
    ledger(SpecForward(cycle=12, producer=1, consumer=2, block=9, pic=1))
    ledger(Abort(cycle=20, core=0, epoch=1, reason="conflict", src=3, block=8))
    ledger(ValidationMismatch(cycle=30, core=1, block=8, epoch=1))
    ledger(
        Abort(cycle=30, core=1, epoch=1, reason="validation", src=0, block=8)
    )
    ledger(
        Abort(cycle=40, core=2, epoch=1, reason="validation", src=1, block=9)
    )
    ledger(Commit(cycle=50, core=3, epoch=1))
    return ledger


class TestAttribution:
    def test_synthetic_cascade_links_producers(self):
        report = attribute_aborts(_synthetic_cascade())
        by_core = {r.attempt.core: r for r in report.records}
        assert by_core[0].kind == "conflict"
        assert by_core[0].source_core == 3
        # T1 and T2 died validating values whose producers had aborted.
        assert by_core[1].kind == "producer-abort"
        assert by_core[1].source_attempt == (0, 1)
        assert by_core[2].kind == "producer-abort"
        assert by_core[2].source_attempt == (1, 1)
        # One cascade tree rooted at T0's abort, depth 2, all three in it.
        assert len(report.cascades) == 1
        cascade = report.cascades[0]
        assert cascade.root == (0, 1)
        assert cascade.size == 3
        assert cascade.depth == 2
        # Chain stats come from the same edges.
        assert report.chain_stats()["max_depth"] == 2

    def test_breakdown_covers_every_record(self):
        report = attribute_aborts(_synthetic_cascade())
        assert sum(report.breakdown().values()) == report.total == 3
        assert set(report.breakdown()) == set(CAUSE_KINDS)

    @pytest.mark.parametrize(
        "system",
        (SystemKind.CHATS, SystemKind.BASELINE, SystemKind.PCHATS),
        ids=lambda s: s.value,
    )
    def test_contended_counter_attribution_floor(self, system):
        """Acceptance: ≥95% of aborts on the contended counter workload
        resolve to a concrete cause-with-source."""
        ledger, _ = _ledger_run(system, threads=16, scale=0.4, seed=1)
        report = attribute_aborts(ledger)
        assert report.total > 0
        assert report.attributed_fraction >= 0.95
        for rec in report.records:
            assert rec.kind in CAUSE_KINDS


# ----------------------------------------------------------------------
class TestForensicReport:
    def test_schema_and_render(self):
        report = collect_forensics("counter", "chats", **FAST)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == FORENSICS_SCHEMA
        assert doc["aborts"] == report.aborts
        assert doc["gauge_mismatches"] == {}
        text = report.render()
        assert "abort attribution" in text
        assert "wasted work" in text
        html = report.to_html()
        assert html.startswith("<!doctype html>")
        digest = report.digest()
        assert 0.0 <= digest["attributed_fraction"] <= 1.0

    def test_compare_reproduces_paper_story(self):
        """Acceptance: chats vs htm-be on the forwardable contended
        workload shows fewer conflict aborts, nonzero validation aborts,
        and lower wasted-speculative cycles for CHATS."""
        chats = collect_forensics(
            "cadd", "chats", threads=8, seed=1, scale=0.4
        )
        base = collect_forensics(
            "cadd", "htm-be", threads=8, seed=1, scale=0.4
        )
        assert base.system == "baseline"  # alias resolved
        chats_b = chats.attribution.breakdown()
        base_b = base.attribution.breakdown()
        assert chats_b["conflict"] < base_b["conflict"]
        assert chats_b["validation-mismatch"] > 0
        chats_spec = chats.wasted.totals()["aborted_speculative"]
        base_spec = base.wasted.totals()["aborted_speculative"]
        assert chats_spec < base_spec
        diff = compare_reports(chats, base)
        assert diff["cycles_delta"] == base.cycles - chats.cycles
        text = render_compare(chats, base)
        assert "abort causes" in text

    def test_manifest_records_forensic_digests(self):
        from repro.experiments.runner import RunConfig, last_manifest, run_many

        cfg = RunConfig.make("counter", "chats", **FAST)
        run_many([cfg], use_cache=False, workers=1, forensics=True)
        manifest = last_manifest()
        entry = manifest.entry_for(cfg)
        assert entry is not None and entry.source == "run"
        assert entry.forensics is not None
        assert entry.forensics["schema"] == FORENSICS_SCHEMA
        assert entry.forensics["aborts"] >= 0
        assert "forensics" in entry.to_dict()

    def test_forensic_run_result_matches_plain_run(self):
        """A forensics batch must cache the same result a plain batch
        would have produced (the ledger is observer-effect free end to
        end through the runner)."""
        from repro.experiments.runner import RunConfig, run_many

        cfg = RunConfig.make("counter", "chats", **FAST)
        plain = run_many([cfg], use_cache=False, workers=1)[0]
        forensic = run_many(
            [cfg], use_cache=False, workers=1, forensics=True
        )[0]
        assert forensic.to_dict() == plain.to_dict()


# ----------------------------------------------------------------------
class TestSystemAliases:
    def test_htm_be_resolves_to_baseline(self):
        assert get_spec("htm-be") is get_spec("baseline")
        assert system_aliases()["htm-be"] == "baseline"

    def test_aliases_do_not_appear_in_registry_order(self):
        names = [spec.name for spec in registered_systems()]
        assert "htm-be" not in names
        assert "baseline" in names

    def test_alias_reregistration_is_idempotent(self):
        register_alias("htm-be", "baseline")  # same target: no-op

    def test_alias_cannot_shadow_or_retarget(self):
        with pytest.raises(ValueError):
            register_alias("chats", "baseline")
        with pytest.raises(ValueError):
            register_alias("htm-be", "chats")
        with pytest.raises(UnknownSystemError):
            register_alias("nonesuch-alias", "nonesuch-target")
