"""Golden determinism: the simulator's observable behaviour, bit-for-bit.

Every STAMP workload is replayed for two seeds under three HTM systems
(the matrix defined in ``scripts/gen_golden.py``) and the complete
canonical ``SimulationResult`` is hashed against the digests checked in
at ``tests/golden_digests.json`` — produced by the pre-optimisation
(seed) event engine.  A mismatch means an engine or protocol change
altered event ordering, conflict resolution, stats accounting, or even
the number of processed events: none of the hot-path optimisations are
allowed to do that.

Regenerate the digests only for an *intentional* behaviour change::

    PYTHONPATH=src python scripts/gen_golden.py --write
"""

import json
import sys
from pathlib import Path

import pytest

# The generator script owns the matrix and the digest definition; import
# it so this test can never drift from the standalone checker.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import gen_golden  # noqa: E402

GOLDEN = json.loads(gen_golden.GOLDEN_PATH.read_text())

CASES = [
    (workload, system, seed)
    for workload in gen_golden.STAMP_WORKLOADS
    for system in gen_golden.SYSTEMS
    for seed in gen_golden.SEEDS
]


#: Every selectable backend must reproduce the same digests ("auto" is
#: just an alias for one of these).  Unbuilt/unavailable backends skip
#: cleanly so the suite passes on a pure-Python checkout.
BACKENDS = ("python", "compiled", "lanes")


@pytest.fixture(params=BACKENDS)
def backend(request):
    from repro import accel

    name = request.param
    if name == "compiled" and not accel.compiled_available():
        pytest.skip(
            "compiled backend not built (scripts/build_accel.py)"
        )
    if name == "lanes" and not accel.lanes_available():
        pytest.skip("lanes backend needs numpy")
    with accel.use(name):
        yield name


def test_matrix_matches_checked_in_digests():
    """The checked-in file covers exactly the generator's matrix."""
    expected = {gen_golden.case_key(w, sy, se) for (w, sy, se) in CASES}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize(
    "workload,system,seed",
    CASES,
    ids=[gen_golden.case_key(w, sy, se) for (w, sy, se) in CASES],
)
def test_digest_is_golden(backend, workload, system, seed):
    result = gen_golden.run_case(workload, system, seed)
    digest = gen_golden.result_digest(result)
    key = gen_golden.case_key(workload, system, seed)
    assert digest == GOLDEN[key], (
        f"behavioural drift in {key} under the {backend} backend: digest "
        f"{digest[:12]} != golden {GOLDEN[key][:12]} — if this change is "
        f"intentional, regenerate with scripts/gen_golden.py --write"
    )
