"""Golden determinism: the simulator's observable behaviour, bit-for-bit.

Every STAMP workload is replayed for two seeds under three HTM systems
(the matrix defined in ``scripts/gen_golden.py``) and the complete
canonical ``SimulationResult`` is hashed against the digests checked in
at ``tests/golden_digests.json`` — produced by the pre-optimisation
(seed) event engine.  A mismatch means an engine or protocol change
altered event ordering, conflict resolution, stats accounting, or even
the number of processed events: none of the hot-path optimisations are
allowed to do that.

Regenerate the digests only for an *intentional* behaviour change::

    PYTHONPATH=src python scripts/gen_golden.py --write
"""

import json
import sys
from pathlib import Path

import pytest

# The generator script owns the matrix and the digest definition; import
# it so this test can never drift from the standalone checker.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import gen_golden  # noqa: E402

GOLDEN = json.loads(gen_golden.GOLDEN_PATH.read_text())

CASES = [
    (workload, system, seed)
    for workload in gen_golden.STAMP_WORKLOADS
    for system in gen_golden.SYSTEMS
    for seed in gen_golden.SEEDS
]


def test_matrix_matches_checked_in_digests():
    """The checked-in file covers exactly the generator's matrix."""
    expected = {gen_golden.case_key(w, sy, se) for (w, sy, se) in CASES}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize(
    "workload,system,seed",
    CASES,
    ids=[gen_golden.case_key(w, sy, se) for (w, sy, se) in CASES],
)
def test_digest_is_golden(workload, system, seed):
    result = gen_golden.run_case(workload, system, seed)
    digest = gen_golden.result_digest(result)
    key = gen_golden.case_key(workload, system, seed)
    assert digest == GOLDEN[key], (
        f"behavioural drift in {key}: digest {digest[:12]} != golden "
        f"{GOLDEN[key][:12]} — if this change is intentional, regenerate "
        f"with scripts/gen_golden.py --write"
    )
