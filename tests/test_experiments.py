"""Tests for the experiment registry, runner cache, and figure functions
(on miniature workload subsets — the full figures run in benchmarks/)."""

import pytest

from repro.experiments import figures
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import cache_size, clear_cache, run_cached
from repro.sim.config import SystemKind


class TestRegistry:
    def test_every_figure_and_table_present(self):
        expected = {
            "table1",
            "table2",
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "figcap",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_experiment_names_a_bench(self):
        import os

        for exp in EXPERIMENTS.values():
            assert exp.bench.startswith("benchmarks/")
            assert os.path.exists(exp.bench), f"{exp.bench} missing"

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_figures_registry_matches(self):
        assert set(figures.FIGURES) == {
            k for k in EXPERIMENTS if k.startswith("fig")
        }


class TestRunnerCache:
    def test_cache_hit_returns_same_object(self):
        clear_cache()
        a = run_cached("counter", SystemKind.BASELINE, threads=2, scale=0.1)
        n = cache_size()
        b = run_cached("counter", SystemKind.BASELINE, threads=2, scale=0.1)
        assert a is b
        assert cache_size() == n

    def test_distinct_configs_distinct_entries(self):
        clear_cache()
        run_cached("counter", SystemKind.BASELINE, threads=2, scale=0.1)
        run_cached("counter", SystemKind.CHATS, threads=2, scale=0.1)
        assert cache_size() == 2


TINY = ("kmeans-h", "ssca2")


def tiny_kwargs():
    import os

    os.environ.setdefault("REPRO_SCALE", "0.4")
    return {}


class TestFigureFunctions:
    """Each figure function must produce a well-formed FigureResult on a
    reduced workload set (full-size checks live in benchmarks/)."""

    def test_fig1(self):
        r = figures.fig1(workloads=TINY)
        assert set(r.series) == {"Baseline", "Naive R-S"}
        assert "Fig. 1" in r.rendering

    def test_fig4(self):
        r = figures.fig4(workloads=TINY)
        assert len(r.series) == 6
        assert all(r.series["Baseline"][w] == 1.0 for w in TINY)
        assert r.mean("CHATS") > 0

    def test_fig5(self):
        r = figures.fig5(workloads=TINY)
        assert "stacks" in r.extra
        assert "Baseline" in r.extra["stacks"]

    def test_fig6(self):
        r = figures.fig6(workloads=TINY)
        assert "CHATS" in r.series
        for v in r.series["CHATS"].values():
            assert 0.0 <= v <= 1.0

    def test_fig7(self):
        r = figures.fig7(workloads=TINY)
        assert r.series["Baseline"] == {w: 1.0 for w in TINY}

    def test_fig8(self):
        r = figures.fig8(workloads=("kmeans-h",))
        assert len(r.series) == 6  # 3 classes x 2 systems
        assert r.series["CHATS R/W"]["kmeans-h"] == 1.0

    def test_fig9(self):
        r = figures.fig9(workloads=("kmeans-h",), retries=(2, 32))
        assert "best_retries" in r.extra
        assert set(r.extra["best_retries"]) == {
            "Baseline",
            "CHATS",
            "Power",
            "PCHATS",
        }

    def test_fig10(self):
        r = figures.fig10(
            workloads=("kmeans-h",), sizes=(1, 4), intervals=(50, 100)
        )
        time = r.extra["time"]
        assert ("CHATS vsb=1", 50) in time
        assert ("PCHATS vsb=4", 100) in time

    def test_fig11(self):
        r = figures.fig11(workloads=TINY)
        assert set(r.series) == {"CHATS", "PCHATS", "LEVC-BE-Id"}

    def test_run_figure_dispatch(self):
        r = figures.run_figure("fig1", workloads=TINY)
        assert r.experiment_id == "fig1"
        with pytest.raises(KeyError):
            figures.run_figure("fig2")
