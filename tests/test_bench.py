"""The ``repro bench`` harness and its regression gate."""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import bench

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import check_bench  # noqa: E402


@pytest.fixture(scope="module")
def quick_report():
    """One real (tiny) measured report, shared across the module."""
    return bench.run_suite(workloads=["synth"], quick=True, repeat=1)


class TestSuite:
    def test_report_envelope(self, quick_report):
        assert quick_report["schema"] == bench.SCHEMA_VERSION
        assert quick_report["quick"] is True
        assert list(quick_report["cases"]) == [
            "synth/chats/t8/s1/x1",
            "synth/stall/t8/s1/x0.5",
            "synth/chats-ts/t8/s1/x0.5",
        ]

    def test_case_record(self, quick_report):
        case = quick_report["cases"]["synth/chats/t8/s1/x1"]
        assert case["events"] > 0
        assert case["cycles"] > 0
        assert case["seconds_best"] > 0
        assert case["events_per_sec"] == pytest.approx(
            case["events"] / case["seconds_best"]
        )

    def test_deterministic_simulated_work(self):
        # The pinned config must simulate identical work every run —
        # that is what makes events/sec comparable across revisions.
        a = bench.run_suite(workloads=["synth"], quick=True, repeat=1)
        b = bench.run_suite(workloads=["synth"], quick=True, repeat=1)
        key = "synth/chats/t8/s1/x1"
        assert a["cases"][key]["events"] == b["cases"][key]["events"]
        assert a["cases"][key]["cycles"] == b["cases"][key]["cycles"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            bench.run_suite(workloads=["no-such-workload"])

    def test_report_roundtrip(self, quick_report, tmp_path):
        out = tmp_path / "BENCH_test.json"
        bench.write_report(quick_report, out)
        assert json.loads(out.read_text()) == quick_report

    def test_format_report(self, quick_report):
        text = bench.format_report(quick_report)
        assert "synth/chats/t8/s1/x1" in text
        assert "events/s" in text


class TestCheckBench:
    def test_validate_accepts_real_report(self, quick_report):
        assert check_bench.validate_report(quick_report) == []

    def test_validate_rejects_missing_keys(self, quick_report):
        broken = dict(quick_report)
        del broken["rev"]
        assert any("rev" in p for p in check_bench.validate_report(broken))

    def test_validate_rejects_broken_case(self, quick_report):
        broken = json.loads(json.dumps(quick_report))
        case = next(iter(broken["cases"].values()))
        del case["events_per_sec"]
        assert check_bench.validate_report(broken)

    def test_gate_passes_above_floor(self, quick_report, capsys):
        key = next(iter(quick_report["cases"]))
        measured = quick_report["cases"][key]["events_per_sec"]
        baseline = {"cases": {key: measured}}  # exactly at reference
        assert check_bench.gate(quick_report, baseline, 0.15) == 0

    def test_gate_fails_below_floor(self, quick_report, capsys):
        key = next(iter(quick_report["cases"]))
        measured = quick_report["cases"][key]["events_per_sec"]
        baseline = {"cases": {key: measured * 2}}  # 50% regression
        assert check_bench.gate(quick_report, baseline, 0.15) == 1

    def test_gate_rss_ceiling(self, quick_report, capsys):
        baseline = {"cases": {}, "max_peak_rss_kb": 1}
        assert check_bench.gate(quick_report, baseline, 0.15) == 1

    def test_update_baseline_roundtrip(self, quick_report, tmp_path):
        path = tmp_path / "baseline.json"
        check_bench.update_baseline(quick_report, path)
        baseline = json.loads(path.read_text())
        key = next(iter(quick_report["cases"]))
        assert baseline["cases"][key] == round(
            quick_report["cases"][key]["events_per_sec"]
        )
        # Freshly re-baselined numbers must gate cleanly.
        assert check_bench.gate(quick_report, baseline, 0.15) == 0

    def test_cli_end_to_end(self, quick_report, tmp_path, capsys):
        report_path = tmp_path / "bench.json"
        bench.write_report(quick_report, report_path)
        baseline_path = tmp_path / "baseline.json"
        check_bench.update_baseline(quick_report, baseline_path)
        rc = check_bench.main(
            [str(report_path), "--baseline", str(baseline_path)]
        )
        assert rc == 0

    def test_committed_baseline_covers_pinned_suite(self):
        baseline = json.loads(check_bench.DEFAULT_BASELINE.read_text())
        for case in bench.BENCH_CASES:
            for quick in (False, True):
                if case.informational:
                    # Informational cases are measured but never gated:
                    # a baseline reference would turn them into a gate.
                    assert case.key(quick=quick) not in baseline["cases"]
                    continue
                assert case.key(quick=quick) in baseline["cases"], (
                    f"benchmarks/perf/baseline.json lacks a reference for "
                    f"{case.key(quick=quick)}"
                )
